//! Thread-per-core shards: the hub's non-blocking poll loops.
//!
//! A [`ScopeServer`](crate::ScopeServer) owns N [`Shard`]s. The
//! acceptor pins every new connection to one shard (round-robin), and
//! each shard runs [`cycle`] over **its own** client set with **its
//! own** readiness poller — no global lock serializes I/O. Shards
//! share only the [`HubShared`] sinks (scopes, store, counters) and
//! each other's lock-free-hinted inboxes for fan-out.
//!
//! One cycle, in order:
//!
//! 1. adopt connections the acceptor parked in `pending`;
//! 2. collect readiness (epoll when available, hint/scan otherwise);
//! 3. read + parse every ready client — text lines and binary frames
//!    interleave freely (see [`crate::wire`]);
//! 4. deliver the parsed batch: store tee first, then scope buffers,
//!    then every shard's subscriber inbox (store-before-inbox is the
//!    ordering catch-up correctness rests on);
//! 5. drain this shard's inbox and fan out: the batch is encoded
//!    **once** per wire protocol, then memcpy'd into each live
//!    subscriber's bounded output queue;
//! 6. pump catching-up clients from the store via the seek index;
//! 7. flush each dirty output queue with a single `write` syscall;
//! 8. reap dead clients.
//!
//! # Backpressure state machine
//!
//! A subscriber is `Live` until a fan-out push would overflow its
//! bounded queue. Then the queue is **shed** — complete, untransmitted
//! data frames are discarded (never a partially-written frame: framing
//! survives), control frames are kept — and, when the hub has a store,
//! the client is demoted to `CatchUp`: it stops receiving live batches
//! and instead replays from the store starting at the first shed
//! tuple's time, through the O(log) seek index. The replay tails the
//! live store ([`StoreReader::refresh`]) until it drains completely
//! after a flush, then the client rejoins `Live` with a boundary: live
//! tuples at or before the boundary are skipped (they were replayed),
//! strictly newer ones flow again. Tuples timestamped exactly at the
//! boundary during the handover may be dropped — the §4.4 late-drop
//! rule applied to rejoin. Without a store the shed is lossy and the
//! client stays live (counted, so nothing is silent).

use std::collections::{HashMap, VecDeque};
use std::io::ErrorKind;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use gel::{TimeDelta, TimeStamp};
use gscope::{
    intern, write_tuple_line, ScopeError, SharedScope, SigConfig, SigSource, Tuple, TupleSource,
};
use gstore::{Store, StoreReader};
use gtel::{Counter, Gauge, Registry};
use parking_lot::{Mutex, RwLock};

use crate::clock::{wire_now_us, ClockEstimator, ClockStats};
use crate::poll::Poller;
use crate::wire::{
    decode_arg, decode_caps, decode_data, decode_origin, decode_pong, frame_arg, frame_ping,
    frame_pong, frame_welcome, split_message, BatchEncoder, Msg, Protocol, StreamConn, WireRec,
    FLAG_CLOCK_SYNC, LOCAL_CAPS, OP_CATCHUP_BEGIN, OP_CATCHUP_END, OP_DATA, OP_DATA_ORIGIN,
    OP_HELLO, OP_PING, OP_PONG, OP_SUB, OP_WELCOME, TEXT_CATCHUP_BEGIN, TEXT_CATCHUP_END, TEXT_SUB,
};

/// Hub tuning knobs. Defaults suit both the gel-driven inline mode and
/// the threaded mode.
#[derive(Clone, Copy, Debug)]
pub struct HubConfig {
    /// Shard count; 0 means `std::thread::available_parallelism()`.
    pub shards: usize,
    /// Per-client output queue bound in bytes. Overflow triggers the
    /// shed/catch-up transition.
    pub outbuf_cap: usize,
    /// Max bytes read across all of a shard's clients in one cycle.
    /// Bounds cycle latency under backlog: leftovers stay queued on
    /// their sockets and are re-reported by readiness next cycle,
    /// starting from a rotated scan offset for fairness.
    pub read_budget: usize,
    /// Max tuples replayed per catching-up client per cycle.
    pub catchup_chunk: usize,
    /// Pause between busy cycles (µs) on shards that carry
    /// hint-scanned connections (no kernel poller registration).
    /// Readiness scans have no kernel wakeup, so back-to-back cycles
    /// would spin; a short pause batches arrivals instead. Shards
    /// whose clients are all epoll-registered ignore this and block
    /// in the poller.
    pub scan_pacing_us: u64,
    /// Gap between server-initiated clock probes per negotiated
    /// client (µs). The server pings so *it* holds the per-client
    /// offset estimate — that is the number origin-stamped batches
    /// are rebased with at ingest.
    pub ping_interval_us: u64,
    /// Minimum gap (µs) between e2e attribution samples per client.
    /// Marks have watermark semantics — only the last unrendered
    /// chain per signal survives — so stamping every batch at high
    /// ingest rates buys nothing and costs a span record plus a
    /// histogram-map lock per batch. `0` stamps every origin batch
    /// (deterministic tests).
    pub mark_interval_us: u64,
}

impl Default for HubConfig {
    fn default() -> Self {
        HubConfig {
            shards: 0,
            outbuf_cap: 256 << 10,
            read_budget: 256 << 10,
            catchup_chunk: 4096,
            scan_pacing_us: 200,
            ping_interval_us: 200_000,
            mark_interval_us: 1_000,
        }
    }
}

impl HubConfig {
    /// Resolves `shards == 0` to the machine's parallelism.
    pub(crate) fn effective_shards(&self) -> usize {
        if self.shards > 0 {
            return self.shards;
        }
        std::thread::available_parallelism().map_or(1, |n| n.get())
    }
}

/// One tuple in flight between ingest and fan-out.
#[derive(Clone, Debug)]
pub(crate) struct Rec {
    pub time_us: u64,
    pub value: f64,
    pub name: Option<Arc<str>>,
}

/// Global hub counters, updated by every shard.
#[derive(Debug, Default)]
pub(crate) struct HubCounters {
    pub connections: AtomicU64,
    pub disconnects: AtomicU64,
    pub tuples_received: AtomicU64,
    pub parse_errors: AtomicU64,
    pub protocol_errors: AtomicU64,
    pub tuples_dropped: AtomicU64,
    pub tuples_stored: AtomicU64,
    pub store_drops: AtomicU64,
    pub store_errors: AtomicU64,
    pub catch_up_tuples: AtomicU64,
    pub tuples_out: AtomicU64,
    pub bytes_out: AtomicU64,
    pub shed_events: AtomicU64,
    pub tuples_shed: AtomicU64,
    pub catch_ups_entered: AtomicU64,
    pub catch_ups_completed: AtomicU64,
}

/// Cached gtel handles for one hub.
#[derive(Debug)]
pub(crate) struct ServerTelemetry {
    pub registry: Arc<Registry>,
    /// `net.server.connections` — connections accepted.
    pub connections: Arc<Counter>,
    /// `net.server.disconnects` — clients lost.
    pub disconnects: Arc<Counter>,
    /// `net.server.tuples_in` — tuples parsed and delivered.
    pub tuples_in: Arc<Counter>,
    /// `net.server.parse_errors` — undecodable lines skipped.
    pub parse_errors: Arc<Counter>,
    /// `net.server.protocol_errors` — broken frames / bad commands.
    pub protocol_errors: Arc<Counter>,
    /// `net.server.tuples_dropped` — tuples every scope rejected.
    pub tuples_dropped: Arc<Counter>,
    /// `net.server.clients` — currently connected clients.
    pub clients: Arc<Gauge>,
    /// `net.server.subscribers` — clients on the live feed.
    pub subscribers: Arc<Gauge>,
    /// `net.server.tuples_stored` — tuples teed into the store.
    pub tuples_stored: Arc<Counter>,
    /// `net.server.store_drops` — time-regressive tuples not stored.
    pub store_drops: Arc<Counter>,
    /// `net.server.store_errors` — store failures survived.
    pub store_errors: Arc<Counter>,
    /// `net.server.catch_up_tuples` — history replayed (to scopes or
    /// to backpressured subscribers).
    pub catch_up: Arc<Counter>,
    /// `net.server.tuples_out` — tuples queued to subscribers.
    pub tuples_out: Arc<Counter>,
    /// `net.server.bytes_out` — bytes written to subscriber sockets.
    pub bytes_out: Arc<Counter>,
    /// `net.server.sheds` — output-queue overflow events.
    pub sheds: Arc<Counter>,
    /// `net.server.catch_ups` — shed → store-replay demotions.
    pub catch_ups: Arc<Counter>,
    /// `net.server.tuples_shed` — tuples dropped by queue sheds.
    pub tuples_shed: Arc<Counter>,
    /// `net.server.clock.exchanges` — completed PING/PONG round trips.
    pub clock_exchanges: Arc<Counter>,
    /// `net.server.clock.offset_us` — most recent per-client offset.
    pub clock_offset: Arc<Gauge>,
    /// `net.server.clock.rtt_us` — most recent sync RTT.
    pub clock_rtt: Arc<Gauge>,
    /// `net.server.clock.error_us` — most recent offset error bound.
    pub clock_error: Arc<Gauge>,
    /// `net.server.duty_cycle` — busy ÷ wall across all shards (each
    /// shard publishes `net.server.shard<N>.duty_cycle` too).
    pub duty_cycle: Arc<Gauge>,
}

impl ServerTelemetry {
    pub(crate) fn new(registry: Arc<Registry>) -> Self {
        ServerTelemetry {
            tuples_shed: registry.counter("net.server.tuples_shed"),
            clock_exchanges: registry.counter("net.server.clock.exchanges"),
            clock_offset: registry.gauge("net.server.clock.offset_us"),
            clock_rtt: registry.gauge("net.server.clock.rtt_us"),
            clock_error: registry.gauge("net.server.clock.error_us"),
            duty_cycle: registry.gauge("net.server.duty_cycle"),
            connections: registry.counter("net.server.connections"),
            disconnects: registry.counter("net.server.disconnects"),
            tuples_in: registry.counter("net.server.tuples_in"),
            parse_errors: registry.counter("net.server.parse_errors"),
            protocol_errors: registry.counter("net.server.protocol_errors"),
            tuples_dropped: registry.counter("net.server.tuples_dropped"),
            clients: registry.gauge("net.server.clients"),
            subscribers: registry.gauge("net.server.subscribers"),
            tuples_stored: registry.counter("net.server.tuples_stored"),
            store_drops: registry.counter("net.server.store_drops"),
            store_errors: registry.counter("net.server.store_errors"),
            catch_up: registry.counter("net.server.catch_up_tuples"),
            tuples_out: registry.counter("net.server.tuples_out"),
            bytes_out: registry.counter("net.server.bytes_out"),
            sheds: registry.counter("net.server.sheds"),
            catch_ups: registry.counter("net.server.catch_ups"),
            registry,
        }
    }
}

impl Default for ServerTelemetry {
    fn default() -> Self {
        ServerTelemetry::new(Registry::shared())
    }
}

/// State shared by every shard of one hub.
pub(crate) struct HubShared {
    pub cfg: HubConfig,
    pub scopes: RwLock<Vec<SharedScope>>,
    pub store: Mutex<Option<Store>>,
    /// Cached `store.is_some()` so the fan-out path never locks.
    pub store_present: AtomicBool,
    /// Set by appends, cleared by flushes: lets catch-up decide when a
    /// flush could surface new frames.
    pub store_dirty: AtomicBool,
    pub auto_register: AtomicBool,
    pub subscriber_count: AtomicUsize,
    pub client_count: AtomicUsize,
    /// Newest delivered tuple time (µs) — the live head.
    pub head_us: AtomicU64,
    pub counters: HubCounters,
    pub tel: RwLock<ServerTelemetry>,
    /// All shards of this hub, set once at construction; lets any
    /// shard fan a batch into every inbox.
    pub shards: OnceLock<Vec<Arc<Shard>>>,
    /// Acceptor round-robin cursor.
    pub next_shard: AtomicUsize,
}

impl HubShared {
    pub(crate) fn new(cfg: HubConfig) -> HubShared {
        HubShared {
            cfg,
            scopes: RwLock::new(Vec::new()),
            store: Mutex::new(None),
            store_present: AtomicBool::new(false),
            store_dirty: AtomicBool::new(false),
            auto_register: AtomicBool::new(true),
            subscriber_count: AtomicUsize::new(0),
            client_count: AtomicUsize::new(0),
            head_us: AtomicU64::new(0),
            counters: HubCounters::default(),
            tel: RwLock::new(ServerTelemetry::default()),
            shards: OnceLock::new(),
            next_shard: AtomicUsize::new(0),
        }
    }

    /// Hands a connection to the next shard (round-robin).
    pub(crate) fn pin_connection(&self, conn: Box<dyn StreamConn>) {
        let shards = self.shards.get().expect("shards installed at build");
        let i = self.next_shard.fetch_add(1, Ordering::Relaxed) % shards.len();
        shards[i].pending.lock().push(conn);
        shards[i].pending_hint.store(true, Ordering::Release);
    }

    /// Flushes the store tee if dirty; returns false on store error.
    pub(crate) fn flush_store_if_dirty(&self) -> bool {
        if !self.store_dirty.swap(false, Ordering::AcqRel) {
            return true;
        }
        let mut guard = self.store.lock();
        match guard.as_mut().map(Store::flush) {
            None | Some(Ok(())) => true,
            Some(Err(_)) => {
                self.counters.store_errors.fetch_add(1, Ordering::Relaxed);
                self.tel.read().store_errors.inc();
                false
            }
        }
    }
}

/// Per-client counters, visible through
/// [`ScopeServer::client_stats`](crate::ScopeServer::client_stats) —
/// the per-client error accounting that makes one misbehaving client
/// stand out from the global aggregates.
#[derive(Clone, Debug, Default)]
pub struct ClientInfo {
    /// Peer identity (socket address or sim label).
    pub peer: String,
    /// Which shard owns the connection.
    pub shard: usize,
    /// Encoding the server sends to this client.
    pub protocol: Protocol,
    /// Subscribed to the live feed.
    pub subscribed: bool,
    /// Currently replaying from the store after a shed.
    pub catching_up: bool,
    /// Tuples ingested from this client.
    pub tuples_in: u64,
    /// Unparseable text lines from this client.
    pub parse_errors: u64,
    /// Broken frames / bad commands from this client.
    pub protocol_errors: u64,
    /// Tuples queued out to this client.
    pub tuples_out: u64,
    /// Bytes written to this client's socket.
    pub bytes_out: u64,
    /// Output-queue overflow events.
    pub shed_events: u64,
    /// Tuples discarded by those sheds (queued but never written).
    /// `tuples_out - tuples_shed - queue_tuples` is exactly what the
    /// peer has been sent — the reconciliation identity
    /// `tests/streaming_hub.rs` asserts.
    pub tuples_shed: u64,
    /// Catch-up demotions.
    pub catch_ups: u64,
    /// Current output-queue depth in bytes.
    pub queue_bytes: usize,
    /// Tuples still sitting in the output queue (complete frames plus
    /// any partially-written head).
    pub queue_tuples: u64,
    /// Node identity from the client's origin headers, when stamped.
    pub node_id: Option<u64>,
    /// Clock model for this connection (`None` until the first
    /// completed PING/PONG exchange).
    pub clock: Option<ClockStats>,
}

/// Accounting unit inside an output queue: one frame (or one text
/// chunk) and the earliest tuple time it carries.
#[derive(Clone, Copy, Debug)]
struct FrameMeta {
    len: u32,
    first_us: u64,
    /// Tuples the frame carries (0 for control frames) — what shed
    /// accounting and the reconciliation identity are counted in.
    count: u32,
    /// Control frames (WELCOME, catch-up markers) survive sheds.
    control: bool,
}

/// Bounded per-client send queue with frame-granular shedding.
#[derive(Default)]
struct OutQueue {
    buf: VecDeque<u8>,
    frames: VecDeque<FrameMeta>,
    /// Bytes of `frames[0]` already written to the socket.
    head_sent: usize,
}

impl OutQueue {
    fn len(&self) -> usize {
        self.buf.len()
    }

    fn push(&mut self, bytes: &[u8], first_us: u64, count: u64, control: bool) {
        if bytes.is_empty() {
            return;
        }
        self.buf.extend(bytes.iter().copied());
        self.frames.push_back(FrameMeta {
            len: bytes.len() as u32,
            first_us,
            count: count as u32,
            control,
        });
    }

    /// Tuples still queued (complete frames + partially-written head).
    fn queued_tuples(&self) -> u64 {
        self.frames.iter().map(|f| u64::from(f.count)).sum()
    }

    /// Accounts `n` drained bytes against the frame queue.
    fn consume(&mut self, mut n: usize) {
        while n > 0 {
            let head = self.frames.front().copied().expect("frame accounting");
            let head_left = head.len as usize - self.head_sent;
            if n >= head_left {
                n -= head_left;
                self.frames.pop_front();
                self.head_sent = 0;
            } else {
                self.head_sent += n;
                n = 0;
            }
        }
    }

    /// Writes as much as possible with at most one syscall per
    /// contiguous run (a wrapped ring needs a second).
    fn write_to(&mut self, conn: &mut dyn StreamConn) -> std::io::Result<usize> {
        let mut total = 0usize;
        loop {
            let (a, b) = self.buf.as_slices();
            let slice = if a.is_empty() { b } else { a };
            if slice.is_empty() {
                break;
            }
            match conn.write_nb(slice) {
                Ok(0) => return Err(ErrorKind::WriteZero.into()),
                Ok(n) => {
                    let partial = n < slice.len();
                    self.buf.drain(..n);
                    self.consume(n);
                    total += n;
                    if partial {
                        break;
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(total)
    }

    /// Drops every complete, untransmitted data frame; keeps the
    /// partially-written head (framing must survive) and control
    /// frames. Returns the earliest tuple time among dropped frames,
    /// the number of frames dropped, and the tuples they carried.
    fn shed(&mut self) -> (Option<u64>, u64, u64) {
        if self.frames.is_empty() {
            return (None, 0, 0);
        }
        let bytes = self.buf.make_contiguous();
        let mut kept_buf: Vec<u8> = Vec::new();
        let mut kept_frames: VecDeque<FrameMeta> = VecDeque::new();
        let mut offset = 0usize;
        let mut dropped_first: Option<u64> = None;
        let mut dropped = 0u64;
        let mut dropped_tuples = 0u64;
        let mut head_kept = false;
        for (i, f) in self.frames.iter().enumerate() {
            let in_buf = if i == 0 {
                f.len as usize - self.head_sent
            } else {
                f.len as usize
            };
            let keep = f.control || (i == 0 && self.head_sent > 0);
            if keep {
                kept_buf.extend_from_slice(&bytes[offset..offset + in_buf]);
                kept_frames.push_back(*f);
                if i == 0 {
                    head_kept = true;
                }
            } else {
                dropped += 1;
                dropped_tuples += u64::from(f.count);
                if dropped_first.is_none_or(|d| f.first_us < d) {
                    dropped_first = Some(f.first_us);
                }
            }
            offset += in_buf;
        }
        self.buf.clear();
        self.buf.extend(kept_buf);
        self.frames = kept_frames;
        if !head_kept {
            self.head_sent = 0;
        }
        (dropped_first, dropped, dropped_tuples)
    }
}

/// Store-replay state of a demoted client.
struct CatchUpState {
    reader: Option<StoreReader>,
    /// Replay start (first shed tuple's time).
    from_us: u64,
    /// Newest replayed tuple time.
    last_us: u64,
}

enum Mode {
    Live,
    CatchUp(CatchUpState),
}

/// One connection owned by a shard.
struct ClientState {
    conn: Box<dyn StreamConn>,
    token: u64,
    /// Registered with the shard's kernel poller.
    polled: bool,
    inbuf: Vec<u8>,
    out: OutQueue,
    /// Encoding we send to this client (HELLO upgrades it).
    proto: Protocol,
    subscribed: bool,
    mode: Mode,
    /// After catch-up: skip live tuples with `time <= boundary`.
    /// 0 = inactive.
    boundary_us: u64,
    /// Negotiated capability bits (peer's HELLO flags ∩ ours).
    caps: u8,
    /// Clock model for this connection, fed by our PINGs and the
    /// peer's PONGs — the offset origin-stamped batches are rebased
    /// with at ingest.
    clock: ClockEstimator,
    /// Local µs when we last sent a PING (0 = never).
    last_ping_us: u64,
    /// Local µs when we last stamped an e2e mark (0 = never); paces
    /// attribution sampling to `HubConfig::mark_interval_us`.
    last_mark_us: u64,
    info: ClientInfo,
    dead: bool,
}

/// One shard: its clients, poller, and scratch buffers, all behind one
/// mutex that only this shard's loop (or the inline facade) takes.
pub(crate) struct Shard {
    pub id: usize,
    core: Mutex<ShardCore>,
    /// Batches fanned in from any shard's ingest.
    inbox: Mutex<Vec<Rec>>,
    inbox_hint: AtomicBool,
    /// Connections parked here by the acceptor.
    pending: Mutex<Vec<Box<dyn StreamConn>>>,
    pending_hint: AtomicBool,
    /// True while this shard carries hint-scanned connections; the
    /// shard thread paces busy cycles instead of spinning on scans.
    pub(crate) scan_mode: AtomicBool,
    /// Latest published duty cycle (`f64::to_bits`), readable by any
    /// shard so one of them can maintain the hub-wide mean gauge.
    duty_bits: AtomicU64,
}

/// The lock-protected interior of a shard.
struct ShardCore {
    id: usize,
    clients: Vec<ClientState>,
    tokens: HashMap<u64, usize>,
    poller: Option<Poller>,
    next_token: u64,
    read_buf: Vec<u8>,
    /// Tuples parsed from this shard's clients this cycle.
    ingest: Vec<Rec>,
    /// DATA frame decode scratch.
    wire_scratch: Vec<WireRec>,
    /// Inbox drain scratch.
    batch: Vec<Rec>,
    /// Shared batch encoder (encode-once fan-out + catch-up).
    enc: BatchEncoder,
    bin_scratch: Vec<u8>,
    text_scratch: Vec<u8>,
    filt_scratch: Vec<u8>,
    ready_tokens: Vec<u64>,
    to_read: Vec<usize>,
    /// Per-rec scope-acceptance scratch for drop accounting.
    accept_scratch: Vec<bool>,
    /// Live clients with no kernel-poller registration (their
    /// readiness comes from hint scans, not epoll).
    unpolled: usize,
    /// Rotating start index for the readiness scan, so the per-cycle
    /// read budget is spread fairly across the population.
    scan_start: usize,
    /// Hub-side waypoints of the newest origin-stamped batch this
    /// cycle; `deliver_batch` completes it (route/push legs) and
    /// hands it to the e2e attribution collector.
    pending_mark: Option<gtel::BatchMark>,
    /// Cycle busy-time accumulator for the duty-cycle gauges.
    busy: loadmeter::BusyMeter,
    /// Start (local µs) of the current duty-cycle window.
    busy_window_us: u64,
    /// Lazily resolved `net.server.shard<N>.duty_cycle` gauge.
    duty_gauge: Option<Arc<Gauge>>,
}

/// Duty-cycle gauges refresh on this wall-clock cadence (µs).
const DUTY_WINDOW_US: u64 = 250_000;

impl Shard {
    pub(crate) fn new(id: usize) -> Shard {
        Shard {
            id,
            core: Mutex::new(ShardCore {
                id,
                clients: Vec::new(),
                tokens: HashMap::new(),
                poller: Poller::new(),
                next_token: 1,
                read_buf: vec![0u8; 64 << 10],
                ingest: Vec::new(),
                wire_scratch: Vec::new(),
                batch: Vec::new(),
                enc: BatchEncoder::new(),
                bin_scratch: Vec::new(),
                text_scratch: Vec::new(),
                filt_scratch: Vec::new(),
                ready_tokens: Vec::new(),
                to_read: Vec::new(),
                accept_scratch: Vec::new(),
                unpolled: 0,
                scan_start: 0,
                pending_mark: None,
                busy: loadmeter::BusyMeter::new(),
                busy_window_us: 0,
                duty_gauge: None,
            }),
            inbox: Mutex::new(Vec::new()),
            inbox_hint: AtomicBool::new(false),
            pending: Mutex::new(Vec::new()),
            pending_hint: AtomicBool::new(false),
            scan_mode: AtomicBool::new(false),
            duty_bits: AtomicU64::new(0),
        }
    }

    /// Snapshot of per-client counters.
    pub(crate) fn client_stats(&self) -> Vec<ClientInfo> {
        let core = self.core.lock();
        core.clients
            .iter()
            .map(|c| {
                let mut info = c.info.clone();
                info.queue_bytes = c.out.len();
                info.queue_tuples = c.out.queued_tuples();
                info.subscribed = c.subscribed;
                info.catching_up = matches!(c.mode, Mode::CatchUp(_));
                info.protocol = c.proto;
                info.clock = c.clock.stats();
                info
            })
            .collect()
    }
}

/// Runs one cycle of `shard`'s loop. `wait_ms` bounds the kernel
/// readiness wait (0 = non-blocking, for inline/gel use). Returns true
/// when any work happened.
pub(crate) fn cycle(shard: &Shard, shared: &HubShared, wait_ms: i32) -> bool {
    let begin_ns = gtel::fast_now_ns();
    let mut core = shard.core.lock();
    let core = &mut *core;
    let mut worked = false;

    // 1. Adopt connections parked by the acceptor.
    if shard.pending_hint.swap(false, Ordering::AcqRel) {
        let mut pending = std::mem::take(&mut *shard.pending.lock());
        for conn in pending.drain(..) {
            core.add_client(conn, shared);
            worked = true;
        }
    }

    // 2. Readiness: kernel poller for real sockets, hints for sims.
    // Blocking in epoll is only safe when every live client is
    // kernel-polled: with hint-scanned connections on the shard, a
    // wait would add up to `wait_ms` of latency per cycle to data the
    // poller cannot see (and an empty interest set would block for
    // the full timeout).
    core.ready_tokens.clear();
    core.to_read.clear();
    shard.scan_mode.store(core.unpolled > 0, Ordering::Relaxed);
    let mut wait_ns = 0u64;
    if let Some(poller) = &core.poller {
        let timeout = if core.unpolled > 0 { 0 } else { wait_ms };
        let wait_begin = gtel::fast_now_ns();
        poller.wait(&mut core.ready_tokens, timeout);
        wait_ns = gtel::fast_now_ns().saturating_sub(wait_begin);
    }
    for token in &core.ready_tokens {
        if let Some(&idx) = core.tokens.get(token) {
            core.to_read.push(idx);
        }
    }
    // The scan starts at a rotating offset so the per-cycle read
    // budget below cannot systematically starve high-numbered clients.
    let n_clients = core.clients.len();
    if n_clients > 0 {
        core.scan_start %= n_clients;
        for off in 0..n_clients {
            let idx = (core.scan_start + off) % n_clients;
            let c = &core.clients[idx];
            if c.polled || c.dead {
                continue;
            }
            match c.conn.readable_hint() {
                Some(true) | None => core.to_read.push(idx),
                Some(false) => {}
            }
        }
        core.scan_start += 1;
    }

    // 3 + 4. Read, parse, deliver. `read_budget` bounds the bytes
    // read across the whole cycle, not per client: a backlogged
    // population must not produce one giant cycle that holds the
    // shard lock and delays fan-out for everything else.
    let read_list = std::mem::take(&mut core.to_read);
    let mut budget = shared.cfg.read_budget;
    for &idx in &read_list {
        if budget == 0 {
            // Leftovers stay queued on their sockets; readiness
            // re-reports them next cycle.
            break;
        }
        worked |= read_client(core, idx, shared, &mut budget);
    }
    core.to_read = read_list;
    if !core.ingest.is_empty() {
        deliver_batch(core, shared);
        worked = true;
    }

    // 5. Drain this shard's inbox and fan out to subscribers.
    if shard.inbox_hint.swap(false, Ordering::AcqRel) {
        core.batch.clear();
        core.batch.append(&mut shard.inbox.lock());
        if !core.batch.is_empty() {
            fan_out(core, shared);
            worked = true;
        }
    }

    // 6. Pump store replays for catching-up clients.
    for idx in 0..core.clients.len() {
        if matches!(core.clients[idx].mode, Mode::CatchUp(_)) {
            worked |= pump_catch_up(core, idx, shared);
        }
    }

    // 6b. Clock probes: ping each sync-negotiated client on the
    // configured cadence, right before the flush below so t0 is as
    // close to the socket write as the cycle allows.
    let now_us = wire_now_us();
    for c in core.clients.iter_mut() {
        if c.dead || c.caps & FLAG_CLOCK_SYNC == 0 {
            continue;
        }
        if now_us.saturating_sub(c.last_ping_us) >= shared.cfg.ping_interval_us {
            c.last_ping_us = now_us;
            let mut frame = Vec::with_capacity(16);
            frame_ping(&mut frame, wire_now_us());
            c.out.push(&frame, 0, 0, true);
            worked = true;
        }
    }

    // 7. Flush output queues: one gather per client.
    let mut flushed = 0u64;
    for c in core.clients.iter_mut() {
        if c.dead || c.out.len() == 0 {
            continue;
        }
        match c.out.write_to(c.conn.as_mut()) {
            Ok(0) => {}
            Ok(n) => {
                c.info.bytes_out += n as u64;
                flushed += n as u64;
                worked = true;
            }
            Err(_) => {
                c.dead = true;
                worked = true;
            }
        }
    }
    if flushed > 0 {
        shared
            .counters
            .bytes_out
            .fetch_add(flushed, Ordering::Relaxed);
        shared.tel.read().bytes_out.add(flushed);
    }

    // 8. Reap the dead.
    core.reap(shared);

    if worked {
        // Same label the single-threaded server used, so traces stay
        // comparable; arg = shard id. Idle cycles are not recorded.
        gtel::complete_span("net.server.poll", shard.id as u64, begin_ns);
        let tel = shared.tel.read();
        tel.clients
            .set_count(shared.client_count.load(Ordering::Relaxed));
        tel.subscribers
            .set_count(shared.subscriber_count.load(Ordering::Relaxed));
    }

    // Duty-cycle accounting: everything this cycle did except the
    // blocking readiness wait counts as busy; gauges refresh on the
    // window cadence so the figure tracks recent load, not lifetime.
    let busy_ns = gtel::fast_now_ns()
        .saturating_sub(begin_ns)
        .saturating_sub(wait_ns);
    core.busy.add_busy(std::time::Duration::from_nanos(busy_ns));
    let now_us = wire_now_us();
    if now_us.saturating_sub(core.busy_window_us) >= DUTY_WINDOW_US {
        core.busy_window_us = now_us;
        let duty = core.busy.duty_cycle();
        core.busy.reset();
        shard.duty_bits.store(duty.to_bits(), Ordering::Relaxed);
        let tel = shared.tel.read();
        core.duty_gauge
            .get_or_insert_with(|| {
                tel.registry
                    .gauge(&format!("net.server.shard{}.duty_cycle", shard.id))
            })
            .set(duty);
        if let Some(shards) = shared.shards.get() {
            let mean = shards
                .iter()
                .map(|s| f64::from_bits(s.duty_bits.load(Ordering::Relaxed)))
                .sum::<f64>()
                / shards.len().max(1) as f64;
            tel.duty_cycle.set(mean);
        }
    }
    worked
}

impl ShardCore {
    fn add_client(&mut self, conn: Box<dyn StreamConn>, shared: &HubShared) {
        let token = self.next_token;
        self.next_token += 1;
        let mut polled = false;
        if let (Some(poller), Some(fd)) = (&self.poller, conn.raw_fd()) {
            polled = poller.add(fd, token);
        }
        let peer = conn.peer_label();
        let idx = self.clients.len();
        self.clients.push(ClientState {
            conn,
            token,
            polled,
            inbuf: Vec::new(),
            out: OutQueue::default(),
            proto: Protocol::Text,
            subscribed: false,
            mode: Mode::Live,
            boundary_us: 0,
            caps: 0,
            clock: ClockEstimator::new(),
            last_ping_us: 0,
            last_mark_us: 0,
            info: ClientInfo {
                peer,
                shard: self.id,
                ..ClientInfo::default()
            },
            dead: false,
        });
        if !polled {
            self.unpolled += 1;
        }
        self.tokens.insert(token, idx);
        shared.counters.connections.fetch_add(1, Ordering::Relaxed);
        shared.client_count.fetch_add(1, Ordering::Relaxed);
        shared.tel.read().connections.inc();
    }

    fn reap(&mut self, shared: &HubShared) {
        let mut i = 0;
        while i < self.clients.len() {
            if !self.clients[i].dead {
                i += 1;
                continue;
            }
            let c = self.clients.swap_remove(i);
            if c.polled {
                if let (Some(poller), Some(fd)) = (&self.poller, c.conn.raw_fd()) {
                    poller.del(fd);
                }
            } else {
                self.unpolled -= 1;
            }
            self.tokens.remove(&c.token);
            if let Some(moved) = self.clients.get(i) {
                self.tokens.insert(moved.token, i);
            }
            if c.subscribed {
                shared.subscriber_count.fetch_sub(1, Ordering::Relaxed);
            }
            shared.counters.disconnects.fetch_add(1, Ordering::Relaxed);
            shared.client_count.fetch_sub(1, Ordering::Relaxed);
            shared.tel.read().disconnects.inc();
        }
    }
}

/// Reads one client's socket against the cycle's remaining byte
/// `budget` and parses every complete message. Returns true when
/// bytes moved or the client died.
fn read_client(core: &mut ShardCore, idx: usize, shared: &HubShared, budget: &mut usize) -> bool {
    let ShardCore {
        clients,
        read_buf,
        ingest,
        wire_scratch,
        pending_mark,
        ..
    } = core;
    let c = &mut clients[idx];
    if c.dead {
        return false;
    }
    // Each read is parsed as it arrives. Complete messages in a read
    // that found the client's buffer empty are handled straight out of
    // the shared read buffer — zero copy, the steady-state path — and
    // only a trailing partial message is stashed in `c.inbuf`. Bytes
    // that land behind an existing partial go through the buffered
    // path. Parsing-before-EOF means everything received ahead of a
    // hangup is still delivered; only a fatal protocol violation
    // abandons the rest of a buffer.
    let mut total = 0usize;
    loop {
        match c.conn.read_nb(read_buf) {
            Ok(0) => {
                c.dead = true;
                break;
            }
            Ok(n) => {
                total += n;
                if c.inbuf.is_empty() {
                    let consumed = parse_buffer(
                        c,
                        &read_buf[..n],
                        ingest,
                        wire_scratch,
                        pending_mark,
                        shared,
                    );
                    if consumed < n && !c.dead {
                        c.inbuf.extend_from_slice(&read_buf[consumed..n]);
                    }
                } else {
                    c.inbuf.extend_from_slice(&read_buf[..n]);
                    let mut pending = std::mem::take(&mut c.inbuf);
                    let consumed =
                        parse_buffer(c, &pending, ingest, wire_scratch, pending_mark, shared);
                    pending.drain(..consumed);
                    c.inbuf = pending;
                }
                if c.dead || total >= *budget {
                    break;
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => {
                c.dead = true;
                break;
            }
        }
    }
    // Charge the cycle budget (may overshoot by at most one read-buf
    // fill; the next client sees budget 0 and waits a cycle).
    *budget = budget.saturating_sub(total);
    if total == 0 && !c.dead {
        return false;
    }
    // A peer that streams unframed garbage without newlines would grow
    // the partial buffer forever; that is a protocol violation too.
    if c.inbuf.len() > 2 * crate::wire::MAX_FRAME_LEN as usize {
        count_protocol_error(c, shared);
        c.dead = true;
    }
    true
}

/// Parses every complete message in `bytes`, returning how many bytes
/// were consumed. A fatal protocol violation kills the client and
/// abandons the remainder.
fn parse_buffer(
    c: &mut ClientState,
    bytes: &[u8],
    ingest: &mut Vec<Rec>,
    wire_scratch: &mut Vec<WireRec>,
    pending_mark: &mut Option<gtel::BatchMark>,
    shared: &HubShared,
) -> usize {
    let mut consumed = 0usize;
    let mut lineno = 0usize;
    loop {
        match split_message(&bytes[consumed..]) {
            Ok(None) => break,
            Ok(Some((msg, n))) => {
                consumed += n;
                match msg {
                    Msg::Line(line) => {
                        lineno += 1;
                        handle_line(c, line, lineno, ingest, shared);
                    }
                    Msg::Frame { op, body } => {
                        handle_frame(c, op, body, ingest, wire_scratch, pending_mark, shared);
                    }
                }
                if c.dead {
                    break;
                }
            }
            Err(_) => {
                // Framing lost: nothing downstream is trustworthy.
                count_protocol_error(c, shared);
                c.dead = true;
                break;
            }
        }
    }
    consumed
}

fn count_protocol_error(c: &mut ClientState, shared: &HubShared) {
    c.info.protocol_errors += 1;
    shared
        .counters
        .protocol_errors
        .fetch_add(1, Ordering::Relaxed);
    shared.tel.read().protocol_errors.inc();
}

fn subscribe(c: &mut ClientState, shared: &HubShared) {
    if !c.subscribed {
        c.subscribed = true;
        shared.subscriber_count.fetch_add(1, Ordering::Relaxed);
    }
}

fn handle_line(
    c: &mut ClientState,
    line: &[u8],
    lineno: usize,
    ingest: &mut Vec<Rec>,
    shared: &HubShared,
) {
    let Ok(text) = std::str::from_utf8(line) else {
        c.info.parse_errors += 1;
        shared.counters.parse_errors.fetch_add(1, Ordering::Relaxed);
        shared.tel.read().parse_errors.inc();
        return;
    };
    let trimmed = text.trim();
    if trimmed.is_empty() || trimmed.starts_with('#') {
        return;
    }
    if let Some(cmd) = trimmed.strip_prefix('!') {
        if cmd.trim() == &TEXT_SUB[1..] {
            subscribe(c, shared);
        } else {
            count_protocol_error(c, shared);
        }
        return;
    }
    match Tuple::parse_raw(trimmed, lineno) {
        Ok(raw) => {
            ingest.push(Rec {
                time_us: raw.time.as_micros(),
                value: raw.value,
                name: raw.name.map(intern),
            });
            c.info.tuples_in += 1;
        }
        Err(_) => {
            c.info.parse_errors += 1;
            shared.counters.parse_errors.fetch_add(1, Ordering::Relaxed);
            shared.tel.read().parse_errors.inc();
        }
    }
}

fn handle_frame(
    c: &mut ClientState,
    op: u8,
    body: &[u8],
    ingest: &mut Vec<Rec>,
    wire_scratch: &mut Vec<WireRec>,
    pending_mark: &mut Option<gtel::BatchMark>,
    shared: &HubShared,
) {
    match op {
        OP_HELLO => {
            // Capability announced: answer WELCOME with the
            // intersection of the peer's bits and ours, and switch
            // this client's downstream encoding to binary. A v1 HELLO
            // carries no flags byte; `decode_caps` reads that as 0, so
            // the intersection (and the whole clock/origin machinery)
            // stays off — byte-identical legacy behaviour.
            let (_ver, peer_caps) = decode_caps(body);
            c.caps = peer_caps & LOCAL_CAPS;
            c.proto = Protocol::Binary;
            let mut frame = Vec::with_capacity(8);
            frame_welcome(&mut frame, c.caps);
            c.out.push(&frame, 0, 0, true);
        }
        OP_SUB => subscribe(c, shared),
        OP_DATA => {
            wire_scratch.clear();
            match decode_data(body, wire_scratch) {
                Ok(n) => {
                    for rec in wire_scratch.drain(..) {
                        ingest.push(Rec {
                            time_us: rec.time_us,
                            value: rec.value,
                            name: rec.name,
                        });
                    }
                    c.info.tuples_in += u64::from(n);
                }
                Err(_) => {
                    // A corrupt batch means framing state is suspect.
                    count_protocol_error(c, shared);
                    c.dead = true;
                }
            }
        }
        OP_DATA_ORIGIN => {
            // An origin-stamped batch: a self-describing header (node
            // id, producer flush time, producer span id) in front of a
            // plain DATA body.
            let parsed = decode_origin(body).and_then(|(origin, used)| {
                wire_scratch.clear();
                decode_data(&body[used..], wire_scratch).map(|n| (origin, n))
            });
            match parsed {
                Ok((origin, n)) => {
                    for rec in wire_scratch.drain(..) {
                        ingest.push(Rec {
                            time_us: rec.time_us,
                            value: rec.value,
                            name: rec.name,
                        });
                    }
                    c.info.tuples_in += u64::from(n);
                    c.info.node_id = Some(origin.node_id);
                    // Attribution sampling, paced to mark_interval_us:
                    // marks have watermark semantics (only the last
                    // unrendered chain per signal survives), so at
                    // high batch rates the span record and histogram
                    // locks below would be pure overhead on the
                    // ingest hot path.
                    let recv_us = wire_now_us();
                    if recv_us.saturating_sub(c.last_mark_us) >= shared.cfg.mark_interval_us {
                        c.last_mark_us = recv_us;
                        // Ingest span keyed by the *producer's* span
                        // id — the pairing `gtool trace merge` uses to
                        // draw the producer → hub communication edge.
                        if origin.span_id != 0 {
                            gtel::complete_span("net.ingest", origin.span_id, recv_us * 1_000);
                        }
                        // Stamp the hub-side waypoints once the clock
                        // model can rebase the producer's flush time
                        // onto our timebase with a quotable error
                        // bound.
                        if let Some(stats) = c.clock.stats() {
                            *pending_mark = Some(gtel::BatchMark {
                                send_us: origin.send_us as i64 - stats.offset_us.round() as i64,
                                recv_us,
                                parse_us: wire_now_us(),
                                route_us: 0,
                                push_us: 0,
                                clock_error_us: stats.error_us.ceil() as u64,
                            });
                        }
                    }
                }
                Err(_) => {
                    // A corrupt batch means framing state is suspect.
                    count_protocol_error(c, shared);
                    c.dead = true;
                }
            }
        }
        OP_PING => match decode_arg(body) {
            // Clock probe: echo the peer's t0 with our receive/send
            // stamps. Answered even when the peer never negotiated —
            // harmless, and it keeps the exchange symmetric.
            Ok(t0) => {
                let now = wire_now_us();
                let mut frame = Vec::with_capacity(40);
                frame_pong(&mut frame, t0, now, now);
                c.out.push(&frame, 0, 0, true);
            }
            Err(_) => count_protocol_error(c, shared),
        },
        OP_PONG => match decode_pong(body) {
            // Reply to one of our probes: fold the four timestamps
            // into this connection's clock model.
            Ok((t0, t1, t2)) => {
                c.clock.update(t0, t1, t2, wire_now_us());
                if let Some(stats) = c.clock.stats() {
                    let tel = shared.tel.read();
                    tel.clock_exchanges.inc();
                    tel.clock_offset.set(stats.offset_us);
                    tel.clock_rtt.set(stats.rtt_us);
                    tel.clock_error.set(stats.error_us);
                }
            }
            Err(_) => count_protocol_error(c, shared),
        },
        OP_WELCOME | OP_CATCHUP_BEGIN | OP_CATCHUP_END => {
            // Server-to-client opcodes arriving at the server: count,
            // drop, keep the connection (could be a confused proxy).
            count_protocol_error(c, shared);
        }
        _ => {
            // Unknown opcode: tolerated for forward compatibility.
            count_protocol_error(c, shared);
        }
    }
}

/// Delivers this cycle's parsed tuples: store tee first, then scope
/// buffers, then every shard's subscriber inbox. Store-before-inbox is
/// what lets catch-up guarantee no gaps (a tuple a catching-up client
/// misses live is always already in the store).
fn deliver_batch(core: &mut ShardCore, shared: &HubShared) {
    // Origin-stamped cycle: the routing decision is made now; the
    // push leg completes when the scope buffers have the batch.
    let mut mark = core.pending_mark.take();
    if let Some(m) = mark.as_mut() {
        m.route_us = wire_now_us();
    }
    let batch = &mut core.ingest;
    let n = batch.len() as u64;
    // Store tee: one lock for the whole batch.
    if shared.store_present.load(Ordering::Acquire) {
        let mut stored = 0u64;
        let mut drops = 0u64;
        let mut errors = 0u64;
        let mut guard = shared.store.lock();
        if let Some(store) = guard.as_mut() {
            for rec in batch.iter() {
                match store.append(
                    TimeStamp::from_micros(rec.time_us),
                    rec.value,
                    rec.name.as_deref(),
                ) {
                    Ok(()) => stored += 1,
                    Err(ScopeError::TupleOrder { .. }) => drops += 1,
                    Err(_) => errors += 1,
                }
            }
        }
        drop(guard);
        if stored > 0 {
            shared.store_dirty.store(true, Ordering::Release);
            shared
                .counters
                .tuples_stored
                .fetch_add(stored, Ordering::Relaxed);
        }
        if drops > 0 {
            shared
                .counters
                .store_drops
                .fetch_add(drops, Ordering::Relaxed);
        }
        if errors > 0 {
            shared
                .counters
                .store_errors
                .fetch_add(errors, Ordering::Relaxed);
        }
        let tel = shared.tel.read();
        tel.tuples_stored.add(stored);
        tel.store_drops.add(drops);
        tel.store_errors.add(errors);
    }
    // Scope buffers: one scope lock per scope per batch.
    let scopes = shared.scopes.read();
    let dropped: u64;
    if scopes.is_empty() {
        dropped = n;
    } else {
        let auto = shared.auto_register.load(Ordering::Relaxed);
        core.accept_scratch.clear();
        core.accept_scratch.resize(batch.len(), false);
        for scope in scopes.iter() {
            let mut guard = scope.lock();
            for (i, rec) in batch.iter().enumerate() {
                let tuple = Tuple {
                    time: TimeStamp::from_micros(rec.time_us),
                    value: rec.value,
                    name: rec.name.clone(),
                };
                if auto {
                    let name = tuple.name.as_deref().unwrap_or(gscope::UNNAMED_SIGNAL);
                    if guard.signal(name).is_none() {
                        let _ = guard.add_signal(name, SigSource::Buffer, SigConfig::default());
                    }
                }
                if guard.buffer().push(tuple) {
                    core.accept_scratch[i] = true;
                }
            }
        }
        dropped = core.accept_scratch.iter().filter(|&&a| !a).count() as u64;
    }
    drop(scopes);
    // Hand one completed hub-side chain per signal in the batch to
    // the attribution collector (watermark semantics downstream).
    if let Some(mut m) = mark {
        m.push_us = wire_now_us();
        let e2e = gtel::e2e();
        let mut seen: Vec<&str> = Vec::new();
        for rec in batch.iter() {
            let name = rec.name.as_deref().unwrap_or(gscope::UNNAMED_SIGNAL);
            if seen.contains(&name) {
                continue;
            }
            if seen.len() >= 64 {
                break; // pathological batches: cap the per-cycle scan
            }
            seen.push(name);
            e2e.mark_push(name, m);
        }
    }
    // Fan out to subscriber inboxes (skipped entirely with none —
    // ingest-only hubs pay nothing here).
    if shared.subscriber_count.load(Ordering::Acquire) > 0 {
        let shards = shared.shards.get().expect("shards installed");
        for sh in shards.iter() {
            sh.inbox.lock().extend_from_slice(batch);
            sh.inbox_hint.store(true, Ordering::Release);
        }
    }
    // Advance the live head.
    let max_us = batch.iter().map(|r| r.time_us).max().unwrap_or(0);
    shared.head_us.fetch_max(max_us, Ordering::AcqRel);
    shared
        .counters
        .tuples_received
        .fetch_add(n, Ordering::Relaxed);
    if dropped > 0 {
        shared
            .counters
            .tuples_dropped
            .fetch_add(dropped, Ordering::Relaxed);
    }
    let tel = shared.tel.read();
    tel.tuples_in.add(n);
    tel.tuples_dropped.add(dropped);
    drop(tel);
    batch.clear();
}

/// Encodes the inbox batch once per wire protocol and copies it into
/// every live subscriber's queue, demoting overflowing clients.
fn fan_out(core: &mut ShardCore, shared: &HubShared) {
    let ShardCore {
        clients,
        batch,
        enc,
        bin_scratch,
        text_scratch,
        filt_scratch,
        ..
    } = core;
    let batch_min = batch.iter().map(|r| r.time_us).min().unwrap_or(0);
    let batch_first = batch.first().map_or(0, |r| r.time_us);
    let count = batch.len() as u64;
    // Pass 1: which encodings does anyone need?
    let mut need_bin = false;
    let mut need_text = false;
    for c in clients.iter() {
        if c.dead || !c.subscribed || matches!(c.mode, Mode::CatchUp(_)) {
            continue;
        }
        match c.proto {
            Protocol::Binary => need_bin = true,
            Protocol::Text => need_text = true,
        }
    }
    if !need_bin && !need_text {
        return;
    }
    // Encode once.
    bin_scratch.clear();
    text_scratch.clear();
    if need_bin {
        for rec in batch.iter() {
            enc.push(rec.time_us, rec.value, rec.name.as_ref());
        }
        enc.frame_into(bin_scratch);
    }
    if need_text {
        for rec in batch.iter() {
            write_tuple_line(
                text_scratch,
                TimeStamp::from_micros(rec.time_us),
                rec.value,
                rec.name.as_deref(),
            );
            text_scratch.push(b'\n');
        }
    }
    // Pass 2: copy into each subscriber's queue.
    let mut queued_total = 0u64;
    for c in clients.iter_mut() {
        if c.dead || !c.subscribed || matches!(c.mode, Mode::CatchUp(_)) {
            continue;
        }
        // Rejoin boundary: once the whole batch is past it, stop
        // filtering for good.
        if c.boundary_us != 0 && batch_min > c.boundary_us {
            c.boundary_us = 0;
        }
        let (bytes, ntuples): (&[u8], u64) = if c.boundary_us == 0 {
            match c.proto {
                Protocol::Binary => (bin_scratch.as_slice(), count),
                Protocol::Text => (text_scratch.as_slice(), count),
            }
        } else {
            // Per-client filtered encode, only while the boundary is
            // active (at most a few batches after rejoin).
            filt_scratch.clear();
            let mut kept = 0u64;
            match c.proto {
                Protocol::Binary => {
                    enc.reset();
                    for rec in batch.iter().filter(|r| r.time_us > c.boundary_us) {
                        enc.push(rec.time_us, rec.value, rec.name.as_ref());
                        kept += 1;
                    }
                    enc.frame_into(filt_scratch);
                }
                Protocol::Text => {
                    for rec in batch.iter().filter(|r| r.time_us > c.boundary_us) {
                        write_tuple_line(
                            filt_scratch,
                            TimeStamp::from_micros(rec.time_us),
                            rec.value,
                            rec.name.as_deref(),
                        );
                        filt_scratch.push(b'\n');
                        kept += 1;
                    }
                }
            }
            (filt_scratch.as_slice(), kept)
        };
        if bytes.is_empty() {
            continue;
        }
        if c.out.len() + bytes.len() > shared.cfg.outbuf_cap {
            overflow(c, batch_first, shared);
            // With a store the client is now catching up (this batch
            // comes from the store); without one, try the freshest
            // batch after the shed and drop it if it still won't fit.
            if matches!(c.mode, Mode::Live) && c.out.len() + bytes.len() <= shared.cfg.outbuf_cap {
                c.out.push(bytes, batch_first, ntuples, false);
                c.info.tuples_out += ntuples;
                queued_total += ntuples;
            }
            continue;
        }
        c.out.push(bytes, batch_first, ntuples, false);
        c.info.tuples_out += ntuples;
        queued_total += ntuples;
    }
    if queued_total > 0 {
        shared
            .counters
            .tuples_out
            .fetch_add(queued_total, Ordering::Relaxed);
        shared.tel.read().tuples_out.add(queued_total);
    }
    batch.clear();
}

/// Handles an output-queue overflow: shed, then demote to store
/// catch-up when a store exists.
fn overflow(c: &mut ClientState, batch_first_us: u64, shared: &HubShared) {
    let (dropped_from, dropped_frames, dropped_tuples) = c.out.shed();
    c.info.shed_events += 1;
    c.info.tuples_shed += dropped_tuples;
    shared.counters.shed_events.fetch_add(1, Ordering::Relaxed);
    shared
        .counters
        .tuples_shed
        .fetch_add(dropped_tuples, Ordering::Relaxed);
    {
        let tel = shared.tel.read();
        tel.sheds.inc();
        tel.tuples_shed.add(dropped_tuples);
    }
    gtel::instant("net.server.shed", dropped_frames as f64);
    if !shared.store_present.load(Ordering::Acquire) {
        return; // lossy mode: stay live, the shed made room
    }
    let from_us = dropped_from.unwrap_or(batch_first_us);
    c.info.catch_ups += 1;
    shared
        .counters
        .catch_ups_entered
        .fetch_add(1, Ordering::Relaxed);
    shared.tel.read().catch_ups.inc();
    gtel::instant("net.server.catchup_begin", from_us as f64);
    queue_marker(c, OP_CATCHUP_BEGIN, from_us);
    c.mode = Mode::CatchUp(CatchUpState {
        reader: None,
        from_us,
        last_us: from_us,
    });
}

/// Queues a catch-up marker in the client's own wire protocol: a
/// control frame for binary clients, a comment line (invisible to
/// legacy tuple readers) for text clients.
fn queue_marker(c: &mut ClientState, op: u8, arg_us: u64) {
    let mut bytes = Vec::with_capacity(32);
    match c.proto {
        Protocol::Binary => frame_arg(&mut bytes, op, arg_us),
        Protocol::Text => {
            let prefix = if op == OP_CATCHUP_BEGIN {
                TEXT_CATCHUP_BEGIN
            } else {
                TEXT_CATCHUP_END
            };
            bytes.extend_from_slice(prefix.as_bytes());
            bytes.extend_from_slice(arg_us.to_string().as_bytes());
            bytes.push(b'\n');
        }
    }
    c.out.push(&bytes, arg_us, 0, true);
}

/// Advances one catching-up client: replays a bounded chunk from the
/// store into its queue, tailing the live store until it drains.
fn pump_catch_up(core: &mut ShardCore, idx: usize, shared: &HubShared) -> bool {
    let ShardCore {
        clients,
        enc,
        filt_scratch,
        ..
    } = core;
    let c = &mut clients[idx];
    if c.dead {
        return false;
    }
    // Let a still-slow link drain before reading more history.
    if c.out.len() > shared.cfg.outbuf_cap / 2 {
        return false;
    }
    let Mode::CatchUp(cu) = &mut c.mode else {
        return false;
    };
    // Open (or reopen) the reader on first pump.
    if cu.reader.is_none() {
        // Everything shed was appended before it was fanned out, so a
        // flush makes it durable and readable.
        shared.flush_store_if_dirty();
        let dir = {
            let guard = shared.store.lock();
            guard.as_ref().map(|s| s.dir().to_path_buf())
        };
        let Some(dir) = dir else {
            // Store detached mid-catch-up: nothing to replay.
            complete_catch_up(c, shared);
            return true;
        };
        match StoreReader::open(&dir).and_then(|mut r| {
            r.seek(TimeStamp::from_micros(cu.from_us))?;
            Ok(r)
        }) {
            Ok(r) => cu.reader = Some(r),
            Err(_) => {
                shared.counters.store_errors.fetch_add(1, Ordering::Relaxed);
                shared.tel.read().store_errors.inc();
                complete_catch_up(c, shared);
                return true;
            }
        }
    }
    // The chunk is bounded in tuples *and* bytes so the queue never
    // exceeds its cap: at most `byte_budget` rides on top of whatever
    // is already queued (≤ cap/2 by the gate above).
    let byte_budget = shared.cfg.outbuf_cap.saturating_sub(c.out.len() + 64);
    let reader = cu.reader.as_mut().expect("reader ensured");
    let mut replayed = 0u64;
    let mut done = false;
    let mut flushed_this_pump = false;
    enc.reset();
    filt_scratch.clear();
    loop {
        if replayed as usize >= shared.cfg.catchup_chunk {
            break;
        }
        let encoded = match c.proto {
            Protocol::Binary => enc.pending_bytes(),
            Protocol::Text => filt_scratch.len(),
        };
        if encoded >= byte_budget {
            break;
        }
        match reader.next_tuple() {
            Ok(Some(t)) => {
                let t_us = t.time.as_micros();
                match c.proto {
                    Protocol::Binary => enc.push(t_us, t.value, t.name.as_ref()),
                    Protocol::Text => {
                        write_tuple_line(filt_scratch, t.time, t.value, t.name.as_deref());
                        filt_scratch.push(b'\n');
                    }
                }
                cu.last_us = t_us;
                replayed += 1;
            }
            Ok(None) => {
                // Drained what is visible. Flush once, refresh: more
                // appeared → keep going next iteration; nothing → the
                // replay has reached the head, rejoin live.
                if !flushed_this_pump {
                    shared.flush_store_if_dirty();
                    flushed_this_pump = true;
                }
                match reader.refresh() {
                    Ok(true) => continue,
                    Ok(false) => {
                        done = true;
                        break;
                    }
                    Err(_) => {
                        shared.counters.store_errors.fetch_add(1, Ordering::Relaxed);
                        shared.tel.read().store_errors.inc();
                        done = true;
                        break;
                    }
                }
            }
            Err(_) => {
                shared.counters.store_errors.fetch_add(1, Ordering::Relaxed);
                shared.tel.read().store_errors.inc();
                done = true;
                break;
            }
        }
    }
    // Queue whatever was encoded (catch-up data rides as data frames;
    // the client is not in fan-out, and the byte budget above keeps
    // the queue within its cap).
    let first_us = cu.from_us;
    if c.proto == Protocol::Binary && !enc.is_empty() {
        filt_scratch.clear();
        enc.frame_into(filt_scratch);
    }
    if !filt_scratch.is_empty() {
        c.out.push(filt_scratch, first_us, replayed, false);
    }
    if replayed > 0 {
        c.info.tuples_out += replayed;
        shared
            .counters
            .catch_up_tuples
            .fetch_add(replayed, Ordering::Relaxed);
        shared
            .counters
            .tuples_out
            .fetch_add(replayed, Ordering::Relaxed);
        let tel = shared.tel.read();
        tel.catch_up.add(replayed);
        tel.tuples_out.add(replayed);
    }
    if done {
        complete_catch_up(c, shared);
    }
    replayed > 0 || done
}

/// Rejoins a catching-up client to the live feed with a skip boundary.
fn complete_catch_up(c: &mut ClientState, shared: &HubShared) {
    let boundary = match &c.mode {
        Mode::CatchUp(cu) => cu.last_us,
        Mode::Live => return,
    };
    queue_marker(c, OP_CATCHUP_END, boundary);
    c.boundary_us = boundary;
    c.mode = Mode::Live;
    shared
        .counters
        .catch_ups_completed
        .fetch_add(1, Ordering::Relaxed);
    gtel::instant("net.server.catchup_end", boundary as f64);
}

/// Ceiling on frames one scope catch-up replays. When the window holds
/// more tier-0 frames than this, the glod planner swaps in coarser
/// pyramid tiers (pre-decimated min/max envelopes), so a catch-up over
/// a year of history costs the same as one over a minute.
const CATCH_UP_FRAME_BUDGET: u64 = 250_000;

/// Replays history into the attached scopes (the facade's
/// `catch_up(window)`); unrelated to per-client catch-up.
///
/// The replay is tier-stitched: `gstore::lod::replay_plan` picks the
/// finest tier whose frame count fits [`CATCH_UP_FRAME_BUDGET`] and
/// descends to finer tiers (down to raw tier 0) over the tail the
/// pyramid has not folded yet, each slice replayed through its own
/// seeked reader.
pub(crate) fn catch_up_scopes(shared: &HubShared, window: TimeDelta) -> u64 {
    let (dir, newest) = {
        let mut guard = shared.store.lock();
        let Some(store) = guard.as_mut() else {
            return 0;
        };
        if store.flush().is_err() {
            shared.counters.store_errors.fetch_add(1, Ordering::Relaxed);
            shared.tel.read().store_errors.inc();
            return 0;
        }
        shared.store_dirty.store(false, Ordering::Release);
        let Some(newest) = store.last_time() else {
            return 0; // empty store: nothing to catch up on
        };
        (store.dir().to_path_buf(), newest)
    };
    let from = newest.saturating_sub(window);
    let slices = match gstore::lod::replay_plan(
        &dir,
        from.as_micros(),
        newest.as_micros(),
        CATCH_UP_FRAME_BUDGET,
    ) {
        Ok(s) => s,
        Err(_) => {
            shared.counters.store_errors.fetch_add(1, Ordering::Relaxed);
            shared.tel.read().store_errors.inc();
            return 0;
        }
    };
    let scopes = shared.scopes.read();
    let auto = shared.auto_register.load(Ordering::Relaxed);
    let mut replayed = 0u64;
    for slice in slices {
        let mut reader = match StoreReader::open_tier(&dir, slice.tier).and_then(|mut r| {
            r.seek(gel::TimeStamp::from_micros(slice.from_us))?;
            r.set_end(gel::TimeStamp::from_micros(slice.to_us));
            Ok(r)
        }) {
            Ok(r) => r,
            Err(_) => {
                shared.counters.store_errors.fetch_add(1, Ordering::Relaxed);
                shared.tel.read().store_errors.inc();
                continue;
            }
        };
        loop {
            match reader.next_tuple() {
                Ok(Some(tuple)) => {
                    for scope in scopes.iter() {
                        let mut guard = scope.lock();
                        if auto {
                            let name = tuple.name.as_deref().unwrap_or(gscope::UNNAMED_SIGNAL);
                            if guard.signal(name).is_none() {
                                let _ =
                                    guard.add_signal(name, SigSource::Buffer, SigConfig::default());
                            }
                        }
                        guard.buffer().push(tuple.clone());
                    }
                    replayed += 1;
                }
                Ok(None) => break,
                Err(_) => {
                    shared.counters.store_errors.fetch_add(1, Ordering::Relaxed);
                    shared.tel.read().store_errors.inc();
                    break;
                }
            }
        }
    }
    shared
        .counters
        .catch_up_tuples
        .fetch_add(replayed, Ordering::Relaxed);
    shared.tel.read().catch_up.add(replayed);
    replayed
}
