//! Readiness polling for shard loops.
//!
//! Each shard owns one [`Poller`]: an `epoll` instance on Linux
//! (reached through raw syscalls — the workspace links no libc
//! wrapper crates), or nothing elsewhere, in which case the shard
//! falls back to scanning its clients. Level-triggered `EPOLLIN` is
//! all the shard needs: writes are attempted opportunistically every
//! cycle and short writes simply stay queued, so write-readiness
//! events would only add wakeups.
//!
//! Simulated connections (`netsim` shaped links) have no descriptor;
//! they advertise readiness through `StreamConn::readable_hint`, and
//! the shard scans those regardless of the poller.

/// Readiness interest registration and waiting, level-triggered.
#[derive(Debug)]
pub struct Poller {
    #[cfg_attr(
        not(all(target_os = "linux", target_arch = "x86_64")),
        allow(dead_code)
    )]
    epfd: i32,
}

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
mod sys {
    const SYS_CLOSE: i64 = 3;
    const SYS_EPOLL_WAIT: i64 = 232;
    const SYS_EPOLL_CTL: i64 = 233;
    const SYS_EPOLL_CREATE1: i64 = 291;

    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_DEL: i32 = 2;
    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;

    /// Kernel `struct epoll_event` on x86_64 is packed to 12 bytes.
    #[repr(C, packed)]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    #[inline]
    unsafe fn syscall4(n: i64, a: i64, b: i64, c: i64, d: i64) -> i64 {
        let ret: i64;
        core::arch::asm!(
            "syscall",
            inlateout("rax") n => ret,
            in("rdi") a,
            in("rsi") b,
            in("rdx") c,
            in("r10") d,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
        ret
    }

    pub fn epoll_create1() -> i64 {
        unsafe { syscall4(SYS_EPOLL_CREATE1, 0, 0, 0, 0) }
    }

    pub fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: Option<&mut EpollEvent>) -> i64 {
        let ptr = event.map_or(0i64, |e| e as *mut EpollEvent as i64);
        unsafe { syscall4(SYS_EPOLL_CTL, epfd as i64, op as i64, fd as i64, ptr) }
    }

    pub fn epoll_wait(epfd: i32, events: &mut [EpollEvent], timeout_ms: i32) -> i64 {
        unsafe {
            syscall4(
                SYS_EPOLL_WAIT,
                epfd as i64,
                events.as_mut_ptr() as i64,
                events.len() as i64,
                timeout_ms as i64,
            )
        }
    }

    pub fn close(fd: i32) {
        unsafe {
            syscall4(SYS_CLOSE, fd as i64, 0, 0, 0);
        }
    }
}

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
impl Poller {
    /// Creates an epoll instance; `None` when the kernel refuses.
    pub fn new() -> Option<Poller> {
        let fd = sys::epoll_create1();
        if fd < 0 {
            return None;
        }
        Some(Poller { epfd: fd as i32 })
    }

    /// Registers `fd` for level-triggered read readiness, tagged with
    /// `token`. Returns false when the kernel refuses (the caller
    /// falls back to scanning that connection).
    pub fn add(&self, fd: i32, token: u64) -> bool {
        let mut ev = sys::EpollEvent {
            events: sys::EPOLLIN | sys::EPOLLERR | sys::EPOLLHUP | sys::EPOLLRDHUP,
            data: token,
        };
        sys::epoll_ctl(self.epfd, sys::EPOLL_CTL_ADD, fd, Some(&mut ev)) == 0
    }

    /// Unregisters `fd`. Safe to call for never-registered fds.
    pub fn del(&self, fd: i32) {
        sys::epoll_ctl(self.epfd, sys::EPOLL_CTL_DEL, fd, None);
    }

    /// Waits up to `timeout_ms` (0 = non-blocking) and appends ready
    /// tokens to `ready`. Returns the number of events.
    pub fn wait(&self, ready: &mut Vec<u64>, timeout_ms: i32) -> usize {
        let mut events = [sys::EpollEvent { events: 0, data: 0 }; 128];
        let n = sys::epoll_wait(self.epfd, &mut events, timeout_ms);
        if n <= 0 {
            return 0;
        }
        let n = n as usize;
        for ev in &events[..n] {
            ready.push(ev.data);
        }
        n
    }
}

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
impl Drop for Poller {
    fn drop(&mut self) {
        sys::close(self.epfd);
    }
}

#[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
impl Poller {
    /// No kernel poller on this platform; shards scan instead.
    pub fn new() -> Option<Poller> {
        None
    }

    /// Unreachable (`new` never returns a Poller here).
    pub fn add(&self, _fd: i32, _token: u64) -> bool {
        false
    }

    /// Unreachable (`new` never returns a Poller here).
    pub fn del(&self, _fd: i32) {}

    /// Unreachable (`new` never returns a Poller here).
    pub fn wait(&self, _ready: &mut Vec<u64>, _timeout_ms: i32) -> usize {
        0
    }
}

#[cfg(all(test, target_os = "linux", target_arch = "x86_64"))]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;

    #[test]
    fn epoll_reports_readable_socket() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut tx = TcpStream::connect(addr).unwrap();
        let (rx, _) = listener.accept().unwrap();
        rx.set_nonblocking(true).unwrap();

        let poller = Poller::new().expect("epoll available on linux");
        assert!(poller.add(rx.as_raw_fd(), 42));

        let mut ready = Vec::new();
        assert_eq!(poller.wait(&mut ready, 0), 0, "idle socket: no events");

        tx.write_all(b"ping\n").unwrap();
        tx.flush().unwrap();
        let mut ready = Vec::new();
        let mut waited = 0;
        while poller.wait(&mut ready, 100) == 0 && waited < 20 {
            waited += 1;
        }
        assert_eq!(ready, vec![42]);

        // Level-triggered: still ready until drained.
        let mut ready2 = Vec::new();
        assert!(poller.wait(&mut ready2, 0) > 0);

        poller.del(rx.as_raw_fd());
        let mut ready3 = Vec::new();
        assert_eq!(poller.wait(&mut ready3, 0), 0, "deleted fd: no events");
    }

    #[test]
    fn hup_wakes_the_poller() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let tx = TcpStream::connect(addr).unwrap();
        let (rx, _) = listener.accept().unwrap();
        rx.set_nonblocking(true).unwrap();
        let poller = Poller::new().unwrap();
        assert!(poller.add(rx.as_raw_fd(), 7));
        drop(tx);
        let mut ready = Vec::new();
        let mut waited = 0;
        while poller.wait(&mut ready, 100) == 0 && waited < 20 {
            waited += 1;
        }
        assert_eq!(ready, vec![7], "peer close surfaces as readiness");
    }
}
