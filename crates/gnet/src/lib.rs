//! `gnet` — distributed visualization for gscope (§4.4).
//!
//! "Gscope supports monitoring and visualization of distributed
//! applications. It implements a single-threaded I/O driven
//! client-server library that can be used by applications to monitor
//! remote data." Clients stream `BUFFER` tuples asynchronously; the
//! server buffers them into one or more scopes, which display them with
//! a user-specified delay and drop data that arrives too late.
//!
//! Everything is non-blocking and integrates with the `gel` main loop
//! via I/O watches, exactly the event-driven style Figure 6 and §4.3
//! prescribe — no extra threads required. At scale the server also
//! runs **thread-per-core**: [`ScopeServer::spawn_shards`] gives every
//! shard its own readiness-driven poll loop, with connections pinned
//! to shards by the acceptor so no global lock serializes I/O.
//!
//! The default wire format is the §3.3 textual tuple format, one tuple
//! per line, so `nc` and recorded files interoperate with live
//! streams. Binary-capable peers negotiate a length-delimited
//! delta-varint frame protocol ([`wire`]) that cuts bytes-on-wire
//! roughly 2× and parse cost more; negotiation degrades to text
//! automatically against legacy peers. Timestamps cross machine
//! boundaries untranslated; where the paper (footnote 1) *assumes*
//! distributed clocks are correlated, negotiated connections now
//! *measure* the correlation: periodic PING/PONG exchanges feed a
//! per-peer [`ClockEstimator`] (offset, RTT, drift, error bound), and
//! origin-stamped batches let every hop's lateness be attributed on
//! one timeline within that bound.

mod client;
pub mod clock;
mod poll;
mod server;
mod shard;
pub mod wire;

pub use client::{ClientStats, ScopeClient, StreamEvent};
pub use clock::{ClockEstimator, ClockStats};
pub use server::{
    attach_client, attach_server, stream_periodic, ClientInfo, HubConfig, ScopeServer, ServerStats,
};
pub use wire::{Protocol, StreamConn};

#[cfg(test)]
mod tests {
    use super::*;
    use gel::{Clock, IoPoll, TimeDelta, TimeStamp, VirtualClock};
    use gscope::{Scope, SigSource};
    use std::sync::Arc;

    fn spin_until(mut cond: impl FnMut() -> bool) {
        for _ in 0..2000 {
            if cond() {
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        panic!("condition not reached within 2s");
    }

    fn pump_pair(client: &mut ScopeClient, server: &mut ScopeServer) {
        let _ = client.pump();
        let _ = server.poll();
    }

    #[test]
    fn client_streams_tuples_to_server_scope() {
        let clock = VirtualClock::new();
        clock.advance(TimeDelta::from_millis(1)); // non-zero epoch
        let scope = Scope::new("remote", 64, 48, Arc::new(clock.clone())).into_shared();
        scope.lock().set_delay(TimeDelta::from_secs(10));
        let mut server = ScopeServer::bind("127.0.0.1:0").unwrap();
        server.add_scope(Arc::clone(&scope));
        let addr = server.local_addr().unwrap();
        let mut client = ScopeClient::connect(addr).unwrap();

        for i in 0..50u64 {
            client.send_at(TimeStamp::from_millis(i * 10), "rtt", i as f64);
        }
        assert_eq!(client.stats().tuples_queued, 50);
        spin_until(|| {
            pump_pair(&mut client, &mut server);
            server.stats().tuples_received == 50
        });
        assert_eq!(server.stats().parse_errors, 0);
        assert_eq!(server.client_count(), 1);
        // Auto-registered as a BUFFER signal, samples queued in the
        // scope buffer.
        let guard = scope.lock();
        assert!(guard.signal("rtt").is_some());
        assert_eq!(guard.signal("rtt").unwrap().source_type(), "BUFFER");
        assert_eq!(guard.buffer().len(), 50);
    }

    #[test]
    fn multiple_clients_multiplex() {
        let clock = VirtualClock::new();
        let scope = Scope::new("multi", 64, 48, Arc::new(clock)).into_shared();
        scope.lock().set_delay(TimeDelta::from_secs(100));
        let mut server = ScopeServer::bind("127.0.0.1:0").unwrap();
        server.add_scope(Arc::clone(&scope));
        let addr = server.local_addr().unwrap();
        let mut c1 = ScopeClient::connect(addr).unwrap();
        let mut c2 = ScopeClient::connect(addr).unwrap();
        c1.send_at(TimeStamp::from_millis(5), "throughput", 100.0);
        c2.send_at(TimeStamp::from_millis(6), "latency", 2.5);
        spin_until(|| {
            let _ = c1.pump();
            let _ = c2.pump();
            let _ = server.poll();
            server.stats().tuples_received == 2
        });
        assert_eq!(server.stats().connections, 2);
        let guard = scope.lock();
        assert!(guard.signal("throughput").is_some());
        assert!(guard.signal("latency").is_some());
    }

    #[test]
    fn late_data_is_dropped_at_the_server() {
        // §4.4: "Data arriving at the server after this delay is not
        // buffered but dropped immediately."
        let clock = VirtualClock::new();
        clock.advance(TimeDelta::from_secs(10));
        let scope = Scope::new("late", 64, 48, Arc::new(clock.clone())).into_shared();
        scope.lock().set_delay(TimeDelta::from_millis(100));
        let mut server = ScopeServer::bind("127.0.0.1:0").unwrap();
        server.add_scope(Arc::clone(&scope));
        let addr = server.local_addr().unwrap();
        let mut client = ScopeClient::connect(addr).unwrap();
        // Sample from t=1s, now 10s, delay 0.1s: hopelessly late.
        client.send_at(TimeStamp::from_secs(1), "old", 1.0);
        // Fresh sample: acceptable.
        client.send_at(clock.now(), "fresh", 2.0);
        spin_until(|| {
            pump_pair(&mut client, &mut server);
            server.stats().tuples_received == 2
        });
        let guard = scope.lock();
        assert_eq!(guard.buffer().len(), 1, "only the fresh sample queued");
        assert_eq!(guard.buffer().late_drops(), 1);
        assert_eq!(server.stats().tuples_dropped, 1);
    }

    #[test]
    fn malformed_lines_are_counted_and_skipped() {
        let clock = VirtualClock::new();
        let scope = Scope::new("bad", 64, 48, Arc::new(clock)).into_shared();
        scope.lock().set_delay(TimeDelta::from_secs(100));
        let mut server = ScopeServer::bind("127.0.0.1:0").unwrap();
        server.add_scope(Arc::clone(&scope));
        let addr = server.local_addr().unwrap();
        use std::io::Write;
        let mut raw = std::net::TcpStream::connect(addr).unwrap();
        raw.write_all(b"garbage line here extra\n10 1 ok\n\n# comment\nnot-a-time 5 x\n")
            .unwrap();
        raw.flush().unwrap();
        spin_until(|| {
            let _ = server.poll();
            server.stats().tuples_received == 1
        });
        assert_eq!(server.stats().parse_errors, 2);
        assert!(scope.lock().signal("ok").is_some());
    }

    #[test]
    fn disconnect_is_detected() {
        let clock = VirtualClock::new();
        let scope = Scope::new("dc", 64, 48, Arc::new(clock)).into_shared();
        let mut server = ScopeServer::bind("127.0.0.1:0").unwrap();
        server.add_scope(Arc::clone(&scope));
        let addr = server.local_addr().unwrap();
        {
            let _client = ScopeClient::connect(addr).unwrap();
            spin_until(|| {
                let _ = server.poll();
                server.client_count() == 1
            });
        } // drop closes the socket
        spin_until(|| {
            let _ = server.poll();
            server.client_count() == 0
        });
        assert_eq!(server.stats().disconnects, 1);
    }

    #[test]
    fn client_reconnects_after_server_restart() {
        let clock = VirtualClock::new();
        let scope = Scope::new("rc", 64, 48, Arc::new(clock)).into_shared();
        scope.lock().set_delay(TimeDelta::from_secs(100));
        // First server instance.
        let mut server = ScopeServer::bind("127.0.0.1:0").unwrap();
        server.add_scope(Arc::clone(&scope));
        let addr = server.local_addr().unwrap();
        let mut client = ScopeClient::connect(addr).unwrap();
        client.send_at(TimeStamp::from_millis(1), "x", 1.0);
        client.flush_blocking().unwrap();
        spin_until(|| {
            let _ = server.poll();
            server.stats().tuples_received == 1
        });
        drop(server);
        // Pump until the client notices the dead connection.
        spin_until(|| {
            client.send_at(TimeStamp::from_millis(2), "x", 2.0);
            client.pump() == IoPoll::Remove || client.is_closed()
        });
        assert!(client.is_closed());
        // New server instance on the same port.
        let mut server = ScopeServer::bind(addr).unwrap();
        server.add_scope(Arc::clone(&scope));
        client.reconnect().unwrap();
        assert!(!client.is_closed());
        assert_eq!(client.reconnects(), 1);
        client.send_at(TimeStamp::from_millis(3), "x", 3.0);
        let before = server.stats().tuples_received;
        spin_until(|| {
            let _ = client.pump();
            let _ = server.poll();
            server.stats().tuples_received > before
        });
    }

    #[test]
    fn server_poll_reports_idle_when_quiet() {
        let mut server = ScopeServer::bind("127.0.0.1:0").unwrap();
        assert_eq!(server.poll(), IoPoll::Idle);
    }

    #[test]
    fn telemetry_mirrors_stats_in_shared_registry() {
        let registry = gtel::Registry::shared();
        let clock = VirtualClock::new();
        let scope = Scope::new("tel", 64, 48, Arc::new(clock)).into_shared();
        scope.lock().set_delay(TimeDelta::from_secs(100));
        let mut server = ScopeServer::bind("127.0.0.1:0").unwrap();
        server.set_telemetry(Arc::clone(&registry));
        server.add_scope(Arc::clone(&scope));
        let addr = server.local_addr().unwrap();
        let mut client = ScopeClient::connect(addr).unwrap();
        client.set_telemetry(Arc::clone(&registry));
        for i in 0..20u64 {
            client.send_at(TimeStamp::from_millis(i), "m", i as f64);
        }
        spin_until(|| {
            pump_pair(&mut client, &mut server);
            server.stats().tuples_received == 20
        });
        assert_eq!(registry.counter("net.server.connections").get(), 1);
        assert_eq!(registry.counter("net.server.tuples_in").get(), 20);
        assert_eq!(registry.counter("net.client.tuples_out").get(), 20);
        assert!(registry.counter("net.client.bytes_sent").get() > 0);
        assert_eq!(registry.gauge("net.server.clients").get(), 1.0);
        assert_eq!(registry.gauge("net.client.queue_bytes").get(), 0.0);
    }

    #[test]
    fn server_and_client_stats_export_as_tuples() {
        use gscope::StatsExport;
        let s = ServerStats {
            connections: 2,
            disconnects: 1,
            tuples_received: 40,
            parse_errors: 3,
            protocol_errors: 1,
            tuples_dropped: 5,
            tuples_stored: 30,
            store_drops: 2,
            store_errors: 0,
            catch_up_tuples: 12,
            ..ServerStats::default()
        };
        let now = TimeStamp::from_millis(250);
        let tuples = s.to_tuples(now);
        assert_eq!(tuples.len(), 16);
        assert!(tuples.iter().all(|t| t.time == now));
        let parse = tuples
            .iter()
            .find(|t| t.name.as_deref() == Some("net.server.parse_errors"))
            .expect("exported");
        assert_eq!(parse.value, 3.0);

        let c = ClientStats {
            tuples_queued: 7,
            bytes_sent: 123,
            pumps_with_progress: 4,
            ..ClientStats::default()
        };
        let tuples = c.to_tuples(now);
        assert_eq!(tuples.len(), 5);
        let sent = tuples
            .iter()
            .find(|t| t.name.as_deref() == Some("net.client.bytes_sent"))
            .expect("exported");
        assert_eq!(sent.value, 123.0);
    }

    #[test]
    fn attach_helpers_drive_the_pipeline_on_one_loop() {
        // The full §4.4 single-threaded architecture: server io-watch,
        // client pump io-watch, and a periodic sampler, all on one
        // gel loop over the system clock.
        use gel::SystemClock;
        use parking_lot::Mutex;
        let clock: Arc<dyn Clock> = Arc::new(SystemClock::new());
        let scope = Scope::new("attach", 64, 48, Arc::clone(&clock)).into_shared();
        scope.lock().set_delay(TimeDelta::from_secs(100));
        let mut server = ScopeServer::bind("127.0.0.1:0").unwrap();
        server.add_scope(Arc::clone(&scope));
        let addr = server.local_addr().unwrap();
        let server = Arc::new(Mutex::new(server));
        let client = Arc::new(Mutex::new(ScopeClient::connect(addr).unwrap()));

        let mut ml = gel::MainLoop::with_quantizer(
            Arc::clone(&clock),
            gel::Quantizer::new(TimeDelta::from_millis(1)),
        );
        attach_server(&server, &mut ml);
        attach_client(&client, &mut ml);
        // Stream a counter every 5 ms.
        let mut n = 0.0;
        stream_periodic(
            &client,
            &mut ml,
            "counter",
            TimeDelta::from_millis(5),
            move || {
                n += 1.0;
                n
            },
        );
        let handle = ml.handle();
        ml.add_oneshot(TimeDelta::from_millis(150), move |_| handle.quit());
        ml.run();

        let stats = server.lock().stats();
        assert_eq!(stats.connections, 1);
        assert!(
            stats.tuples_received >= 10,
            "periodic sampler streamed tuples: {}",
            stats.tuples_received
        );
        assert!(scope.lock().signal("counter").is_some());
        let cstats = client.lock().stats();
        assert_eq!(cstats.tuples_queued, stats.tuples_received);
        assert_eq!(client.lock().pending_bytes(), 0, "pump drained the queue");
    }

    #[test]
    fn stream_periodic_stops_when_connection_dies() {
        use gel::SystemClock;
        use parking_lot::Mutex;
        let clock: Arc<dyn Clock> = Arc::new(SystemClock::new());
        // A listener we drop immediately: the client's writes start
        // failing once the kernel buffers are gone / RST arrives.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = Arc::new(Mutex::new(ScopeClient::connect(addr).unwrap()));
        drop(listener);
        let mut ml = gel::MainLoop::with_quantizer(
            Arc::clone(&clock),
            gel::Quantizer::new(TimeDelta::from_millis(1)),
        );
        stream_periodic(&client, &mut ml, "x", TimeDelta::from_millis(2), || 1.0);
        let handle = ml.handle();
        ml.add_oneshot(TimeDelta::from_millis(200), move |_| handle.quit());
        ml.run();
        // Either the connection death was detected (source removed
        // itself) or data queued without error; in both cases the loop
        // survived. The important property: no panic, bounded queue.
        let pending = client.lock().pending_bytes();
        assert!(pending < 64 * 1024, "pending bounded: {pending}");
    }

    #[test]
    fn end_to_end_through_event_loops() {
        // One process, two "machines": a client loop streaming a sine
        // and a server loop displaying it — the §4.4 architecture.
        let clock = VirtualClock::new();
        let scope = Scope::new("e2e", 128, 64, Arc::new(clock.clone())).into_shared();
        {
            let mut guard = scope.lock();
            guard.set_delay(TimeDelta::from_secs(1000));
            guard
                .add_signal("wave", SigSource::Buffer, Default::default())
                .unwrap();
            guard.set_polling_mode(TimeDelta::from_millis(50)).unwrap();
            guard.start();
        }
        let mut server = ScopeServer::bind("127.0.0.1:0").unwrap();
        server.add_scope(Arc::clone(&scope));
        let addr = server.local_addr().unwrap();
        let mut client = ScopeClient::connect(addr).unwrap();
        for i in 0..100u64 {
            let t = TimeStamp::from_millis(i * 10);
            client.send_at(t, "wave", (i as f64 / 10.0).sin() * 50.0 + 50.0);
        }
        client.flush_blocking().unwrap();
        spin_until(|| {
            let _ = server.poll();
            server.stats().tuples_received == 100
        });
        // Drive the scope's polling over the buffered data.
        let mut ml =
            gel::MainLoop::with_quantizer(Arc::new(clock.clone()), gel::Quantizer::exact());
        gscope::attach_scope(&scope, &mut ml);
        clock.advance(TimeDelta::from_secs(1001));
        ml.run_until(clock.now() + TimeDelta::from_millis(200));
        let guard = scope.lock();
        let window = guard.display_cols("wave").to_vec();
        assert!(
            window.iter().any(|v| v.is_some()),
            "streamed samples reached the display"
        );
    }
}
