//! Per-peer clock estimation from wire PING/PONG exchanges.
//!
//! The paper (footnote 1) assumes distributed clocks are correlated;
//! at fleet scale that assumption must be *measured*. Each negotiated
//! connection runs periodic NTP-style four-timestamp exchanges:
//!
//! ```text
//! t0 ──PING──▶ t1
//!              t2 ──PONG(t0,t1,t2)──▶ t3
//! ```
//!
//! `t0`/`t3` are the initiator's clock, `t1`/`t2` the responder's.
//! From one exchange:
//!
//! ```text
//! offset = ((t1 - t0) + (t2 - t3)) / 2     (peer − local, µs)
//! rtt    = (t3 - t0) - (t2 - t1)           (network only, µs)
//! ```
//!
//! [`ClockEstimator`] folds successive exchanges with an EWMA
//! (α = 1/8, the classic TCP srtt gain), tracks dispersion (EWMA of
//! |sample − estimate|) and drift (slope of offset over elapsed local
//! time), and reports a conservative error bound:
//!
//! ```text
//! error = rtt/2 + dispersion
//! ```
//!
//! `rtt/2` is the fundamental one-shot uncertainty (the asymmetry of
//! the path is unobservable); dispersion covers jitter between
//! exchanges. Everything downstream — lateness attribution, trace
//! merge — quotes this bound instead of pretending the offset is
//! exact.

/// EWMA gain for offset/RTT smoothing (1/8).
const ALPHA: f64 = 0.125;

/// The timebase every wire clock reading uses: the span clock
/// ([`gtel::fast_now_ns`]) in microseconds. Using the span timebase
/// means a measured peer offset rebases that peer's *span ring*
/// directly — the property `gtool trace merge` relies on.
#[inline]
pub fn wire_now_us() -> u64 {
    gtel::fast_now_ns() / 1_000
}

/// A smoothed per-peer clock model built from PING/PONG samples.
#[derive(Clone, Debug, Default)]
pub struct ClockEstimator {
    offset_us: f64,
    rtt_us: f64,
    disp_us: f64,
    drift_ppm: f64,
    samples: u64,
    first_t3_us: u64,
    first_offset_us: f64,
    last_t3_us: u64,
}

impl ClockEstimator {
    /// A fresh estimator with no samples; all readings are 0 and
    /// [`ClockEstimator::error_us`] is `None` until the first update.
    pub fn new() -> ClockEstimator {
        ClockEstimator::default()
    }

    /// Folds one four-timestamp exchange into the model. `t0`/`t3`
    /// are local-clock µs, `t1`/`t2` the peer's. Samples whose RTT
    /// computes negative (reordered or clock-stepped) are dropped.
    pub fn update(&mut self, t0: u64, t1: u64, t2: u64, t3: u64) {
        let fwd = t1 as i64 - t0 as i64; // includes +offset
        let back = t2 as i64 - t3 as i64; // includes +offset
        let rtt = (t3 as i64 - t0 as i64) - (t2 as i64 - t1 as i64);
        if rtt < 0 {
            return;
        }
        let offset = (fwd + back) as f64 / 2.0;
        let rtt = rtt as f64;
        if self.samples == 0 {
            self.offset_us = offset;
            self.rtt_us = rtt;
            self.disp_us = rtt / 2.0;
            self.first_t3_us = t3;
            self.first_offset_us = offset;
        } else {
            self.disp_us += ALPHA * ((offset - self.offset_us).abs() - self.disp_us);
            self.offset_us += ALPHA * (offset - self.offset_us);
            self.rtt_us += ALPHA * (rtt - self.rtt_us);
            let elapsed = t3.saturating_sub(self.first_t3_us);
            if elapsed > 0 {
                self.drift_ppm =
                    (self.offset_us - self.first_offset_us) / elapsed as f64 * 1_000_000.0;
            }
        }
        self.samples += 1;
        self.last_t3_us = t3;
    }

    /// Smoothed peer − local offset, µs. Add to a local reading to
    /// place it on the peer's timeline.
    pub fn offset_us(&self) -> f64 {
        self.offset_us
    }

    /// Smoothed round-trip time, µs (queueing excluded at the peer).
    pub fn rtt_us(&self) -> f64 {
        self.rtt_us
    }

    /// Estimated relative clock rate, parts per million of local time.
    pub fn drift_ppm(&self) -> f64 {
        self.drift_ppm
    }

    /// Conservative offset error bound (µs): `rtt/2 + dispersion`.
    /// `None` before the first completed exchange.
    pub fn error_us(&self) -> Option<f64> {
        (self.samples > 0).then(|| self.rtt_us / 2.0 + self.disp_us)
    }

    /// Completed exchanges folded into the model.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Local time (µs) of the most recent completed exchange.
    pub fn last_update_us(&self) -> u64 {
        self.last_t3_us
    }
}

/// A read-only snapshot of a peer's clock model, the shape exported
/// through `ClientInfo`, gauges, and flight-recorder clock tables.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ClockStats {
    /// Peer − local offset, µs.
    pub offset_us: f64,
    /// Smoothed round-trip time, µs.
    pub rtt_us: f64,
    /// Estimated drift, ppm.
    pub drift_ppm: f64,
    /// Offset error bound, µs (`rtt/2 + dispersion`).
    pub error_us: f64,
    /// Completed exchanges.
    pub samples: u64,
}

impl ClockEstimator {
    /// Snapshot for export; `None` before the first exchange.
    pub fn stats(&self) -> Option<ClockStats> {
        self.error_us().map(|error_us| ClockStats {
            offset_us: self.offset_us,
            rtt_us: self.rtt_us,
            drift_ppm: self.drift_ppm,
            error_us,
            samples: self.samples,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_exchange_recovers_offset_and_rtt() {
        let mut est = ClockEstimator::new();
        // Peer runs 500µs ahead; each direction takes 100µs; the peer
        // thinks for 30µs between receive and send.
        let (t0, one_way, off, think) = (1_000_000u64, 100i64, 500i64, 30i64);
        let t1 = (t0 as i64 + one_way + off) as u64;
        let t2 = (t1 as i64 + think) as u64;
        let t3 = (t2 as i64 + one_way - off) as u64;
        est.update(t0, t1, t2, t3);
        assert_eq!(est.offset_us(), 500.0);
        assert_eq!(est.rtt_us(), 200.0);
        assert_eq!(est.samples(), 1);
        let err = est.error_us().unwrap();
        assert!(err >= 100.0, "bound covers one-way delay, got {err}");
    }

    #[test]
    fn symmetric_path_converges_and_bounds_jitter() {
        let mut est = ClockEstimator::new();
        let off = -2_000i64; // peer 2ms behind
        let mut t0 = 10_000_000u64;
        // Deterministic jitter in [0, 80]µs per direction.
        let mut rng = 12345u64;
        let mut jit = move || {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
            (rng >> 33) as i64 % 81
        };
        for _ in 0..64 {
            let fwd = 150 + jit();
            let back = 150 + jit();
            let t1 = (t0 as i64 + fwd + off) as u64;
            let t2 = t1 + 10;
            let t3 = (t2 as i64 + back - off) as u64;
            est.update(t0, t1, t2, t3);
            t0 = t3 + 100_000;
        }
        let err = est.error_us().unwrap();
        assert!(
            (est.offset_us() - off as f64).abs() <= err,
            "true offset {off} outside estimate {} ± {err}",
            est.offset_us()
        );
        // With ≤80µs jitter and ~300µs RTT the bound stays modest.
        assert!(err < 400.0, "error bound blew up: {err}");
        assert_eq!(est.samples(), 64);
    }

    #[test]
    fn drift_shows_up_in_ppm() {
        let mut est = ClockEstimator::new();
        // Peer gains 100µs per second: 100 ppm.
        let mut t0 = 0u64;
        for i in 0..20i64 {
            let off = i * 100_000 / 1_000; // 100µs per 1s step
            let t1 = (t0 as i64 + 50 + off) as u64;
            let t2 = t1;
            let t3 = (t2 as i64 + 50 - off) as u64;
            est.update(t0, t1, t2, t3);
            t0 += 1_000_000;
        }
        let ppm = est.drift_ppm();
        assert!(
            (50.0..150.0).contains(&ppm),
            "expected ~100ppm drift, got {ppm}"
        );
    }

    #[test]
    fn negative_rtt_samples_are_dropped() {
        let mut est = ClockEstimator::new();
        est.update(1_000, 2_000, 5_000, 3_000); // t2-t1 > t3-t0
        assert_eq!(est.samples(), 0);
        assert!(est.error_us().is_none());
        assert!(est.stats().is_none());
    }
}
