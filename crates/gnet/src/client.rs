//! The gscope client library (§4.4).
//!
//! "Clients use the gscope client API to connect to a server ... Clients
//! asynchronously send BUFFER signal data in tuple format to the
//! server." The client is single-threaded and I/O-driven: `send`
//! enqueues tuples into an in-memory out-buffer, and `pump` (typically
//! wired to a `gel` I/O watch) writes whatever the non-blocking socket
//! accepts — and drains whatever the server sent back.
//!
//! # Wire negotiation
//!
//! A plain [`ScopeClient::connect`] speaks the §3.3 text protocol and
//! never will anything else — byte-for-byte compatible with `nc`. A
//! client built with [`ScopeClient::connect_binary`] (or upgraded via
//! [`ScopeClient::set_prefer_binary`]) sends a HELLO frame and keeps
//! emitting text until the server answers WELCOME; from then on sends
//! are batched into binary DATA frames ([`crate::wire`]). Against a
//! legacy text server the WELCOME never comes and the client simply
//! stays on text — automatic fallback, no error, no timeout.
//!
//! # Receiving
//!
//! After [`ScopeClient::subscribe`] the server streams the live feed
//! back; `pump` decodes it (either encoding) into a buffer drained
//! with [`ScopeClient::take_received`]. Backpressure transitions
//! arrive as [`StreamEvent`]s.

use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::Arc;

use gel::{Clock, IoPoll, TimeStamp};
use gscope::{intern, write_tuple_line, StatsExport, Tuple};
use gtel::{Counter, Gauge, Registry};

use crate::clock::{wire_now_us, ClockEstimator, ClockStats};
use crate::wire::{
    decode_arg, decode_caps, decode_data, decode_pong, frame_arg, frame_hello, frame_ping,
    frame_pong, split_message, BatchEncoder, Msg, Origin, Protocol, FLAG_CLOCK_SYNC, FLAG_ORIGIN,
    LOCAL_CAPS, OP_CATCHUP_BEGIN, OP_CATCHUP_END, OP_DATA, OP_PING, OP_PONG, OP_SUB, OP_WELCOME,
    TEXT_CATCHUP_BEGIN, TEXT_CATCHUP_END, TEXT_SUB,
};

/// Flush a pending binary batch once its records reach this size, so
/// frames stay cache-friendly and far below the wire's hard cap.
const BATCH_FLUSH_BYTES: usize = 32 << 10;

/// Default gap between clock-sync probes on a negotiated connection.
const PING_INTERVAL_US: u64 = 200_000;

/// Counters describing client activity.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Tuples accepted by [`ScopeClient::send`].
    pub tuples_queued: u64,
    /// Bytes successfully written to the socket.
    pub bytes_sent: u64,
    /// `pump` calls that made progress in either direction.
    pub pumps_with_progress: u64,
    /// Tuples received from the server's live feed / catch-up replay.
    pub tuples_received: u64,
    /// Server messages this client could not decode (skipped).
    pub recv_errors: u64,
}

impl StatsExport for ClientStats {
    fn to_tuples(&self, now: TimeStamp) -> Vec<Tuple> {
        vec![
            Tuple::new(now, self.tuples_queued as f64, "net.client.tuples_out"),
            Tuple::new(now, self.bytes_sent as f64, "net.client.bytes_sent"),
            Tuple::new(
                now,
                self.pumps_with_progress as f64,
                "net.client.pumps_with_progress",
            ),
            Tuple::new(now, self.tuples_received as f64, "net.client.tuples_in"),
            Tuple::new(now, self.recv_errors as f64, "net.client.recv_errors"),
        ]
    }
}

/// Out-of-band notifications decoded from the server stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StreamEvent {
    /// The server accepted binary encoding (WELCOME).
    Negotiated(Protocol),
    /// The live feed was shed; a store replay from this µs follows.
    CatchUpBegin(u64),
    /// Replay finished through this µs; the live feed resumes after.
    CatchUpEnd(u64),
}

/// Cached gtel handles for one [`ScopeClient`].
#[derive(Debug)]
struct ClientTelemetry {
    registry: Arc<Registry>,
    /// `net.client.tuples_out` — tuples queued for transmission.
    tuples_out: Arc<Counter>,
    /// `net.client.bytes_sent` — bytes the socket accepted.
    bytes_sent: Arc<Counter>,
    /// `net.client.reconnects` — successful reconnections.
    reconnects: Arc<Counter>,
    /// `net.client.queue_bytes` — out-buffer depth after each pump.
    queue_bytes: Arc<Gauge>,
    /// `net.client.clock.offset_us` — estimated server − client offset.
    clock_offset: Arc<Gauge>,
    /// `net.client.clock.rtt_us` — smoothed sync-exchange RTT.
    clock_rtt: Arc<Gauge>,
    /// `net.client.clock.error_us` — offset error bound.
    clock_error: Arc<Gauge>,
}

impl ClientTelemetry {
    fn new(registry: Arc<Registry>) -> Self {
        ClientTelemetry {
            tuples_out: registry.counter("net.client.tuples_out"),
            bytes_sent: registry.counter("net.client.bytes_sent"),
            reconnects: registry.counter("net.client.reconnects"),
            queue_bytes: registry.gauge("net.client.queue_bytes"),
            clock_offset: registry.gauge("net.client.clock.offset_us"),
            clock_rtt: registry.gauge("net.client.clock.rtt_us"),
            clock_error: registry.gauge("net.client.clock.error_us"),
            registry,
        }
    }
}

impl Default for ClientTelemetry {
    fn default() -> Self {
        ClientTelemetry::new(Registry::shared())
    }
}

/// A non-blocking streaming connection to a [`ScopeServer`].
///
/// [`ScopeServer`]: crate::server::ScopeServer
pub struct ScopeClient {
    stream: TcpStream,
    addr: std::net::SocketAddr,
    outbuf: VecDeque<u8>,
    /// Reusable line-encoding scratch: the send path formats into this
    /// buffer and copies into `outbuf`, so steady-state sends allocate
    /// nothing (no intermediate `String` per tuple).
    scratch: Vec<u8>,
    /// Pending binary batch (used once `proto` is Binary).
    enc: BatchEncoder,
    /// Bytes read from the server, split into messages by `pump`.
    inbuf: Vec<u8>,
    read_buf: Vec<u8>,
    /// DATA decode scratch.
    wire_scratch: Vec<crate::wire::WireRec>,
    /// Tuples received from the server, drained by `take_received`.
    rx: Vec<Tuple>,
    /// Events received from the server, drained by `take_events`.
    events: Vec<StreamEvent>,
    /// Encoding this client currently emits.
    proto: Protocol,
    /// HELLO sent; upgrade to binary when WELCOME arrives.
    prefer_binary: bool,
    /// Capability bits the server's WELCOME granted (intersection).
    peer_caps: u8,
    /// Node identity stamped into origin headers; `None` disables
    /// stamping even when the server negotiated [`FLAG_ORIGIN`].
    node_id: Option<u64>,
    /// Per-connection clock model fed by PING/PONG exchanges.
    clock: ClockEstimator,
    /// Local µs of the last probe sent (0 = never).
    last_ping_us: u64,
    /// Gap between probes; tests shrink this to converge fast.
    ping_interval_us: u64,
    stats: ClientStats,
    closed: bool,
    reconnects: u64,
    telemetry: ClientTelemetry,
}

impl ScopeClient {
    /// Connects to a gscope server and switches the socket to
    /// non-blocking mode. The connection speaks text only — the legacy
    /// §3.3 protocol, byte-identical to what `nc` would send.
    ///
    /// # Errors
    ///
    /// Propagates connection errors.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        let addr = stream.peer_addr()?;
        stream.set_nonblocking(true)?;
        stream.set_nodelay(true)?;
        Ok(ScopeClient {
            stream,
            addr,
            outbuf: VecDeque::new(),
            scratch: Vec::with_capacity(64),
            enc: BatchEncoder::new(),
            inbuf: Vec::new(),
            read_buf: vec![0u8; 16 << 10],
            wire_scratch: Vec::new(),
            rx: Vec::new(),
            events: Vec::new(),
            proto: Protocol::Text,
            prefer_binary: false,
            peer_caps: 0,
            node_id: None,
            clock: ClockEstimator::new(),
            last_ping_us: 0,
            ping_interval_us: PING_INTERVAL_US,
            stats: ClientStats::default(),
            closed: false,
            reconnects: 0,
            telemetry: ClientTelemetry::default(),
        })
    }

    /// Connects and announces binary capability (HELLO). Sends stay
    /// text until the server answers WELCOME; against a legacy server
    /// the client silently remains on text.
    ///
    /// # Errors
    ///
    /// Propagates connection errors.
    pub fn connect_binary(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let mut c = ScopeClient::connect(addr)?;
        c.set_prefer_binary();
        Ok(c)
    }

    /// Announces binary capability on an existing connection (queues a
    /// HELLO frame). Idempotent.
    pub fn set_prefer_binary(&mut self) {
        if self.prefer_binary {
            return;
        }
        self.prefer_binary = true;
        self.scratch.clear();
        frame_hello(&mut self.scratch, LOCAL_CAPS);
        self.outbuf.extend(self.scratch.iter().copied());
    }

    /// Sets the node identity stamped into origin headers once the
    /// server negotiates [`FLAG_ORIGIN`]. Without one, batches stay
    /// plain `OP_DATA` even on a capable connection.
    pub fn set_node_id(&mut self, node_id: u64) {
        self.node_id = Some(node_id);
    }

    /// The node identity stamped into origin headers, if any.
    pub fn node_id(&self) -> Option<u64> {
        self.node_id
    }

    /// Shrinks (or widens) the clock-probe interval. Mostly a test
    /// hook: production connections converge within a few defaults.
    pub fn set_ping_interval_us(&mut self, interval_us: u64) {
        self.ping_interval_us = interval_us.max(1);
    }

    /// The connection's clock model (server − client offset, RTT,
    /// drift, error bound); `None` until a sync exchange completes.
    pub fn clock_stats(&self) -> Option<ClockStats> {
        self.clock.stats()
    }

    /// Capability bits the server granted in its WELCOME.
    pub fn peer_caps(&self) -> u8 {
        self.peer_caps
    }

    /// The encoding this client currently emits ([`Protocol::Binary`]
    /// only after the server's WELCOME has arrived).
    pub fn negotiated(&self) -> Protocol {
        self.proto
    }

    /// Subscribes to the server's live feed; received tuples appear in
    /// [`ScopeClient::take_received`].
    pub fn subscribe(&mut self) {
        self.scratch.clear();
        match self.proto {
            Protocol::Binary => frame_arg(&mut self.scratch, OP_SUB, 0),
            Protocol::Text => {
                self.scratch.extend_from_slice(TEXT_SUB.as_bytes());
                self.scratch.push(b'\n');
            }
        }
        self.outbuf.extend(self.scratch.iter().copied());
    }

    /// The registry this client's `net.client.*` metrics live in.
    pub fn telemetry(&self) -> &Arc<Registry> {
        &self.telemetry.registry
    }

    /// Re-homes the client's metrics into `registry`.
    pub fn set_telemetry(&mut self, registry: Arc<Registry>) {
        self.telemetry = ClientTelemetry::new(registry);
    }

    /// Re-establishes a dead connection to the same server, keeping any
    /// queued-but-unsent tuples. Long-lived monitors survive scope
    /// server restarts this way. Negotiation restarts from text (the
    /// new peer may be a different server); a HELLO is re-queued when
    /// binary was preferred.
    ///
    /// # Errors
    ///
    /// Propagates connection errors (the client stays closed).
    pub fn reconnect(&mut self) -> std::io::Result<()> {
        let stream = TcpStream::connect(self.addr)?;
        stream.set_nonblocking(true)?;
        stream.set_nodelay(true)?;
        self.stream = stream;
        self.closed = false;
        self.reconnects += 1;
        self.proto = Protocol::Text;
        self.peer_caps = 0;
        self.clock = ClockEstimator::new();
        self.last_ping_us = 0;
        self.inbuf.clear();
        self.enc.reset();
        if self.prefer_binary {
            self.scratch.clear();
            frame_hello(&mut self.scratch, LOCAL_CAPS);
            // Head of the queue: negotiation precedes queued tuples.
            for &b in self.scratch.iter().rev() {
                self.outbuf.push_front(b);
            }
        }
        self.telemetry.reconnects.inc();
        Ok(())
    }

    /// Times [`ScopeClient::reconnect`] succeeded.
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// Returns client statistics.
    pub fn stats(&self) -> ClientStats {
        self.stats
    }

    /// Bytes queued but not yet written (including any un-flushed
    /// binary batch).
    pub fn pending_bytes(&self) -> usize {
        self.outbuf.len() + self.enc.pending_bytes()
    }

    /// True once the server has closed the connection or a write failed.
    pub fn is_closed(&self) -> bool {
        self.closed
    }

    /// Queues one tuple for transmission.
    pub fn send(&mut self, tuple: &Tuple) {
        match (self.proto, &tuple.name) {
            (Protocol::Binary, name) => {
                // Already-interned names skip the re-intern hash walk.
                self.enc
                    .push(tuple.time.as_micros(), tuple.value, name.as_ref());
                self.after_queue();
            }
            (Protocol::Text, _) => self.send_parts(tuple.time, tuple.value, tuple.name()),
        }
    }

    /// Queues one tuple given as loose parts — the zero-allocation send
    /// path: on text, the line is formatted into a reused scratch
    /// buffer and appended to the out-buffer with no `Tuple` or
    /// `String` built; on binary, the tuple is delta-encoded into the
    /// pending batch (name interning allocates only on first use).
    pub fn send_parts(&mut self, time: TimeStamp, value: f64, name: Option<&str>) {
        match self.proto {
            Protocol::Text => {
                self.scratch.clear();
                write_tuple_line(&mut self.scratch, time, value, name);
                self.scratch.push(b'\n');
                self.outbuf.extend(self.scratch.iter().copied());
            }
            Protocol::Binary => {
                let interned = name.map(intern);
                self.enc.push(time.as_micros(), value, interned.as_ref());
            }
        }
        self.after_queue();
    }

    fn after_queue(&mut self) {
        self.stats.tuples_queued += 1;
        self.telemetry.tuples_out.inc();
        if self.enc.pending_bytes() >= BATCH_FLUSH_BYTES {
            self.flush_batch();
        }
        self.telemetry.queue_bytes.set_count(self.pending_bytes());
    }

    /// Moves the pending binary batch (if any) into the out-buffer as
    /// one DATA frame — origin-stamped when the server negotiated
    /// [`FLAG_ORIGIN`] and a node id is set, so every batch carries
    /// its flush time and the producer's open span for downstream
    /// lateness attribution and trace merging.
    fn flush_batch(&mut self) {
        if self.enc.is_empty() {
            return;
        }
        self.scratch.clear();
        match self.node_id {
            Some(node_id) if self.peer_caps & FLAG_ORIGIN != 0 => {
                let origin = Origin {
                    node_id,
                    send_us: wire_now_us(),
                    span_id: gtel::TraceCtx::current_span(),
                };
                self.enc.frame_into_origin(&mut self.scratch, &origin);
            }
            _ => {
                self.enc.frame_into(&mut self.scratch);
            }
        }
        self.outbuf.extend(self.scratch.iter().copied());
    }

    /// Queues a clock probe when the interval elapsed on a connection
    /// that negotiated [`FLAG_CLOCK_SYNC`].
    fn maybe_ping(&mut self) {
        if self.peer_caps & FLAG_CLOCK_SYNC == 0 {
            return;
        }
        let now = wire_now_us();
        if now.saturating_sub(self.last_ping_us) < self.ping_interval_us {
            return;
        }
        self.last_ping_us = now;
        self.scratch.clear();
        frame_ping(&mut self.scratch, now);
        self.outbuf.extend(self.scratch.iter().copied());
    }

    /// Queues a named sample stamped with `clock`'s current time.
    pub fn send_now(&mut self, clock: &dyn Clock, name: &str, value: f64) {
        self.send_parts(clock.now(), value, Some(name));
    }

    /// Queues a named sample at an explicit time.
    pub fn send_at(&mut self, time: TimeStamp, name: &str, value: f64) {
        self.send_parts(time, value, Some(name));
    }

    /// Tuples the server streamed to this client since the last call.
    pub fn take_received(&mut self) -> Vec<Tuple> {
        std::mem::take(&mut self.rx)
    }

    /// Stream events (negotiation, catch-up transitions) since the
    /// last call.
    pub fn take_events(&mut self) -> Vec<StreamEvent> {
        std::mem::take(&mut self.events)
    }

    /// Writes as much queued data as the socket accepts right now and
    /// drains whatever the server sent back.
    ///
    /// Returns [`IoPoll::Worked`] if bytes moved either way,
    /// [`IoPoll::Idle`] if nothing could, and [`IoPoll::Remove`] on a
    /// dead connection — the values a `gel` I/O watch needs.
    pub fn pump(&mut self) -> IoPoll {
        if self.closed {
            return IoPoll::Remove;
        }
        self.flush_batch();
        self.maybe_ping();
        let mut progressed = false;
        while !self.outbuf.is_empty() {
            let (front, _) = self.outbuf.as_slices();
            match self.stream.write(front) {
                Ok(0) => {
                    self.closed = true;
                    return IoPoll::Remove;
                }
                Ok(n) => {
                    self.outbuf.drain(..n);
                    self.stats.bytes_sent += n as u64;
                    self.telemetry.bytes_sent.add(n as u64);
                    progressed = true;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.closed = true;
                    return IoPoll::Remove;
                }
            }
        }
        progressed |= self.read_incoming();
        if self.closed {
            return IoPoll::Remove;
        }
        self.telemetry.queue_bytes.set_count(self.pending_bytes());
        if progressed {
            self.stats.pumps_with_progress += 1;
            IoPoll::Worked
        } else {
            IoPoll::Idle
        }
    }

    /// Drains the socket's receive side and decodes complete messages.
    fn read_incoming(&mut self) -> bool {
        let mut any = false;
        loop {
            match self.stream.read(&mut self.read_buf) {
                Ok(0) => {
                    self.closed = true;
                    break;
                }
                Ok(n) => {
                    self.inbuf.extend_from_slice(&self.read_buf[..n]);
                    any = true;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.closed = true;
                    break;
                }
            }
        }
        if self.inbuf.is_empty() {
            return any;
        }
        // Moved out so parsed slices don't hold a borrow of `self`
        // while handlers mutate it.
        let mut pending = std::mem::take(&mut self.inbuf);
        let mut consumed = 0usize;
        loop {
            match split_message(&pending[consumed..]) {
                Ok(None) => break,
                Ok(Some((msg, n))) => {
                    consumed += n;
                    self.handle_message(msg);
                }
                Err(_) => {
                    // Server framing broken: nothing downstream can be
                    // trusted.
                    self.stats.recv_errors += 1;
                    self.closed = true;
                    break;
                }
            }
        }
        pending.drain(..consumed);
        self.inbuf = pending;
        any
    }

    fn handle_message(&mut self, msg: Msg<'_>) {
        match msg {
            Msg::Frame {
                op: OP_WELCOME,
                body,
            } => {
                if self.prefer_binary && self.proto != Protocol::Binary {
                    self.proto = Protocol::Binary;
                    // The server granted the intersection of what we
                    // advertised and what it implements; mask again so
                    // a buggy peer can't turn on bits we never offered.
                    let (_, flags) = decode_caps(body);
                    self.peer_caps = flags & LOCAL_CAPS;
                    self.events.push(StreamEvent::Negotiated(Protocol::Binary));
                }
            }
            Msg::Frame { op: OP_PING, body } => match decode_arg(body) {
                // The server is probing us: echo t0 with our receive
                // and send times (one instant — we reply inline).
                Ok(t0) => {
                    let now = wire_now_us();
                    self.scratch.clear();
                    frame_pong(&mut self.scratch, t0, now, now);
                    self.outbuf.extend(self.scratch.iter().copied());
                }
                Err(_) => self.stats.recv_errors += 1,
            },
            Msg::Frame { op: OP_PONG, body } => match decode_pong(body) {
                Ok((t0, t1, t2)) => {
                    self.clock.update(t0, t1, t2, wire_now_us());
                    if let Some(s) = self.clock.stats() {
                        self.telemetry.clock_offset.set(s.offset_us);
                        self.telemetry.clock_rtt.set(s.rtt_us);
                        self.telemetry.clock_error.set(s.error_us);
                    }
                }
                Err(_) => self.stats.recv_errors += 1,
            },
            Msg::Frame { op: OP_DATA, body } => {
                self.wire_scratch.clear();
                match decode_data(body, &mut self.wire_scratch) {
                    Ok(n) => {
                        self.stats.tuples_received += u64::from(n);
                        for rec in self.wire_scratch.drain(..) {
                            self.rx.push(Tuple {
                                time: TimeStamp::from_micros(rec.time_us),
                                value: rec.value,
                                name: rec.name,
                            });
                        }
                    }
                    Err(_) => {
                        self.stats.recv_errors += 1;
                        self.closed = true;
                    }
                }
            }
            Msg::Frame {
                op: OP_CATCHUP_BEGIN,
                body,
            } => match decode_arg(body) {
                Ok(us) => self.events.push(StreamEvent::CatchUpBegin(us)),
                Err(_) => self.stats.recv_errors += 1,
            },
            Msg::Frame {
                op: OP_CATCHUP_END,
                body,
            } => match decode_arg(body) {
                Ok(us) => self.events.push(StreamEvent::CatchUpEnd(us)),
                Err(_) => self.stats.recv_errors += 1,
            },
            Msg::Frame { .. } => {
                self.stats.recv_errors += 1;
            }
            Msg::Line(line) => self.handle_line(line),
        }
    }

    fn handle_line(&mut self, line: &[u8]) {
        let Ok(text) = std::str::from_utf8(line) else {
            self.stats.recv_errors += 1;
            return;
        };
        let trimmed = text.trim();
        if trimmed.is_empty() {
            return;
        }
        if trimmed.starts_with('#') {
            // Catch-up markers ride as comments on text connections so
            // legacy readers skip them transparently.
            if let Some(v) = trimmed.strip_prefix(TEXT_CATCHUP_BEGIN) {
                if let Ok(us) = v.trim().parse::<u64>() {
                    self.events.push(StreamEvent::CatchUpBegin(us));
                }
            } else if let Some(v) = trimmed.strip_prefix(TEXT_CATCHUP_END) {
                if let Ok(us) = v.trim().parse::<u64>() {
                    self.events.push(StreamEvent::CatchUpEnd(us));
                }
            }
            return;
        }
        match Tuple::parse_raw(trimmed, 0) {
            Ok(raw) => {
                self.rx.push(raw.to_tuple());
                self.stats.tuples_received += 1;
            }
            Err(_) => self.stats.recv_errors += 1,
        }
    }

    /// Blocks until the out-buffer (and any pending binary batch)
    /// drains (test/shutdown helper; spins on the non-blocking socket).
    ///
    /// # Errors
    ///
    /// Returns an error if the connection dies first.
    pub fn flush_blocking(&mut self) -> std::io::Result<()> {
        self.flush_batch();
        while !self.outbuf.is_empty() {
            match self.pump() {
                IoPoll::Remove => {
                    return Err(std::io::Error::new(
                        ErrorKind::BrokenPipe,
                        "connection closed while flushing",
                    ))
                }
                IoPoll::Idle => std::thread::sleep(std::time::Duration::from_millis(1)),
                IoPoll::Worked => {}
            }
        }
        Ok(())
    }
}
