//! The gscope client library (§4.4).
//!
//! "Clients use the gscope client API to connect to a server ... Clients
//! asynchronously send BUFFER signal data in tuple format to the
//! server." The client is single-threaded and I/O-driven: `send`
//! enqueues tuples into an in-memory out-buffer, and `pump` (typically
//! wired to a `gel` I/O watch) writes whatever the non-blocking socket
//! accepts.

use std::collections::VecDeque;
use std::io::{ErrorKind, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::Arc;

use gel::{Clock, IoPoll, TimeStamp};
use gscope::{write_tuple_line, StatsExport, Tuple};
use gtel::{Counter, Gauge, Registry};

/// Counters describing client activity.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Tuples accepted by [`ScopeClient::send`].
    pub tuples_queued: u64,
    /// Bytes successfully written to the socket.
    pub bytes_sent: u64,
    /// `pump` calls that wrote at least one byte.
    pub pumps_with_progress: u64,
}

impl StatsExport for ClientStats {
    fn to_tuples(&self, now: TimeStamp) -> Vec<Tuple> {
        vec![
            Tuple::new(now, self.tuples_queued as f64, "net.client.tuples_out"),
            Tuple::new(now, self.bytes_sent as f64, "net.client.bytes_sent"),
            Tuple::new(
                now,
                self.pumps_with_progress as f64,
                "net.client.pumps_with_progress",
            ),
        ]
    }
}

/// Cached gtel handles for one [`ScopeClient`].
#[derive(Debug)]
struct ClientTelemetry {
    registry: Arc<Registry>,
    /// `net.client.tuples_out` — tuples queued for transmission.
    tuples_out: Arc<Counter>,
    /// `net.client.bytes_sent` — bytes the socket accepted.
    bytes_sent: Arc<Counter>,
    /// `net.client.reconnects` — successful reconnections.
    reconnects: Arc<Counter>,
    /// `net.client.queue_bytes` — out-buffer depth after each pump.
    queue_bytes: Arc<Gauge>,
}

impl ClientTelemetry {
    fn new(registry: Arc<Registry>) -> Self {
        ClientTelemetry {
            tuples_out: registry.counter("net.client.tuples_out"),
            bytes_sent: registry.counter("net.client.bytes_sent"),
            reconnects: registry.counter("net.client.reconnects"),
            queue_bytes: registry.gauge("net.client.queue_bytes"),
            registry,
        }
    }
}

impl Default for ClientTelemetry {
    fn default() -> Self {
        ClientTelemetry::new(Registry::shared())
    }
}

/// A non-blocking streaming connection to a [`ScopeServer`].
///
/// [`ScopeServer`]: crate::server::ScopeServer
pub struct ScopeClient {
    stream: TcpStream,
    addr: std::net::SocketAddr,
    outbuf: VecDeque<u8>,
    /// Reusable line-encoding scratch: the send path formats into this
    /// buffer and copies into `outbuf`, so steady-state sends allocate
    /// nothing (no intermediate `String` per tuple).
    scratch: Vec<u8>,
    stats: ClientStats,
    closed: bool,
    reconnects: u64,
    telemetry: ClientTelemetry,
}

impl ScopeClient {
    /// Connects to a gscope server and switches the socket to
    /// non-blocking mode.
    ///
    /// # Errors
    ///
    /// Propagates connection errors.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        let addr = stream.peer_addr()?;
        stream.set_nonblocking(true)?;
        stream.set_nodelay(true)?;
        Ok(ScopeClient {
            stream,
            addr,
            outbuf: VecDeque::new(),
            scratch: Vec::with_capacity(64),
            stats: ClientStats::default(),
            closed: false,
            reconnects: 0,
            telemetry: ClientTelemetry::default(),
        })
    }

    /// The registry this client's `net.client.*` metrics live in.
    pub fn telemetry(&self) -> &Arc<Registry> {
        &self.telemetry.registry
    }

    /// Re-homes the client's metrics into `registry`.
    pub fn set_telemetry(&mut self, registry: Arc<Registry>) {
        self.telemetry = ClientTelemetry::new(registry);
    }

    /// Re-establishes a dead connection to the same server, keeping any
    /// queued-but-unsent tuples. Long-lived monitors survive scope
    /// server restarts this way.
    ///
    /// # Errors
    ///
    /// Propagates connection errors (the client stays closed).
    pub fn reconnect(&mut self) -> std::io::Result<()> {
        let stream = TcpStream::connect(self.addr)?;
        stream.set_nonblocking(true)?;
        stream.set_nodelay(true)?;
        self.stream = stream;
        self.closed = false;
        self.reconnects += 1;
        self.telemetry.reconnects.inc();
        Ok(())
    }

    /// Times [`ScopeClient::reconnect`] succeeded.
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// Returns client statistics.
    pub fn stats(&self) -> ClientStats {
        self.stats
    }

    /// Bytes queued but not yet written.
    pub fn pending_bytes(&self) -> usize {
        self.outbuf.len()
    }

    /// True once the server has closed the connection or a write failed.
    pub fn is_closed(&self) -> bool {
        self.closed
    }

    /// Queues one tuple for transmission.
    pub fn send(&mut self, tuple: &Tuple) {
        self.send_parts(tuple.time, tuple.value, tuple.name());
    }

    /// Queues one tuple given as loose parts — the zero-allocation send
    /// path: the line is formatted into a reused scratch buffer and
    /// appended to the out-buffer, with no `Tuple` or `String` built.
    pub fn send_parts(&mut self, time: TimeStamp, value: f64, name: Option<&str>) {
        self.scratch.clear();
        write_tuple_line(&mut self.scratch, time, value, name);
        self.scratch.push(b'\n');
        self.outbuf.extend(self.scratch.iter().copied());
        self.stats.tuples_queued += 1;
        self.telemetry.tuples_out.inc();
        self.telemetry.queue_bytes.set_count(self.outbuf.len());
    }

    /// Queues a named sample stamped with `clock`'s current time.
    pub fn send_now(&mut self, clock: &dyn Clock, name: &str, value: f64) {
        self.send_parts(clock.now(), value, Some(name));
    }

    /// Queues a named sample at an explicit time.
    pub fn send_at(&mut self, time: TimeStamp, name: &str, value: f64) {
        self.send_parts(time, value, Some(name));
    }

    /// Writes as much queued data as the socket accepts right now.
    ///
    /// Returns [`IoPoll::Worked`] if bytes moved, [`IoPoll::Idle`] if
    /// the socket is full or the queue empty, and [`IoPoll::Remove`] on
    /// a dead connection — the values a `gel` I/O watch needs.
    pub fn pump(&mut self) -> IoPoll {
        if self.closed {
            return IoPoll::Remove;
        }
        if self.outbuf.is_empty() {
            return IoPoll::Idle;
        }
        let mut progressed = false;
        while !self.outbuf.is_empty() {
            let (front, _) = self.outbuf.as_slices();
            match self.stream.write(front) {
                Ok(0) => {
                    self.closed = true;
                    return IoPoll::Remove;
                }
                Ok(n) => {
                    self.outbuf.drain(..n);
                    self.stats.bytes_sent += n as u64;
                    self.telemetry.bytes_sent.add(n as u64);
                    progressed = true;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.closed = true;
                    return IoPoll::Remove;
                }
            }
        }
        self.telemetry.queue_bytes.set_count(self.outbuf.len());
        if progressed {
            self.stats.pumps_with_progress += 1;
            IoPoll::Worked
        } else {
            IoPoll::Idle
        }
    }

    /// Blocks until the out-buffer drains (test/shutdown helper; spins
    /// on the non-blocking socket).
    ///
    /// # Errors
    ///
    /// Returns an error if the connection dies first.
    pub fn flush_blocking(&mut self) -> std::io::Result<()> {
        while !self.outbuf.is_empty() {
            match self.pump() {
                IoPoll::Remove => {
                    return Err(std::io::Error::new(
                        ErrorKind::BrokenPipe,
                        "connection closed while flushing",
                    ))
                }
                IoPoll::Idle => std::thread::sleep(std::time::Duration::from_millis(1)),
                IoPoll::Worked => {}
            }
        }
        Ok(())
    }
}
