//! The wire protocol: self-describing text/binary framing with a
//! delta-varint batch codec.
//!
//! # Self-describing stream
//!
//! The §3.3 text protocol frames every message with `\n` and never
//! produces a NUL byte. Binary frames therefore claim the byte `0x00`
//! as a sentinel:
//!
//! ```text
//! 0x00 | payload_len uvarint | payload
//! payload := opcode u8 | body
//! ```
//!
//! Any receiver can split an incoming stream into messages by looking
//! at one byte: `0x00` starts a frame, anything else starts a text
//! line. Text and binary messages may interleave freely on one
//! connection, which is what makes negotiation races harmless — both
//! sides always understand both encodings; HELLO/WELCOME only selects
//! which encoding a sender *prefers* to emit.
//!
//! # Negotiation
//!
//! A binary-capable client sends [`frame_hello`] after connecting and
//! keeps emitting text. A binary-capable server answers
//! [`frame_welcome`]; from then on both sides may switch to DATA
//! frames. A legacy text client never sends HELLO and a legacy server
//! never answers WELCOME, so either mix degrades to text silently —
//! the automatic fallback the protocol requires.
//!
//! # DATA batches
//!
//! The body of a DATA frame carries the same ~12-byte-per-sample
//! record stream as a gstore segment block (PR 4): delta-encoded
//! microsecond times, block-scoped interned name ids with inline
//! definitions, raw `f64` bits. One deliberate difference: a wire
//! batch merges tuples from many producers and is not guaranteed
//! monotone, so time deltas are **zigzag-encoded signed** varints
//! where the store (which enforces monotonicity on append) uses
//! unsigned ones.
//!
//! ```text
//! body      := first_us uvarint | record*
//! record    := 0x01 dt_zigzag uvarint | name_id uvarint | value f64le
//!            | 0x02 name_id uvarint | len uvarint | utf8 bytes
//! ```
//!
//! Name ids are frame-scoped (1-based, 0 = unnamed) so every frame is
//! self-contained — the property that lets one encoded frame fan out
//! to any number of subscribers regardless of when they connected.

use std::collections::HashMap;
use std::fmt;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

use gscope::intern;
use gstore::codec::{get_uvarint, put_uvarint};

/// Protocol version carried in HELLO/WELCOME.
pub const WIRE_VERSION: u8 = 1;

/// First byte of every binary frame; never appears in text tuples.
pub const FRAME_SENTINEL: u8 = 0x00;

/// Largest accepted frame payload. A batch encoder flushes well below
/// this; anything larger is a corrupt or hostile stream.
pub const MAX_FRAME_LEN: u64 = 1 << 20;

/// Client capability announcement (body: `[version, flags]`).
pub const OP_HELLO: u8 = 1;
/// Server acceptance of binary encoding (body: `[version, flags]`).
pub const OP_WELCOME: u8 = 2;
/// A batch of tuples (body: delta-varint records, see module docs).
pub const OP_DATA: u8 = 3;
/// Subscribe to the live feed (body: `[flags]`).
pub const OP_SUB: u8 = 4;
/// Server → client: live feed paused, store replay from `arg` µs.
pub const OP_CATCHUP_BEGIN: u8 = 5;
/// Server → client: replay done, live feed resumes after `arg` µs.
pub const OP_CATCHUP_END: u8 = 6;
/// Clock-sync probe (body: `t0 uvarint`, sender's monotonic µs).
/// Negotiated via [`FLAG_CLOCK_SYNC`]; either side may initiate.
pub const OP_PING: u8 = 7;
/// Clock-sync reply (body: `t0 | t1 | t2` uvarints — the echoed probe
/// time plus the responder's receive and send times, its own clock).
pub const OP_PONG: u8 = 8;
/// A DATA batch with a leading origin header (body: `node_id uvarint |
/// send_us uvarint | span_id uvarint | <OP_DATA body>`). Negotiated
/// via [`FLAG_ORIGIN`]; a v1 peer never sees one.
pub const OP_DATA_ORIGIN: u8 = 9;

/// HELLO/WELCOME capability bit: peer understands `OP_PING`/`OP_PONG`.
pub const FLAG_CLOCK_SYNC: u8 = 0b0000_0001;
/// HELLO/WELCOME capability bit: peer accepts `OP_DATA_ORIGIN`.
pub const FLAG_ORIGIN: u8 = 0b0000_0010;
/// Every capability this build implements. A HELLO advertises these;
/// a WELCOME answers with the intersection, so both sides agree on
/// exactly the feature set the other end proved it knows.
pub const LOCAL_CAPS: u8 = FLAG_CLOCK_SYNC | FLAG_ORIGIN;

/// Record tags inside a DATA body (mirrors gstore's segment tags).
pub const TAG_SAMPLE: u8 = 1;
/// Inline name definition: binds a frame-scoped id to a UTF-8 name.
pub const TAG_NAMEDEF: u8 = 2;

/// Text-protocol subscribe command (a line, not a tuple).
pub const TEXT_SUB: &str = "!sub";
/// Text-protocol catch-up markers, emitted as comment lines so legacy
/// readers skip them; the value is the boundary in µs.
pub const TEXT_CATCHUP_BEGIN: &str = "# !catchup-begin us=";
/// See [`TEXT_CATCHUP_BEGIN`].
pub const TEXT_CATCHUP_END: &str = "# !catchup-end us=";

/// The encoding a peer emits on an established connection.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Protocol {
    /// §3.3 text tuple lines.
    #[default]
    Text,
    /// Length-delimited DATA frames.
    Binary,
}

impl fmt::Display for Protocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Protocol::Text => write!(f, "text"),
            Protocol::Binary => write!(f, "binary"),
        }
    }
}

/// A malformed binary frame. Always fatal for the connection: framing
/// has been lost and resynchronization is not attempted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireError {
    /// Frame length exceeds [`MAX_FRAME_LEN`].
    Oversize(u64),
    /// A varint ran past its 10-byte maximum or past the body.
    BadVarint,
    /// A frame body ended mid-record.
    Truncated,
    /// A zero-length payload (no opcode byte).
    EmptyFrame,
    /// Unknown record tag inside a DATA body.
    BadTag(u8),
    /// A NAMEDEF carried invalid UTF-8.
    BadUtf8,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Oversize(n) => write!(f, "frame of {n} bytes exceeds {MAX_FRAME_LEN}"),
            WireError::BadVarint => write!(f, "malformed varint"),
            WireError::Truncated => write!(f, "truncated frame body"),
            WireError::EmptyFrame => write!(f, "empty frame payload"),
            WireError::BadTag(t) => write!(f, "unknown record tag {t}"),
            WireError::BadUtf8 => write!(f, "name is not valid UTF-8"),
        }
    }
}

impl std::error::Error for WireError {}

/// One message split off the front of a receive buffer.
#[derive(Debug, PartialEq, Eq)]
pub enum Msg<'a> {
    /// A text line, without its trailing `\n` (may end in `\r`).
    Line(&'a [u8]),
    /// A binary frame's opcode and body.
    Frame {
        /// The payload's first byte.
        op: u8,
        /// The payload after the opcode.
        body: &'a [u8],
    },
}

/// Splits one complete message off the front of `buf`.
///
/// Returns `Ok(None)` when `buf` holds only an incomplete message
/// (read more bytes), or `Ok(Some((msg, consumed)))` where `consumed`
/// bytes — including the `\n` or frame header — should be discarded.
///
/// # Errors
///
/// [`WireError`] when framing is irrecoverably broken (oversize or
/// malformed length); the connection should be dropped.
pub fn split_message(buf: &[u8]) -> Result<Option<(Msg<'_>, usize)>, WireError> {
    let Some(&first) = buf.first() else {
        return Ok(None);
    };
    if first != FRAME_SENTINEL {
        let Some(nl) = buf.iter().position(|&b| b == b'\n') else {
            return Ok(None);
        };
        let mut line = &buf[..nl];
        if line.last() == Some(&b'\r') {
            line = &line[..line.len() - 1];
        }
        return Ok(Some((Msg::Line(line), nl + 1)));
    }
    let mut pos = 1usize;
    let len = match get_uvarint(buf, &mut pos) {
        Some(len) => len,
        None => {
            // Either the varint is incomplete (wait for bytes) or it
            // overran 10 bytes (framing lost).
            if buf.len() > 10 {
                return Err(WireError::BadVarint);
            }
            return Ok(None);
        }
    };
    if len > MAX_FRAME_LEN {
        return Err(WireError::Oversize(len));
    }
    if len == 0 {
        return Err(WireError::EmptyFrame);
    }
    let len = len as usize;
    if buf.len() < pos + len {
        return Ok(None);
    }
    let payload = &buf[pos..pos + len];
    Ok(Some((
        Msg::Frame {
            op: payload[0],
            body: &payload[1..],
        },
        pos + len,
    )))
}

/// Zigzag-encodes a signed delta for varint transport.
#[inline]
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Appends a frame whose body is one uvarint argument (the control
/// frames: SUB, CATCHUP_BEGIN/END).
pub fn frame_arg(out: &mut Vec<u8>, op: u8, arg: u64) {
    let mut body = [0u8; 10];
    let n = gstore::codec::put_uvarint_into(&mut body, arg);
    out.push(FRAME_SENTINEL);
    put_uvarint(out, 1 + n as u64);
    out.push(op);
    out.extend_from_slice(&body[..n]);
}

/// Appends a HELLO frame (client capability announcement). `flags`
/// carries the capability bits the client implements (normally
/// [`LOCAL_CAPS`]; a v1 client sent 0 here, which negotiates nothing).
pub fn frame_hello(out: &mut Vec<u8>, flags: u8) {
    out.push(FRAME_SENTINEL);
    put_uvarint(out, 3);
    out.push(OP_HELLO);
    out.push(WIRE_VERSION);
    out.push(flags);
}

/// Appends a WELCOME frame (server accepts binary encoding). `flags`
/// must be the intersection of the client's advertised bits and the
/// server's own capabilities.
pub fn frame_welcome(out: &mut Vec<u8>, flags: u8) {
    out.push(FRAME_SENTINEL);
    put_uvarint(out, 3);
    out.push(OP_WELCOME);
    out.push(WIRE_VERSION);
    out.push(flags);
}

/// Splits a HELLO/WELCOME body into `(version, flags)`. Both fields
/// default to 0 when absent, which is exactly how a v1 peer (whose
/// flags byte is always 0) reads: no capabilities.
pub fn decode_caps(body: &[u8]) -> (u8, u8) {
    (
        body.first().copied().unwrap_or(0),
        body.get(1).copied().unwrap_or(0),
    )
}

/// Appends a PING frame carrying the sender's clock reading `t0_us`.
pub fn frame_ping(out: &mut Vec<u8>, t0_us: u64) {
    frame_arg(out, OP_PING, t0_us);
}

/// Appends a PONG frame: the echoed probe time plus the responder's
/// receive (`t1_us`) and send (`t2_us`) times on its own clock.
pub fn frame_pong(out: &mut Vec<u8>, t0_us: u64, t1_us: u64, t2_us: u64) {
    let mut body = [0u8; 30];
    let mut n = gstore::codec::put_uvarint_into(&mut body, t0_us);
    n += gstore::codec::put_uvarint_into(&mut body[n..], t1_us);
    n += gstore::codec::put_uvarint_into(&mut body[n..], t2_us);
    out.push(FRAME_SENTINEL);
    put_uvarint(out, 1 + n as u64);
    out.push(OP_PONG);
    out.extend_from_slice(&body[..n]);
}

/// Decodes a PONG body into `(t0, t1, t2)` microsecond readings.
///
/// # Errors
///
/// [`WireError::Truncated`] when any of the three varints is missing.
pub fn decode_pong(body: &[u8]) -> Result<(u64, u64, u64), WireError> {
    let mut pos = 0usize;
    let t0 = get_uvarint(body, &mut pos).ok_or(WireError::Truncated)?;
    let t1 = get_uvarint(body, &mut pos).ok_or(WireError::Truncated)?;
    let t2 = get_uvarint(body, &mut pos).ok_or(WireError::Truncated)?;
    Ok((t0, t1, t2))
}

/// The provenance header leading an [`OP_DATA_ORIGIN`] body: which
/// node produced the batch, when its encoder flushed (producer clock
/// µs), and the producer's open span at flush time (0 = none) — the
/// hook `gtool trace merge` uses to draw producer → hub edges.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Origin {
    /// Stable producer identity, chosen by the application.
    pub node_id: u64,
    /// Batch flush time on the producer's clock, µs.
    pub send_us: u64,
    /// Producer span id active at flush, 0 when none.
    pub span_id: u64,
}

/// Decodes the origin header off the front of an `OP_DATA_ORIGIN`
/// body; the rest of the body from the returned offset onward is a
/// plain `OP_DATA` body for [`decode_data`].
///
/// # Errors
///
/// [`WireError::Truncated`] when the header is incomplete.
pub fn decode_origin(body: &[u8]) -> Result<(Origin, usize), WireError> {
    let mut pos = 0usize;
    let node_id = get_uvarint(body, &mut pos).ok_or(WireError::Truncated)?;
    let send_us = get_uvarint(body, &mut pos).ok_or(WireError::Truncated)?;
    let span_id = get_uvarint(body, &mut pos).ok_or(WireError::Truncated)?;
    Ok((
        Origin {
            node_id,
            send_us,
            span_id,
        },
        pos,
    ))
}

/// Decodes the single uvarint argument of a control frame body.
///
/// # Errors
///
/// [`WireError::Truncated`] when the body holds no complete varint.
pub fn decode_arg(body: &[u8]) -> Result<u64, WireError> {
    let mut pos = 0usize;
    get_uvarint(body, &mut pos).ok_or(WireError::Truncated)
}

/// One decoded tuple from a DATA frame.
#[derive(Clone, Debug, PartialEq)]
pub struct WireRec {
    /// Sample time in microseconds.
    pub time_us: u64,
    /// Sample value (raw `f64` bits on the wire).
    pub value: f64,
    /// Interned signal name, `None` for unnamed tuples.
    pub name: Option<Arc<str>>,
}

/// Builds DATA frames: push tuples, then [`BatchEncoder::frame_into`]
/// emits one self-contained frame and resets for the next batch.
///
/// All buffers (record bytes, name table) retain capacity across
/// frames, so a warmed encoder allocates nothing in steady state —
/// the same discipline as the text path's scratch buffer.
pub struct BatchEncoder {
    recs: Vec<u8>,
    names: HashMap<Arc<str>, u64>,
    first_us: u64,
    prev_us: u64,
    next_id: u64,
    count: u32,
}

impl Default for BatchEncoder {
    fn default() -> Self {
        BatchEncoder::new()
    }
}

impl BatchEncoder {
    /// An empty encoder.
    pub fn new() -> BatchEncoder {
        BatchEncoder {
            recs: Vec::with_capacity(1024),
            names: HashMap::new(),
            first_us: 0,
            prev_us: 0,
            next_id: 1,
            count: 0,
        }
    }

    /// Tuples pushed since the last frame.
    pub fn count(&self) -> u32 {
        self.count
    }

    /// True when no tuples are pending.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Encoded bytes pending (records only, excludes the frame header).
    pub fn pending_bytes(&self) -> usize {
        self.recs.len()
    }

    /// Appends one tuple to the pending batch.
    pub fn push(&mut self, time_us: u64, value: f64, name: Option<&Arc<str>>) {
        if self.count == 0 {
            self.first_us = time_us;
            self.prev_us = time_us;
        }
        let id = match name {
            None => 0,
            Some(name) => match self.names.get(name.as_ref()) {
                Some(&id) => id,
                None => {
                    let id = self.next_id;
                    self.next_id += 1;
                    self.names.insert(Arc::clone(name), id);
                    self.recs.push(TAG_NAMEDEF);
                    put_uvarint(&mut self.recs, id);
                    put_uvarint(&mut self.recs, name.len() as u64);
                    self.recs.extend_from_slice(name.as_bytes());
                    id
                }
            },
        };
        let dt = time_us.wrapping_sub(self.prev_us) as i64;
        self.prev_us = time_us;
        self.recs.push(TAG_SAMPLE);
        put_uvarint(&mut self.recs, zigzag(dt));
        put_uvarint(&mut self.recs, id);
        self.recs.extend_from_slice(&value.to_le_bytes());
        self.count += 1;
    }

    /// Appends the pending batch to `out` as one complete frame and
    /// resets the encoder. Returns the number of bytes appended
    /// (0 when the batch was empty).
    pub fn frame_into(&mut self, out: &mut Vec<u8>) -> usize {
        self.frame_with_header(out, OP_DATA, &[])
    }

    /// Like [`BatchEncoder::frame_into`] but emits an
    /// [`OP_DATA_ORIGIN`] frame with `origin` as the leading header.
    /// Only send this after the peer negotiated [`FLAG_ORIGIN`].
    pub fn frame_into_origin(&mut self, out: &mut Vec<u8>, origin: &Origin) -> usize {
        let mut hdr = [0u8; 30];
        let mut n = gstore::codec::put_uvarint_into(&mut hdr, origin.node_id);
        n += gstore::codec::put_uvarint_into(&mut hdr[n..], origin.send_us);
        n += gstore::codec::put_uvarint_into(&mut hdr[n..], origin.span_id);
        let hdr = hdr; // freeze before the borrow below
        self.frame_with_header(out, OP_DATA_ORIGIN, &hdr[..n])
    }

    fn frame_with_header(&mut self, out: &mut Vec<u8>, op: u8, header: &[u8]) -> usize {
        if self.count == 0 {
            return 0;
        }
        let before = out.len();
        let mut first = [0u8; 10];
        let first_len = gstore::codec::put_uvarint_into(&mut first, self.first_us);
        let payload_len = 1 + header.len() + first_len + self.recs.len();
        out.push(FRAME_SENTINEL);
        put_uvarint(out, payload_len as u64);
        out.push(op);
        out.extend_from_slice(header);
        out.extend_from_slice(&first[..first_len]);
        out.extend_from_slice(&self.recs);
        self.reset();
        out.len() - before
    }

    /// Discards the pending batch, keeping buffer capacity.
    pub fn reset(&mut self) {
        self.recs.clear();
        self.names.clear();
        self.first_us = 0;
        self.prev_us = 0;
        self.next_id = 1;
        self.count = 0;
    }
}

/// Decodes a DATA frame body into `out` (appended). Returns the
/// number of samples decoded. Names are interned, so repeated frames
/// carrying the same signals share one `Arc<str>` per name.
///
/// # Errors
///
/// [`WireError`] on any malformed record; partial decodes are not
/// delivered (the caller should drop the connection).
pub fn decode_data(body: &[u8], out: &mut Vec<WireRec>) -> Result<u32, WireError> {
    let start = out.len();
    let mut pos = 0usize;
    let Some(first_us) = get_uvarint(body, &mut pos) else {
        return Err(WireError::Truncated);
    };
    let mut names: Vec<Arc<str>> = Vec::new();
    let mut t = first_us;
    let mut decoded = 0u32;
    while pos < body.len() {
        let tag = body[pos];
        pos += 1;
        match tag {
            TAG_SAMPLE => {
                let Some(dtz) = get_uvarint(body, &mut pos) else {
                    out.truncate(start);
                    return Err(WireError::Truncated);
                };
                let Some(id) = get_uvarint(body, &mut pos) else {
                    out.truncate(start);
                    return Err(WireError::Truncated);
                };
                if pos + 8 > body.len() {
                    out.truncate(start);
                    return Err(WireError::Truncated);
                }
                let value = f64::from_le_bytes(body[pos..pos + 8].try_into().expect("8 bytes"));
                pos += 8;
                // The first sample's delta is relative to first_us and
                // is zero by construction; applying it unconditionally
                // tolerates any encoder.
                t = t.wrapping_add_signed(unzigzag(dtz));
                let name = match id {
                    0 => None,
                    id => {
                        let Some(name) = names.get(id as usize - 1) else {
                            out.truncate(start);
                            return Err(WireError::BadTag(TAG_SAMPLE));
                        };
                        Some(Arc::clone(name))
                    }
                };
                out.push(WireRec {
                    time_us: t,
                    value,
                    name,
                });
                decoded += 1;
            }
            TAG_NAMEDEF => {
                let Some(id) = get_uvarint(body, &mut pos) else {
                    out.truncate(start);
                    return Err(WireError::Truncated);
                };
                let Some(len) = get_uvarint(body, &mut pos) else {
                    out.truncate(start);
                    return Err(WireError::Truncated);
                };
                let len = len as usize;
                if pos + len > body.len() {
                    out.truncate(start);
                    return Err(WireError::Truncated);
                }
                let Ok(name) = std::str::from_utf8(&body[pos..pos + len]) else {
                    out.truncate(start);
                    return Err(WireError::BadUtf8);
                };
                pos += len;
                // Ids are assigned densely in order; anything else is
                // a broken encoder.
                if id as usize != names.len() + 1 {
                    out.truncate(start);
                    return Err(WireError::BadTag(TAG_NAMEDEF));
                }
                names.push(intern(name));
            }
            other => {
                out.truncate(start);
                return Err(WireError::BadTag(other));
            }
        }
    }
    Ok(decoded)
}

/// A non-blocking byte-stream connection as the hub's shards see it:
/// real sockets and simulated shaped links behind one trait.
///
/// `read_nb`/`write_nb` follow non-blocking socket semantics —
/// `WouldBlock` when nothing can move, `Ok(0)` from `read_nb` on EOF.
pub trait StreamConn: Send {
    /// Non-blocking read.
    ///
    /// # Errors
    ///
    /// `WouldBlock` when no bytes are available.
    fn read_nb(&mut self, buf: &mut [u8]) -> std::io::Result<usize>;

    /// Non-blocking write.
    ///
    /// # Errors
    ///
    /// `WouldBlock` when the peer's window is full.
    fn write_nb(&mut self, buf: &[u8]) -> std::io::Result<usize>;

    /// OS file descriptor for readiness polling, when one exists.
    fn raw_fd(&self) -> Option<i32> {
        None
    }

    /// Cheap readiness hint for descriptors that cannot be polled:
    /// `Some(true)` when a read would make progress, `Some(false)`
    /// when it would not, `None` when unknown (always try).
    fn readable_hint(&self) -> Option<bool> {
        None
    }

    /// Human-readable peer identity for stats and logs.
    fn peer_label(&self) -> String;
}

impl StreamConn for TcpStream {
    fn read_nb(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        Read::read(self, buf)
    }

    fn write_nb(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        Write::write(self, buf)
    }

    #[cfg(unix)]
    fn raw_fd(&self) -> Option<i32> {
        use std::os::unix::io::AsRawFd;
        Some(self.as_raw_fd())
    }

    fn peer_label(&self) -> String {
        self.peer_addr()
            .map_or_else(|_| "tcp:?".to_owned(), |a| a.to_string())
    }
}

impl StreamConn for netsim::SimConn {
    fn read_nb(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        self.read_bytes(buf)
    }

    fn write_nb(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.write_bytes(buf)
    }

    fn readable_hint(&self) -> Option<bool> {
        Some(self.readable())
    }

    fn peer_label(&self) -> String {
        self.label().to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_text_line_and_frame_interleaved() {
        let mut buf = Vec::new();
        buf.extend_from_slice(b"1.000 42 sig\n");
        frame_hello(&mut buf, LOCAL_CAPS);
        buf.extend_from_slice(b"partial");
        let (msg, n) = split_message(&buf).unwrap().unwrap();
        assert_eq!(msg, Msg::Line(b"1.000 42 sig"));
        let buf = &buf[n..];
        let (msg, n) = split_message(buf).unwrap().unwrap();
        match msg {
            Msg::Frame { op, body } => {
                assert_eq!(op, OP_HELLO);
                assert_eq!(body, &[WIRE_VERSION, LOCAL_CAPS]);
                assert_eq!(decode_caps(body), (WIRE_VERSION, LOCAL_CAPS));
            }
            other => panic!("expected frame, got {other:?}"),
        }
        let buf = &buf[n..];
        assert!(split_message(buf).unwrap().is_none(), "incomplete line");
    }

    #[test]
    fn split_waits_for_full_frame() {
        let mut full = Vec::new();
        frame_arg(&mut full, OP_CATCHUP_BEGIN, 123_456);
        for cut in 0..full.len() {
            assert!(
                split_message(&full[..cut]).unwrap().is_none(),
                "prefix of {cut} bytes must not parse"
            );
        }
        let (msg, n) = split_message(&full).unwrap().unwrap();
        assert_eq!(n, full.len());
        match msg {
            Msg::Frame { op, body } => {
                assert_eq!(op, OP_CATCHUP_BEGIN);
                assert_eq!(decode_arg(body).unwrap(), 123_456);
            }
            other => panic!("expected frame, got {other:?}"),
        }
    }

    #[test]
    fn split_rejects_oversize_and_empty_frames() {
        let mut buf = vec![FRAME_SENTINEL];
        put_uvarint(&mut buf, MAX_FRAME_LEN + 1);
        assert_eq!(
            split_message(&buf),
            Err(WireError::Oversize(MAX_FRAME_LEN + 1))
        );
        let buf = vec![FRAME_SENTINEL, 0];
        assert_eq!(split_message(&buf), Err(WireError::EmptyFrame));
        // An unterminated 11-byte varint is a framing error, not a
        // "need more bytes".
        let mut buf = vec![FRAME_SENTINEL];
        buf.extend_from_slice(&[0x80; 11]);
        assert_eq!(split_message(&buf), Err(WireError::BadVarint));
    }

    #[test]
    fn zigzag_round_trip() {
        for v in [
            0i64,
            1,
            -1,
            63,
            -64,
            1 << 40,
            -(1 << 40),
            i64::MAX,
            i64::MIN,
        ] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn batch_round_trip_preserves_tuples() {
        let mut enc = BatchEncoder::new();
        let a = intern("sig.a");
        let b = intern("sig.b");
        enc.push(1_000_000, 1.5, Some(&a));
        enc.push(1_000_250, -2.5, Some(&b));
        enc.push(999_000, f64::MAX, Some(&a)); // non-monotone: fine
        enc.push(1_002_000, 0.0, None);
        assert_eq!(enc.count(), 4);
        let mut out = Vec::new();
        let n = enc.frame_into(&mut out);
        assert_eq!(n, out.len());
        assert!(enc.is_empty(), "encoder resets after framing");
        let (msg, consumed) = split_message(&out).unwrap().unwrap();
        assert_eq!(consumed, out.len());
        let Msg::Frame { op, body } = msg else {
            panic!("expected frame");
        };
        assert_eq!(op, OP_DATA);
        let mut recs = Vec::new();
        assert_eq!(decode_data(body, &mut recs).unwrap(), 4);
        assert_eq!(recs.len(), 4);
        assert_eq!(recs[0].time_us, 1_000_000);
        assert_eq!(recs[0].value, 1.5);
        assert_eq!(recs[0].name.as_deref(), Some("sig.a"));
        assert_eq!(recs[1].time_us, 1_000_250);
        assert_eq!(recs[1].name.as_deref(), Some("sig.b"));
        assert_eq!(recs[2].time_us, 999_000);
        assert_eq!(recs[2].value, f64::MAX);
        assert_eq!(recs[3].time_us, 1_002_000);
        assert!(recs[3].name.is_none());
        // Interning dedups: both "sig.a" records share one Arc.
        assert!(Arc::ptr_eq(
            recs[0].name.as_ref().unwrap(),
            recs[2].name.as_ref().unwrap()
        ));
    }

    #[test]
    fn batch_is_compact() {
        let mut enc = BatchEncoder::new();
        let name = intern("net.rate");
        let mut t = 5_000_000u64;
        for i in 0..100 {
            enc.push(t, i as f64, Some(&name));
            t += 250;
        }
        let mut out = Vec::new();
        enc.frame_into(&mut out);
        // 1 namedef + 100 samples (tag + dt + id + 8B value ≈ 12B)
        // must beat the ~20B/line text encoding comfortably.
        assert!(out.len() < 100 * 13, "got {} bytes", out.len());
    }

    #[test]
    fn decode_rejects_malformed_bodies() {
        let mut recs = Vec::new();
        // Sample referencing an undefined name id.
        let mut body = Vec::new();
        put_uvarint(&mut body, 0); // first_us
        body.push(TAG_SAMPLE);
        put_uvarint(&mut body, zigzag(0));
        put_uvarint(&mut body, 7); // undefined id
        body.extend_from_slice(&1.0f64.to_le_bytes());
        assert!(decode_data(&body, &mut recs).is_err());
        assert!(recs.is_empty(), "failed decode delivers nothing");
        // Truncated value bytes.
        let mut body = Vec::new();
        put_uvarint(&mut body, 0);
        body.push(TAG_SAMPLE);
        put_uvarint(&mut body, 0);
        put_uvarint(&mut body, 0);
        body.extend_from_slice(&[1, 2, 3]);
        assert_eq!(decode_data(&body, &mut recs), Err(WireError::Truncated));
        // Unknown tag.
        let mut body = Vec::new();
        put_uvarint(&mut body, 0);
        body.push(9);
        assert_eq!(decode_data(&body, &mut recs), Err(WireError::BadTag(9)));
    }

    #[test]
    fn ping_pong_round_trip() {
        let mut buf = Vec::new();
        frame_ping(&mut buf, 9_999_999);
        frame_pong(&mut buf, 9_999_999, 10_000_100, 10_000_130);
        let (msg, n) = split_message(&buf).unwrap().unwrap();
        match msg {
            Msg::Frame { op, body } => {
                assert_eq!(op, OP_PING);
                assert_eq!(decode_arg(body).unwrap(), 9_999_999);
            }
            other => panic!("expected PING, got {other:?}"),
        }
        let (msg, _) = split_message(&buf[n..]).unwrap().unwrap();
        match msg {
            Msg::Frame { op, body } => {
                assert_eq!(op, OP_PONG);
                assert_eq!(
                    decode_pong(body).unwrap(),
                    (9_999_999, 10_000_100, 10_000_130)
                );
            }
            other => panic!("expected PONG, got {other:?}"),
        }
        assert_eq!(decode_pong(&[1, 2]), Err(WireError::Truncated));
    }

    #[test]
    fn origin_frame_round_trip_and_overhead() {
        let mut enc = BatchEncoder::new();
        let name = intern("sig.o");
        let mut t = 2_000_000u64;
        for i in 0..100 {
            enc.push(t, i as f64, Some(&name));
            t += 125;
        }
        let origin = Origin {
            node_id: 42,
            send_us: 2_012_499,
            span_id: 7_777,
        };
        let mut plain = Vec::new();
        let mut enc2 = BatchEncoder::new();
        for i in 0..100 {
            enc2.push(2_000_000 + i * 125, i as f64, Some(&name));
        }
        enc2.frame_into(&mut plain);
        let mut out = Vec::new();
        enc.frame_into_origin(&mut out, &origin);
        // The header amortizes far below the +1 B/tuple budget.
        assert!(
            out.len() <= plain.len() + 10,
            "origin header cost {} bytes",
            out.len() - plain.len()
        );
        let (msg, _) = split_message(&out).unwrap().unwrap();
        let Msg::Frame { op, body } = msg else {
            panic!("expected frame");
        };
        assert_eq!(op, OP_DATA_ORIGIN);
        let (got, off) = decode_origin(body).unwrap();
        assert_eq!(got, origin);
        let mut recs = Vec::new();
        assert_eq!(decode_data(&body[off..], &mut recs).unwrap(), 100);
        assert_eq!(recs[0].time_us, 2_000_000);
        assert_eq!(recs[99].time_us, 2_000_000 + 99 * 125);
        assert_eq!(recs[99].name.as_deref(), Some("sig.o"));
    }

    #[test]
    fn steady_state_encoding_reuses_buffers() {
        let mut enc = BatchEncoder::new();
        let name = intern("x");
        let mut out = Vec::with_capacity(4096);
        // Warm up.
        for round in 0..3 {
            for i in 0..50u64 {
                enc.push(round * 1000 + i, i as f64, Some(&name));
            }
            out.clear();
            enc.frame_into(&mut out);
        }
        let cap_recs = enc.recs.capacity();
        for round in 0..10 {
            for i in 0..50u64 {
                enc.push(round * 1000 + i, i as f64, Some(&name));
            }
            out.clear();
            enc.frame_into(&mut out);
        }
        assert_eq!(enc.recs.capacity(), cap_recs, "no regrowth in steady state");
    }
}
