//! The event loop's gtel instrumentation.
//!
//! [`LoopTelemetry`] resolves its metric handles once against a
//! [`gtel::Registry`], so per-iteration recording is a few relaxed
//! atomics — the loop's own timing is not perturbed by measuring it.

use std::sync::Arc;
use std::time::{Duration, Instant};

use gtel::{Counter, Gauge, LatencyHistogram, Registry};
use loadmeter::BusyMeter;

use crate::time::TimeDelta;

/// Cached metric handles for one [`MainLoop`](crate::context::MainLoop).
#[derive(Debug, Clone)]
pub struct LoopTelemetry {
    registry: Arc<Registry>,
    /// `gel.loop.iterations` — loop iterations executed.
    pub iterations: Arc<Counter>,
    /// `gel.loop.iteration_ns` — wall time of the dispatch phase.
    pub iteration_ns: Arc<LatencyHistogram>,
    /// `gel.loop.sources` — installed sources after each iteration.
    pub sources: Arc<Gauge>,
    /// `gel.loop.invokes` — cross-thread invokes executed.
    pub invokes: Arc<Counter>,
    /// `gel.tick.dispatched` — timeout callbacks dispatched.
    pub ticks_dispatched: Arc<Counter>,
    /// `gel.tick.missed` — whole periods lost across dispatches.
    pub ticks_missed: Arc<Counter>,
    /// `gel.tick.lateness_ns` — scheduled-deadline → dispatch delay.
    pub tick_lateness_ns: Arc<LatencyHistogram>,
    /// `gel.tick.jitter_ns` — |lateness − previous lateness|.
    pub tick_jitter_ns: Arc<LatencyHistogram>,
    /// `gel.loop.duty_cycle` — dispatch busy ÷ wall over the last
    /// publish window (the §4.6 uniprocessor-equivalent CPU cost).
    pub duty_cycle: Arc<Gauge>,
    /// `gel.loop.overhead_fraction` — capacity lost to dispatch,
    /// computed with `loadmeter::overhead_fraction` over the window.
    pub overhead_fraction: Arc<Gauge>,
    /// `gel.stage.timeout.duty_cycle` — timeout-dispatch share.
    pub stage_timeout_duty: Arc<Gauge>,
    /// `gel.stage.io.duty_cycle` — I/O-watch share.
    pub stage_io_duty: Arc<Gauge>,
    /// `gel.stage.idle.duty_cycle` — idle-callback share.
    pub stage_idle_duty: Arc<Gauge>,
}

impl LoopTelemetry {
    /// Resolves handles in `registry`.
    pub fn new(registry: Arc<Registry>) -> Self {
        LoopTelemetry {
            iterations: registry.counter("gel.loop.iterations"),
            iteration_ns: registry.histogram("gel.loop.iteration_ns"),
            sources: registry.gauge("gel.loop.sources"),
            invokes: registry.counter("gel.loop.invokes"),
            ticks_dispatched: registry.counter("gel.tick.dispatched"),
            ticks_missed: registry.counter("gel.tick.missed"),
            tick_lateness_ns: registry.histogram("gel.tick.lateness_ns"),
            tick_jitter_ns: registry.histogram("gel.tick.jitter_ns"),
            duty_cycle: registry.gauge("gel.loop.duty_cycle"),
            overhead_fraction: registry.gauge("gel.loop.overhead_fraction"),
            stage_timeout_duty: registry.gauge("gel.stage.timeout.duty_cycle"),
            stage_io_duty: registry.gauge("gel.stage.io.duty_cycle"),
            stage_idle_duty: registry.gauge("gel.stage.idle.duty_cycle"),
            registry,
        }
    }

    /// The registry the handles live in.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Records one timeout dispatch given its lateness and lost-period
    /// count; returns the lateness in nanoseconds for jitter tracking.
    pub fn record_tick(&self, lateness: TimeDelta, missed: u64, prev_lateness_ns: u64) -> u64 {
        let lateness_ns = lateness.as_micros().saturating_mul(1_000);
        self.ticks_dispatched.inc();
        if missed > 0 {
            self.ticks_missed.add(missed);
        }
        self.tick_lateness_ns.record(lateness_ns);
        self.tick_jitter_ns
            .record(lateness_ns.abs_diff(prev_lateness_ns));
        lateness_ns
    }
}

impl Default for LoopTelemetry {
    fn default() -> Self {
        LoopTelemetry::new(Registry::shared())
    }
}

/// Gauges refresh on this wall cadence.
const PUBLISH_WINDOW: Duration = Duration::from_millis(250);

/// Per-stage busy-time meters for one main loop, published to the
/// duty-cycle gauges on a fixed wall cadence.
///
/// Each gauge is an ordinary registry metric, so `Registry::sampler`
/// turns it into a `FUNC` signal source — a second scope can plot the
/// loop's (or one stage's) load live, the §4.6 overhead experiment
/// running continuously instead of as a one-off benchmark.
#[derive(Debug)]
pub struct StageMeters {
    timeout: BusyMeter,
    io: BusyMeter,
    idle: BusyMeter,
    total: BusyMeter,
    window_start: Instant,
}

impl Default for StageMeters {
    fn default() -> Self {
        StageMeters::new()
    }
}

impl StageMeters {
    /// Fresh meters; the first publish window starts now.
    pub fn new() -> Self {
        StageMeters {
            timeout: BusyMeter::new(),
            io: BusyMeter::new(),
            idle: BusyMeter::new(),
            total: BusyMeter::new(),
            window_start: Instant::now(),
        }
    }

    /// Charges one iteration's stage durations and refreshes the
    /// gauges once the publish window has elapsed.
    pub fn record(&mut self, tel: &LoopTelemetry, timeout: Duration, io: Duration, idle: Duration) {
        self.timeout.add_busy(timeout);
        self.io.add_busy(io);
        self.idle.add_busy(idle);
        self.total.add_busy(timeout + io + idle);
        let wall = self.window_start.elapsed();
        if wall < PUBLISH_WINDOW {
            return;
        }
        tel.duty_cycle.set(self.total.duty_cycle());
        // The §4.6 estimate, continuous: of the window's wall budget,
        // the capacity left after dispatch is the "loaded" reading.
        let wall_ns = wall.as_nanos() as u64;
        let left_ns = wall_ns.saturating_sub(self.total.busy().as_nanos() as u64);
        tel.overhead_fraction
            .set(loadmeter::overhead_fraction(wall_ns, left_ns));
        tel.stage_timeout_duty.set(self.timeout.duty_cycle());
        tel.stage_io_duty.set(self.io.duty_cycle());
        tel.stage_idle_duty.set(self.idle.duty_cycle());
        self.timeout.reset();
        self.io.reset();
        self.idle.reset();
        self.total.reset();
        self.window_start = Instant::now();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_tick_updates_all_series() {
        let tel = LoopTelemetry::default();
        let prev = tel.record_tick(TimeDelta::from_millis(2), 0, 0);
        assert_eq!(prev, 2_000_000);
        let prev = tel.record_tick(TimeDelta::from_millis(5), 3, prev);
        assert_eq!(prev, 5_000_000);
        assert_eq!(tel.ticks_dispatched.get(), 2);
        assert_eq!(tel.ticks_missed.get(), 3);
        assert_eq!(tel.tick_lateness_ns.snapshot().max, 5_000_000);
        // Jitter saw |2ms - 0| then |5ms - 2ms|.
        assert_eq!(tel.tick_jitter_ns.snapshot().max, 3_000_000);
        assert_eq!(tel.tick_jitter_ns.count(), 2);
    }

    #[test]
    fn shared_registry_reuses_handles() {
        let reg = Registry::shared();
        let a = LoopTelemetry::new(Arc::clone(&reg));
        let b = LoopTelemetry::new(Arc::clone(&reg));
        a.iterations.inc();
        b.iterations.inc();
        assert_eq!(reg.counter("gel.loop.iterations").get(), 2);
    }
}
