//! The event loop's gtel instrumentation.
//!
//! [`LoopTelemetry`] resolves its metric handles once against a
//! [`gtel::Registry`], so per-iteration recording is a few relaxed
//! atomics — the loop's own timing is not perturbed by measuring it.

use std::sync::Arc;

use gtel::{Counter, Gauge, LatencyHistogram, Registry};

use crate::time::TimeDelta;

/// Cached metric handles for one [`MainLoop`](crate::context::MainLoop).
#[derive(Debug, Clone)]
pub struct LoopTelemetry {
    registry: Arc<Registry>,
    /// `gel.loop.iterations` — loop iterations executed.
    pub iterations: Arc<Counter>,
    /// `gel.loop.iteration_ns` — wall time of the dispatch phase.
    pub iteration_ns: Arc<LatencyHistogram>,
    /// `gel.loop.sources` — installed sources after each iteration.
    pub sources: Arc<Gauge>,
    /// `gel.loop.invokes` — cross-thread invokes executed.
    pub invokes: Arc<Counter>,
    /// `gel.tick.dispatched` — timeout callbacks dispatched.
    pub ticks_dispatched: Arc<Counter>,
    /// `gel.tick.missed` — whole periods lost across dispatches.
    pub ticks_missed: Arc<Counter>,
    /// `gel.tick.lateness_ns` — scheduled-deadline → dispatch delay.
    pub tick_lateness_ns: Arc<LatencyHistogram>,
    /// `gel.tick.jitter_ns` — |lateness − previous lateness|.
    pub tick_jitter_ns: Arc<LatencyHistogram>,
}

impl LoopTelemetry {
    /// Resolves handles in `registry`.
    pub fn new(registry: Arc<Registry>) -> Self {
        LoopTelemetry {
            iterations: registry.counter("gel.loop.iterations"),
            iteration_ns: registry.histogram("gel.loop.iteration_ns"),
            sources: registry.gauge("gel.loop.sources"),
            invokes: registry.counter("gel.loop.invokes"),
            ticks_dispatched: registry.counter("gel.tick.dispatched"),
            ticks_missed: registry.counter("gel.tick.missed"),
            tick_lateness_ns: registry.histogram("gel.tick.lateness_ns"),
            tick_jitter_ns: registry.histogram("gel.tick.jitter_ns"),
            registry,
        }
    }

    /// The registry the handles live in.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Records one timeout dispatch given its lateness and lost-period
    /// count; returns the lateness in nanoseconds for jitter tracking.
    pub fn record_tick(&self, lateness: TimeDelta, missed: u64, prev_lateness_ns: u64) -> u64 {
        let lateness_ns = lateness.as_micros().saturating_mul(1_000);
        self.ticks_dispatched.inc();
        if missed > 0 {
            self.ticks_missed.add(missed);
        }
        self.tick_lateness_ns.record(lateness_ns);
        self.tick_jitter_ns
            .record(lateness_ns.abs_diff(prev_lateness_ns));
        lateness_ns
    }
}

impl Default for LoopTelemetry {
    fn default() -> Self {
        LoopTelemetry::new(Registry::shared())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_tick_updates_all_series() {
        let tel = LoopTelemetry::default();
        let prev = tel.record_tick(TimeDelta::from_millis(2), 0, 0);
        assert_eq!(prev, 2_000_000);
        let prev = tel.record_tick(TimeDelta::from_millis(5), 3, prev);
        assert_eq!(prev, 5_000_000);
        assert_eq!(tel.ticks_dispatched.get(), 2);
        assert_eq!(tel.ticks_missed.get(), 3);
        assert_eq!(tel.tick_lateness_ns.snapshot().max, 5_000_000);
        // Jitter saw |2ms - 0| then |5ms - 2ms|.
        assert_eq!(tel.tick_jitter_ns.snapshot().max, 3_000_000);
        assert_eq!(tel.tick_jitter_ns.count(), 2);
    }

    #[test]
    fn shared_registry_reuses_handles() {
        let reg = Registry::shared();
        let a = LoopTelemetry::new(Arc::clone(&reg));
        let b = LoopTelemetry::new(Arc::clone(&reg));
        a.iterations.inc();
        b.iterations.inc();
        assert_eq!(reg.counter("gel.loop.iterations").get(), 2);
    }
}
