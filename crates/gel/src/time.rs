//! Time primitives shared by the whole workspace.
//!
//! Gscope's original implementation used `gettimeofday` and glib's
//! millisecond timeouts. We keep a single monotonic microsecond timeline:
//! a [`TimeStamp`] is a count of microseconds since an arbitrary clock
//! epoch (clock creation for [`SystemClock`], zero for
//! [`VirtualClock`](crate::clock::VirtualClock)).

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

/// A monotonic point in time, in microseconds since the clock epoch.
///
/// `TimeStamp` is deliberately *not* tied to the wall clock: the paper's
/// tuple format (§3.3) carries milliseconds relative to an arbitrary
/// origin, and all scope arithmetic is relative.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TimeStamp(u64);

impl TimeStamp {
    /// The clock epoch (time zero).
    pub const ZERO: TimeStamp = TimeStamp(0);

    /// The largest representable timestamp.
    pub const MAX: TimeStamp = TimeStamp(u64::MAX);

    /// Creates a timestamp from microseconds since the epoch.
    pub const fn from_micros(us: u64) -> Self {
        TimeStamp(us)
    }

    /// Creates a timestamp from milliseconds since the epoch.
    pub const fn from_millis(ms: u64) -> Self {
        TimeStamp(ms * 1_000)
    }

    /// Creates a timestamp from whole seconds since the epoch.
    pub const fn from_secs(s: u64) -> Self {
        TimeStamp(s * 1_000_000)
    }

    /// Returns the number of microseconds since the epoch.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the number of whole milliseconds since the epoch.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Returns the time since the epoch as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Returns the time since the epoch as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Returns `self + d`, saturating at [`TimeStamp::MAX`].
    pub const fn saturating_add(self, d: TimeDelta) -> Self {
        TimeStamp(self.0.saturating_add(d.0))
    }

    /// Returns `self - other`, or [`TimeDelta::ZERO`] if `other` is later.
    pub const fn saturating_since(self, other: TimeStamp) -> TimeDelta {
        TimeDelta(self.0.saturating_sub(other.0))
    }

    /// Returns `self - d`, saturating at [`TimeStamp::ZERO`].
    pub const fn saturating_sub(self, d: TimeDelta) -> TimeStamp {
        TimeStamp(self.0.saturating_sub(d.0))
    }

    /// Returns the time elapsed since `other`.
    ///
    /// # Panics
    ///
    /// Panics if `other` is later than `self`.
    pub fn since(self, other: TimeStamp) -> TimeDelta {
        assert!(
            self.0 >= other.0,
            "TimeStamp::since: other ({other:?}) is later than self ({self:?})"
        );
        TimeDelta(self.0 - other.0)
    }
}

impl fmt::Debug for TimeStamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}us", self.0)
    }
}

impl fmt::Display for TimeStamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

impl Add<TimeDelta> for TimeStamp {
    type Output = TimeStamp;

    fn add(self, rhs: TimeDelta) -> TimeStamp {
        TimeStamp(self.0 + rhs.0)
    }
}

impl AddAssign<TimeDelta> for TimeStamp {
    fn add_assign(&mut self, rhs: TimeDelta) {
        self.0 += rhs.0;
    }
}

impl Sub<TimeStamp> for TimeStamp {
    type Output = TimeDelta;

    fn sub(self, rhs: TimeStamp) -> TimeDelta {
        self.since(rhs)
    }
}

/// A span of time, in microseconds.
///
/// Like [`TimeStamp`], spans are unsigned: the scope engine never needs
/// negative intervals, and keeping them unsigned catches ordering bugs at
/// the point of subtraction instead of downstream.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TimeDelta(u64);

impl TimeDelta {
    /// The zero-length span.
    pub const ZERO: TimeDelta = TimeDelta(0);

    /// Creates a span from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        TimeDelta(us)
    }

    /// Creates a span from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        TimeDelta(ms * 1_000)
    }

    /// Creates a span from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        TimeDelta(s * 1_000_000)
    }

    /// Creates a span from fractional seconds, rounding to microseconds.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid span: {s}");
        TimeDelta((s * 1_000_000.0).round() as u64)
    }

    /// Returns the span in microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the span in whole milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Returns the span as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Returns true if the span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Integer division of two spans, e.g. "how many whole periods fit".
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    pub const fn div_periods(self, rhs: TimeDelta) -> u64 {
        self.0 / rhs.0
    }

    /// Multiplies the span by an integer factor, saturating on overflow.
    pub const fn saturating_mul(self, factor: u64) -> Self {
        TimeDelta(self.0.saturating_mul(factor))
    }

    /// Converts to a [`std::time::Duration`].
    pub const fn to_std(self) -> std::time::Duration {
        std::time::Duration::from_micros(self.0)
    }
}

impl fmt::Debug for TimeDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}us", self.0)
    }
}

impl fmt::Display for TimeDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.0 as f64 / 1_000.0)
    }
}

impl Add for TimeDelta {
    type Output = TimeDelta;

    fn add(self, rhs: TimeDelta) -> TimeDelta {
        TimeDelta(self.0 + rhs.0)
    }
}

impl Sub for TimeDelta {
    type Output = TimeDelta;

    fn sub(self, rhs: TimeDelta) -> TimeDelta {
        TimeDelta(self.0.checked_sub(rhs.0).expect("TimeDelta underflow"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamp_conversions_round_trip() {
        let t = TimeStamp::from_millis(1_234);
        assert_eq!(t.as_micros(), 1_234_000);
        assert_eq!(t.as_millis(), 1_234);
        assert_eq!(t.as_millis_f64(), 1_234.0);
        assert_eq!(TimeStamp::from_secs(2).as_millis(), 2_000);
    }

    #[test]
    fn timestamp_arithmetic() {
        let t = TimeStamp::from_millis(10);
        let t2 = t + TimeDelta::from_millis(5);
        assert_eq!(t2.as_millis(), 15);
        assert_eq!((t2 - t).as_millis(), 5);
        assert_eq!(t2.since(t), TimeDelta::from_millis(5));
    }

    #[test]
    #[should_panic(expected = "later than self")]
    fn since_panics_on_negative_interval() {
        let _ = TimeStamp::ZERO.since(TimeStamp::from_millis(1));
    }

    #[test]
    fn saturating_ops_do_not_overflow() {
        let t = TimeStamp::MAX;
        assert_eq!(t.saturating_add(TimeDelta::from_secs(1)), TimeStamp::MAX);
        assert_eq!(
            TimeStamp::ZERO.saturating_since(TimeStamp::from_secs(1)),
            TimeDelta::ZERO
        );
        assert_eq!(
            TimeDelta::from_secs(u64::MAX / 1_000_000).saturating_mul(u64::MAX),
            TimeDelta::from_micros(u64::MAX)
        );
    }

    #[test]
    fn delta_div_periods() {
        let d = TimeDelta::from_millis(105);
        assert_eq!(d.div_periods(TimeDelta::from_millis(10)), 10);
        assert_eq!(d.div_periods(TimeDelta::from_millis(50)), 2);
    }

    #[test]
    fn delta_from_secs_f64_rounds() {
        assert_eq!(TimeDelta::from_secs_f64(0.0000015).as_micros(), 2);
        assert_eq!(TimeDelta::from_secs_f64(1.5).as_millis(), 1_500);
    }

    #[test]
    #[should_panic(expected = "invalid span")]
    fn delta_from_secs_f64_rejects_nan() {
        let _ = TimeDelta::from_secs_f64(f64::NAN);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", TimeDelta::from_micros(1_500)), "1.500ms");
        assert_eq!(format!("{}", TimeStamp::from_millis(2)), "2.000ms");
        assert_eq!(format!("{:?}", TimeStamp::from_micros(7)), "7us");
    }
}
