//! Clock abstraction: real time for deployment, virtual time for tests.
//!
//! The paper's event loop blocks in `select()` with a timeout and the
//! Linux kernel wakes the process at timer-interrupt granularity (§4.5).
//! We model that by routing all waiting through a [`Clock`], so the same
//! loop code runs against the operating system ([`SystemClock`]) or a
//! deterministic simulated timeline ([`VirtualClock`]).

use std::sync::Arc;
use std::time::Instant;

use parking_lot::{Condvar, Mutex};

use crate::time::{TimeDelta, TimeStamp};

/// A wake-up flag that can interrupt a [`Clock::wait_until`] early.
///
/// Cross-thread calls into the main loop (see
/// [`LoopHandle`](crate::context::LoopHandle)) set the flag so the loop
/// re-examines its queues before the next deadline.
#[derive(Default)]
pub struct WakeFlag {
    state: Mutex<bool>,
    cond: Condvar,
}

impl WakeFlag {
    /// Creates an unset flag.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the flag and wakes any waiter.
    pub fn wake(&self) {
        let mut s = self.state.lock();
        *s = true;
        self.cond.notify_all();
    }

    /// Clears the flag, returning whether it was set.
    pub fn take(&self) -> bool {
        let mut s = self.state.lock();
        std::mem::replace(&mut *s, false)
    }

    /// Blocks until the flag is set or `timeout` elapses.
    ///
    /// Returns true if the flag was set (and clears it).
    pub fn wait_timeout(&self, timeout: std::time::Duration) -> bool {
        let mut s = self.state.lock();
        if !*s {
            let _ = self.cond.wait_for(&mut s, timeout);
        }
        std::mem::replace(&mut *s, false)
    }
}

/// A monotonic clock the main loop can read and wait on.
pub trait Clock: Send + Sync {
    /// Returns the current time.
    fn now(&self) -> TimeStamp;

    /// Blocks until `deadline`, or earlier if `waker` fires.
    ///
    /// Returns the time observed on wake-up. Implementations may wake
    /// late (scheduling latency); callers must re-check deadlines.
    fn wait_until(&self, deadline: TimeStamp, waker: &WakeFlag) -> TimeStamp;

    /// Returns true if this clock advances by simulation rather than by
    /// the passage of real time.
    fn is_virtual(&self) -> bool {
        false
    }
}

/// Real time, anchored at clock creation.
pub struct SystemClock {
    origin: Instant,
}

impl SystemClock {
    /// Creates a clock whose epoch is "now".
    pub fn new() -> Self {
        SystemClock {
            origin: Instant::now(),
        }
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for SystemClock {
    fn now(&self) -> TimeStamp {
        TimeStamp::from_micros(self.origin.elapsed().as_micros() as u64)
    }

    fn wait_until(&self, deadline: TimeStamp, waker: &WakeFlag) -> TimeStamp {
        loop {
            let now = self.now();
            if now >= deadline {
                return now;
            }
            let remaining = deadline.saturating_since(now).to_std();
            if waker.wait_timeout(remaining) {
                return self.now();
            }
        }
    }
}

/// A model of how late the kernel delivers a timeout, in microseconds.
///
/// The paper observes that "scheduling latencies in the kernel can induce
/// loss in polling timeouts under heavy loads" (§4.5). A latency model
/// lets tests inject exactly that: the `n`-th wait (0-based) is delivered
/// `f(n)` microseconds after its deadline.
pub type LatencyModel = Box<dyn FnMut(u64) -> u64 + Send>;

struct VirtualState {
    now: TimeStamp,
    wait_count: u64,
    latency: Option<LatencyModel>,
}

/// Deterministic simulated time.
///
/// `wait_until` advances the clock instantly to the deadline (plus any
/// injected scheduling latency), so event-loop tests and whole-system
/// simulations run in microseconds of wall time. The clock is shared:
/// clones observe and advance the same timeline.
#[derive(Clone)]
pub struct VirtualClock {
    state: Arc<Mutex<VirtualState>>,
}

impl VirtualClock {
    /// Creates a virtual clock at time zero.
    pub fn new() -> Self {
        VirtualClock {
            state: Arc::new(Mutex::new(VirtualState {
                now: TimeStamp::ZERO,
                wait_count: 0,
                latency: None,
            })),
        }
    }

    /// Installs a scheduling-latency model (see [`LatencyModel`]).
    pub fn set_latency_model(&self, model: Option<LatencyModel>) {
        self.state.lock().latency = model;
    }

    /// Advances the clock by `d` without dispatching anything.
    pub fn advance(&self, d: TimeDelta) {
        let mut s = self.state.lock();
        s.now += d;
    }

    /// Sets the clock to `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is earlier than the current time (the clock is
    /// monotonic).
    pub fn set(&self, t: TimeStamp) {
        let mut s = self.state.lock();
        assert!(t >= s.now, "VirtualClock::set would move time backwards");
        s.now = t;
    }
}

impl Default for VirtualClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for VirtualClock {
    fn now(&self) -> TimeStamp {
        self.state.lock().now
    }

    fn wait_until(&self, deadline: TimeStamp, _waker: &WakeFlag) -> TimeStamp {
        let mut s = self.state.lock();
        let n = s.wait_count;
        s.wait_count += 1;
        let lateness = match s.latency.as_mut() {
            Some(f) => f(n),
            None => 0,
        };
        let target = deadline.saturating_add(TimeDelta::from_micros(lateness));
        if target > s.now {
            s.now = target;
        }
        s.now
    }

    fn is_virtual(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_clock_is_monotonic() {
        let c = SystemClock::new();
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
    }

    #[test]
    fn system_clock_wait_reaches_deadline() {
        let c = SystemClock::new();
        let w = WakeFlag::new();
        let deadline = c.now() + TimeDelta::from_millis(5);
        let after = c.wait_until(deadline, &w);
        assert!(after >= deadline);
    }

    #[test]
    fn system_clock_wait_interrupted_by_waker() {
        let c = Arc::new(SystemClock::new());
        let w = Arc::new(WakeFlag::new());
        let w2 = Arc::clone(&w);
        let handle = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(5));
            w2.wake();
        });
        let start = c.now();
        let deadline = start + TimeDelta::from_secs(10);
        let after = c.wait_until(deadline, &w);
        handle.join().unwrap();
        assert!(after < deadline, "waker should interrupt long wait");
    }

    #[test]
    fn virtual_clock_jumps_to_deadline() {
        let c = VirtualClock::new();
        let w = WakeFlag::new();
        let after = c.wait_until(TimeStamp::from_millis(50), &w);
        assert_eq!(after, TimeStamp::from_millis(50));
        assert_eq!(c.now(), TimeStamp::from_millis(50));
    }

    #[test]
    fn virtual_clock_latency_model_applies() {
        let c = VirtualClock::new();
        // Every third wait is 25 ms late.
        c.set_latency_model(Some(Box::new(|n| if n % 3 == 2 { 25_000 } else { 0 })));
        let w = WakeFlag::new();
        assert_eq!(
            c.wait_until(TimeStamp::from_millis(10), &w),
            TimeStamp::from_millis(10)
        );
        assert_eq!(
            c.wait_until(TimeStamp::from_millis(20), &w),
            TimeStamp::from_millis(20)
        );
        assert_eq!(
            c.wait_until(TimeStamp::from_millis(30), &w),
            TimeStamp::from_millis(55)
        );
    }

    #[test]
    fn virtual_clock_never_goes_backwards() {
        let c = VirtualClock::new();
        let w = WakeFlag::new();
        c.advance(TimeDelta::from_millis(100));
        // Waiting for an already-passed deadline returns current time.
        assert_eq!(
            c.wait_until(TimeStamp::from_millis(10), &w),
            TimeStamp::from_millis(100)
        );
    }

    #[test]
    fn virtual_clock_clones_share_timeline() {
        let a = VirtualClock::new();
        let b = a.clone();
        a.advance(TimeDelta::from_secs(1));
        assert_eq!(b.now(), TimeStamp::from_secs(1));
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn virtual_clock_set_rejects_past() {
        let c = VirtualClock::new();
        c.advance(TimeDelta::from_secs(1));
        c.set(TimeStamp::from_millis(1));
    }

    #[test]
    fn wake_flag_take_clears() {
        let w = WakeFlag::new();
        assert!(!w.take());
        w.wake();
        assert!(w.take());
        assert!(!w.take());
    }
}
