//! Timer-quantum model.
//!
//! §4.5 of the paper: although `select()` accepts microsecond timeouts,
//! "typically the kernel wakes processes at the granularity of the normal
//! timer interrupt", 10 ms on the Linux of the day, capping gscope's
//! polling frequency at 100 Hz. [`Quantizer`] reproduces that rounding so
//! the effect is explicit, testable, and tunable (HZ=100, HZ=1000, or
//! soft-timers-style microsecond quanta, cf. §6).

use crate::time::{TimeDelta, TimeStamp};

/// Rounds wake-up deadlines up to timer-interrupt boundaries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Quantizer {
    quantum: TimeDelta,
}

impl Quantizer {
    /// The classic Linux 2.4 quantum the paper measured against: 10 ms.
    pub const LINUX_HZ100: Quantizer = Quantizer {
        quantum: TimeDelta::from_millis(10),
    };

    /// A modern 1 ms quantum (HZ=1000).
    pub const LINUX_HZ1000: Quantizer = Quantizer {
        quantum: TimeDelta::from_millis(1),
    };

    /// Creates a quantizer with the given quantum.
    ///
    /// A zero quantum disables rounding entirely (the §6 "soft timers"
    /// future-work configuration).
    pub const fn new(quantum: TimeDelta) -> Self {
        Quantizer { quantum }
    }

    /// A quantizer that performs no rounding.
    pub const fn exact() -> Self {
        Quantizer {
            quantum: TimeDelta::ZERO,
        }
    }

    /// Returns the quantum.
    pub const fn quantum(&self) -> TimeDelta {
        self.quantum
    }

    /// Rounds `deadline` up to the next quantum boundary.
    ///
    /// A deadline already on a boundary is unchanged: the kernel's timer
    /// interrupt at exactly that tick delivers the timeout.
    pub fn round_up(&self, deadline: TimeStamp) -> TimeStamp {
        let q = self.quantum.as_micros();
        if q == 0 {
            return deadline;
        }
        let us = deadline.as_micros();
        let rem = us % q;
        if rem == 0 {
            deadline
        } else {
            TimeStamp::from_micros(us - rem).saturating_add(TimeDelta::from_micros(q))
        }
    }

    /// The maximum polling frequency this quantum supports, in Hz.
    ///
    /// Returns `None` for an exact quantizer (unbounded).
    pub fn max_frequency_hz(&self) -> Option<f64> {
        let q = self.quantum.as_micros();
        if q == 0 {
            None
        } else {
            Some(1_000_000.0 / q as f64)
        }
    }
}

impl Default for Quantizer {
    /// Defaults to the paper's 10 ms Linux quantum.
    fn default() -> Self {
        Quantizer::LINUX_HZ100
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rounds_up_to_boundary() {
        let q = Quantizer::LINUX_HZ100;
        assert_eq!(
            q.round_up(TimeStamp::from_millis(13)),
            TimeStamp::from_millis(20)
        );
        assert_eq!(
            q.round_up(TimeStamp::from_micros(1)),
            TimeStamp::from_millis(10)
        );
    }

    #[test]
    fn boundary_is_unchanged() {
        let q = Quantizer::LINUX_HZ100;
        assert_eq!(
            q.round_up(TimeStamp::from_millis(20)),
            TimeStamp::from_millis(20)
        );
        assert_eq!(q.round_up(TimeStamp::ZERO), TimeStamp::ZERO);
    }

    #[test]
    fn exact_quantizer_is_identity() {
        let q = Quantizer::exact();
        let t = TimeStamp::from_micros(12_345);
        assert_eq!(q.round_up(t), t);
        assert_eq!(q.max_frequency_hz(), None);
    }

    #[test]
    fn max_frequency_matches_paper() {
        // §4.5: 10 ms quantum → "maximum frequency is 100 Hz".
        assert_eq!(Quantizer::LINUX_HZ100.max_frequency_hz(), Some(100.0));
        assert_eq!(Quantizer::LINUX_HZ1000.max_frequency_hz(), Some(1000.0));
    }
}
