//! The main loop: glib-style sources dispatched against a [`Clock`].
//!
//! The original gscope relies on the GTK/glib main loop: periodic
//! timeouts drive scope polling, `g_io_add_watch` drives I/O-driven
//! applications (Figure 6), and everything — GUI and application events —
//! shares one event loop (§4.3). This module is that substrate, built
//! from scratch:
//!
//! * [`MainLoop::add_timeout`] — periodic sources with lost-tick
//!   accounting (§4.5: "Gscope keeps track of lost timeouts and advances
//!   the scope refresh appropriately").
//! * [`MainLoop::add_idle`] — run-when-quiet sources.
//! * [`MainLoop::add_io_watch`] — readiness-polled I/O sources. Where
//!   glib used `select()`, we poll watch callbacks non-blockingly at
//!   timer-quantum granularity; §4.5 notes the kernel quantizes `select`
//!   wake-ups to the timer interrupt anyway, so observable behaviour (max
//!   100 Hz at the default 10 ms quantum) is preserved.
//! * [`LoopHandle::invoke`] — cross-thread calls marshalled onto the loop
//!   thread, the idiom multi-threaded gscope applications use instead of
//!   taking "a global GTK lock" (§4.3).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crossbeam::channel::{unbounded, Receiver, Sender};

use crate::clock::{Clock, WakeFlag};
use crate::quantizer::Quantizer;
use crate::telemetry::LoopTelemetry;
use crate::time::{TimeDelta, TimeStamp};

/// Whether a source stays installed after its callback runs.
///
/// Mirrors glib's `TRUE`/`FALSE` return convention (Figure 6's
/// `read_program` returns `TRUE` to keep watching).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Continue {
    /// Keep the source installed.
    Keep,
    /// Remove the source.
    Remove,
}

/// What an I/O watch callback did this poll.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IoPoll {
    /// No data was ready; nothing happened.
    Idle,
    /// The callback made progress (read/wrote/accepted something).
    Worked,
    /// Remove this watch (peer closed, fatal error, ...).
    Remove,
}

/// Dispatch priority for timeout sources, mirroring glib's source
/// priorities: when several timeouts are due in the same loop
/// iteration, higher-priority callbacks run first (application I/O
/// before display refresh, say). Ties dispatch in installation order.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum Priority {
    /// Dispatched before everything else due this iteration.
    High,
    /// The normal priority.
    #[default]
    Default,
    /// Dispatched after other due timeouts.
    Low,
}

/// Timing details handed to a timeout callback.
#[derive(Clone, Copy, Debug)]
pub struct TickInfo {
    /// The time observed when the callback was dispatched.
    pub now: TimeStamp,
    /// The deadline this tick was scheduled for.
    pub scheduled: TimeStamp,
    /// Whole periods lost before this dispatch (0 when on time).
    ///
    /// Under load the loop may wake several periods late; the scope uses
    /// this to advance its display by the missed amount (§4.5).
    pub missed: u64,
}

/// Callback type for periodic timeout sources.
pub type TimeoutFn = Box<dyn FnMut(&TickInfo) -> Continue + Send>;
/// Callback type for idle sources.
pub type IdleFn = Box<dyn FnMut() -> Continue + Send>;
/// Callback type for I/O watch sources.
pub type IoWatchFn = Box<dyn FnMut() -> IoPoll + Send>;
/// Closure marshalled onto the loop thread by [`LoopHandle::invoke`].
pub type InvokeFn = Box<dyn FnOnce(&mut MainLoop) + Send>;

/// Identifies an installed source for later removal.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SourceId {
    index: usize,
    generation: u64,
}

enum SourceKind {
    Timeout {
        period: TimeDelta,
        next: TimeStamp,
        priority: Priority,
        cb: TimeoutFn,
    },
    Idle {
        cb: IdleFn,
    },
    Io {
        cb: IoWatchFn,
    },
}

enum Slot {
    Empty,
    /// Source temporarily taken out while its callback runs.
    Dispatching {
        generation: u64,
    },
    /// Source removed (by id) while its callback was running.
    Cancelled,
    Occupied {
        generation: u64,
        kind: SourceKind,
    },
}

/// Counters describing what the loop has done so far.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LoopStats {
    /// Loop iterations executed.
    pub iterations: u64,
    /// Timeout callbacks dispatched.
    pub timeouts_dispatched: u64,
    /// Total whole periods lost across all timeout dispatches.
    pub ticks_missed: u64,
    /// I/O watch polls that found work.
    pub io_dispatches: u64,
    /// I/O watch polls that found nothing.
    pub io_idle_polls: u64,
    /// Idle callbacks run.
    pub idle_runs: u64,
    /// Cross-thread invokes executed.
    pub invokes: u64,
}

/// Result of a single loop iteration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Iteration {
    /// At least one callback ran.
    Dispatched,
    /// Nothing ran; the loop slept (or would have).
    Slept,
    /// No runnable or waitable sources exist.
    Stalled,
}

/// A cloneable, thread-safe handle to a running [`MainLoop`].
#[derive(Clone)]
pub struct LoopHandle {
    tx: Sender<InvokeFn>,
    wake: Arc<WakeFlag>,
    quit: Arc<AtomicBool>,
}

impl LoopHandle {
    /// Schedules `f` to run on the loop thread and wakes the loop.
    ///
    /// This is the safe replacement for "acquire a global GTK lock" from
    /// §4.3: application threads never touch loop state directly.
    pub fn invoke<F>(&self, f: F)
    where
        F: FnOnce(&mut MainLoop) + Send + 'static,
    {
        // A send error means the loop is gone; the invoke is dropped,
        // matching glib's behaviour for a destroyed context.
        let _ = self.tx.send(Box::new(f));
        self.wake.wake();
    }

    /// Asks the loop to exit its [`MainLoop::run`] call.
    pub fn quit(&self) {
        self.quit.store(true, Ordering::SeqCst);
        self.wake.wake();
    }

    /// Returns true if quit has been requested.
    pub fn quit_requested(&self) -> bool {
        self.quit.load(Ordering::SeqCst)
    }
}

/// The event loop.
pub struct MainLoop {
    clock: Arc<dyn Clock>,
    quantizer: Quantizer,
    slots: Vec<Slot>,
    free: Vec<usize>,
    next_generation: u64,
    wake: Arc<WakeFlag>,
    invoke_tx: Sender<InvokeFn>,
    invoke_rx: Receiver<InvokeFn>,
    quit: Arc<AtomicBool>,
    stats: LoopStats,
    telemetry: LoopTelemetry,
    meters: crate::telemetry::StageMeters,
    last_lateness_ns: u64,
}

impl MainLoop {
    /// Creates a loop over the given clock with the default 10 ms
    /// timer quantum (§4.5).
    pub fn new(clock: Arc<dyn Clock>) -> Self {
        Self::with_quantizer(clock, Quantizer::default())
    }

    /// Creates a loop with an explicit timer quantum.
    pub fn with_quantizer(clock: Arc<dyn Clock>, quantizer: Quantizer) -> Self {
        let (invoke_tx, invoke_rx) = unbounded();
        MainLoop {
            clock,
            quantizer,
            slots: Vec::new(),
            free: Vec::new(),
            next_generation: 1,
            wake: Arc::new(WakeFlag::new()),
            invoke_tx,
            invoke_rx,
            quit: Arc::new(AtomicBool::new(false)),
            stats: LoopStats::default(),
            telemetry: LoopTelemetry::default(),
            meters: crate::telemetry::StageMeters::new(),
            last_lateness_ns: 0,
        }
    }

    /// Returns the loop's clock.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// Returns the timer quantizer in effect.
    pub fn quantizer(&self) -> Quantizer {
        self.quantizer
    }

    /// Replaces the timer quantizer (granularity experiments, §4.5/§6).
    pub fn set_quantizer(&mut self, q: Quantizer) {
        self.quantizer = q;
    }

    /// Returns accumulated loop statistics.
    pub fn stats(&self) -> LoopStats {
        self.stats
    }

    /// Returns the loop's telemetry handles (and, through them, the
    /// registry its `gel.*` metrics live in).
    pub fn telemetry(&self) -> &LoopTelemetry {
        &self.telemetry
    }

    /// Re-homes the loop's metrics in `registry` — call before first
    /// use so every component of a process shares one registry.
    pub fn set_telemetry(&mut self, registry: Arc<gtel::Registry>) {
        self.telemetry = LoopTelemetry::new(registry);
    }

    /// Returns a cloneable cross-thread handle.
    pub fn handle(&self) -> LoopHandle {
        LoopHandle {
            tx: self.invoke_tx.clone(),
            wake: Arc::clone(&self.wake),
            quit: Arc::clone(&self.quit),
        }
    }

    fn insert(&mut self, kind: SourceKind) -> SourceId {
        let generation = self.next_generation;
        self.next_generation += 1;
        let slot = Slot::Occupied { generation, kind };
        let index = match self.free.pop() {
            Some(i) => {
                debug_assert!(matches!(self.slots[i], Slot::Empty));
                self.slots[i] = slot;
                i
            }
            None => {
                self.slots.push(slot);
                self.slots.len() - 1
            }
        };
        SourceId { index, generation }
    }

    /// Installs a periodic timeout firing every `period`, first at
    /// `now + period`.
    ///
    /// Equivalent to `gtk_timeout_add`. The callback receives a
    /// [`TickInfo`] carrying lost-tick information.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn add_timeout(&mut self, period: TimeDelta, cb: TimeoutFn) -> SourceId {
        self.add_timeout_with_priority(period, Priority::Default, cb)
    }

    /// Installs a periodic timeout with an explicit dispatch
    /// [`Priority`].
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn add_timeout_with_priority(
        &mut self,
        period: TimeDelta,
        priority: Priority,
        cb: TimeoutFn,
    ) -> SourceId {
        assert!(!period.is_zero(), "timeout period must be non-zero");
        let next = self.clock.now() + period;
        self.insert(SourceKind::Timeout {
            period,
            next,
            priority,
            cb,
        })
    }

    /// Installs a one-shot callback after `delay`.
    pub fn add_oneshot<F>(&mut self, delay: TimeDelta, f: F) -> SourceId
    where
        F: FnOnce(&TickInfo) + Send + 'static,
    {
        assert!(!delay.is_zero(), "oneshot delay must be non-zero");
        let mut f = Some(f);
        self.add_timeout(
            delay,
            Box::new(move |tick| {
                if let Some(f) = f.take() {
                    f(tick);
                }
                Continue::Remove
            }),
        )
    }

    /// Installs an idle source, run when an iteration dispatches nothing.
    pub fn add_idle(&mut self, cb: IdleFn) -> SourceId {
        self.insert(SourceKind::Idle { cb })
    }

    /// Installs an I/O watch, polled once per loop iteration.
    ///
    /// Equivalent to `g_io_add_watch` (Figure 6). The callback must use
    /// non-blocking operations and report what happened via [`IoPoll`].
    pub fn add_io_watch(&mut self, cb: IoWatchFn) -> SourceId {
        self.insert(SourceKind::Io { cb })
    }

    /// Removes a source by id.
    ///
    /// Returns true if the source existed. Safe to call from inside any
    /// callback, including the source's own.
    pub fn remove_source(&mut self, id: SourceId) -> bool {
        match self.slots.get_mut(id.index) {
            Some(slot @ Slot::Occupied { .. }) => {
                if matches!(slot, Slot::Occupied { generation, .. } if *generation == id.generation)
                {
                    *slot = Slot::Empty;
                    self.free.push(id.index);
                    true
                } else {
                    false
                }
            }
            Some(slot @ Slot::Dispatching { .. }) => {
                if matches!(slot, Slot::Dispatching { generation } if *generation == id.generation)
                {
                    *slot = Slot::Cancelled;
                    true
                } else {
                    false
                }
            }
            _ => false,
        }
    }

    /// Returns the number of installed sources.
    pub fn source_count(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| matches!(s, Slot::Occupied { .. }))
            .count()
    }

    fn drain_invokes(&mut self) -> bool {
        let mut any = false;
        // Collect first: running an invoke may send further invokes.
        loop {
            let Ok(f) = self.invoke_rx.try_recv() else {
                break;
            };
            any = true;
            self.stats.invokes += 1;
            self.telemetry.invokes.inc();
            f(self);
        }
        any
    }

    /// Puts a dispatched source back, honouring cancellation and the
    /// callback's continue decision.
    fn finish_dispatch(&mut self, index: usize, generation: u64, kind: SourceKind, keep: bool) {
        match &self.slots[index] {
            Slot::Cancelled => {
                self.slots[index] = Slot::Empty;
                self.free.push(index);
            }
            Slot::Dispatching { .. } => {
                if keep {
                    self.slots[index] = Slot::Occupied { generation, kind };
                } else {
                    self.slots[index] = Slot::Empty;
                    self.free.push(index);
                }
            }
            // The callback replaced the slot (removed itself and a new
            // source re-used the index): drop the old source.
            _ => {}
        }
    }

    /// Swaps a source out of its slot for dispatch, leaving a
    /// `Dispatching` placeholder so concurrent removal stays sound.
    fn take_for_dispatch(&mut self, index: usize) -> (u64, SourceKind) {
        let generation = match &self.slots[index] {
            Slot::Occupied { generation, .. } => *generation,
            _ => unreachable!("take_for_dispatch on non-occupied slot"),
        };
        match std::mem::replace(&mut self.slots[index], Slot::Dispatching { generation }) {
            Slot::Occupied { kind, .. } => (generation, kind),
            _ => unreachable!(),
        }
    }

    fn dispatch_timeouts(&mut self, now: TimeStamp) -> bool {
        let mut any = false;
        // Collect due timeouts and order them by priority, then by
        // installation (slot) order.
        let mut due: Vec<(Priority, usize)> = self
            .slots
            .iter()
            .enumerate()
            .filter_map(|(index, slot)| match slot {
                Slot::Occupied {
                    kind: SourceKind::Timeout { next, priority, .. },
                    ..
                } if *next <= now => Some((*priority, index)),
                _ => None,
            })
            .collect();
        due.sort();
        for (_, index) in due {
            // A previously dispatched callback may have removed or
            // replaced this source; re-check.
            let still_due = matches!(
                &self.slots[index],
                Slot::Occupied { kind: SourceKind::Timeout { next, .. }, .. } if *next <= now
            );
            if !still_due {
                continue;
            }
            let (generation, kind) = self.take_for_dispatch(index);
            let SourceKind::Timeout {
                period,
                next,
                priority,
                mut cb,
            } = kind
            else {
                unreachable!()
            };
            let lateness = now.saturating_since(next);
            let missed = lateness.div_periods(period);
            let tick = TickInfo {
                now,
                scheduled: next,
                missed,
            };
            self.stats.timeouts_dispatched += 1;
            self.stats.ticks_missed += missed;
            self.last_lateness_ns =
                self.telemetry
                    .record_tick(lateness, missed, self.last_lateness_ns);
            any = true;
            let decision = cb(&tick);
            let new_next = next + period.saturating_mul(missed + 1);
            let kind = SourceKind::Timeout {
                period,
                next: new_next,
                priority,
                cb,
            };
            self.finish_dispatch(index, generation, kind, decision == Continue::Keep);
        }
        any
    }

    fn dispatch_io(&mut self) -> bool {
        let mut any = false;
        for index in 0..self.slots.len() {
            let is_io = matches!(
                &self.slots[index],
                Slot::Occupied {
                    kind: SourceKind::Io { .. },
                    ..
                }
            );
            if !is_io {
                continue;
            }
            let (generation, kind) = self.take_for_dispatch(index);
            let SourceKind::Io { mut cb } = kind else {
                unreachable!()
            };
            let outcome = cb();
            match outcome {
                IoPoll::Worked => {
                    self.stats.io_dispatches += 1;
                    any = true;
                }
                IoPoll::Idle => self.stats.io_idle_polls += 1,
                IoPoll::Remove => {}
            }
            let kind = SourceKind::Io { cb };
            self.finish_dispatch(index, generation, kind, outcome != IoPoll::Remove);
        }
        any
    }

    fn run_idles(&mut self) -> bool {
        let mut any = false;
        for index in 0..self.slots.len() {
            let is_idle = matches!(
                &self.slots[index],
                Slot::Occupied {
                    kind: SourceKind::Idle { .. },
                    ..
                }
            );
            if !is_idle {
                continue;
            }
            let (generation, kind) = self.take_for_dispatch(index);
            let SourceKind::Idle { mut cb } = kind else {
                unreachable!()
            };
            self.stats.idle_runs += 1;
            any = true;
            let decision = cb();
            let kind = SourceKind::Idle { cb };
            self.finish_dispatch(index, generation, kind, decision == Continue::Keep);
        }
        any
    }

    fn next_timeout_deadline(&self) -> Option<TimeStamp> {
        self.slots
            .iter()
            .filter_map(|s| match s {
                Slot::Occupied {
                    kind: SourceKind::Timeout { next, .. },
                    ..
                } => Some(*next),
                _ => None,
            })
            .min()
    }

    fn has_io_watches(&self) -> bool {
        self.slots.iter().any(|s| {
            matches!(
                s,
                Slot::Occupied {
                    kind: SourceKind::Io { .. },
                    ..
                }
            )
        })
    }

    fn has_idles(&self) -> bool {
        self.slots.iter().any(|s| {
            matches!(
                s,
                Slot::Occupied {
                    kind: SourceKind::Idle { .. },
                    ..
                }
            )
        })
    }

    /// Runs a single loop iteration.
    ///
    /// Dispatches due timeouts, polls I/O watches, runs idles if nothing
    /// else ran, then (if `block` and nothing ran) sleeps until the next
    /// quantized deadline or a wake-up.
    pub fn iteration(&mut self, block: bool) -> Iteration {
        let dispatch_started = std::time::Instant::now();
        self.stats.iterations += 1;
        self.telemetry.iterations.inc();
        // Root span for this tick of the loop: every stage span opened
        // during dispatch (scope tick, render, net poll, store flush)
        // becomes its child, so one iteration's cost decomposes.
        let root_span = gtel::span("gel.iteration", self.stats.iterations);
        let mut dispatched = self.drain_invokes();
        let now = self.clock.now();
        let t0 = std::time::Instant::now();
        dispatched |= self.dispatch_timeouts(now);
        let t1 = std::time::Instant::now();
        dispatched |= self.dispatch_io();
        let t2 = std::time::Instant::now();
        if !dispatched && self.run_idles() {
            dispatched = true;
        }
        let t3 = std::time::Instant::now();
        drop(root_span);
        // Timed before any sleep: this is dispatch cost, not wait time.
        self.telemetry
            .iteration_ns
            .record_duration(dispatch_started.elapsed());
        self.meters
            .record(&self.telemetry, t1 - t0, t2 - t1, t3 - t2);
        self.telemetry.sources.set_count(self.source_count());
        if dispatched {
            return Iteration::Dispatched;
        }
        if !block {
            return Iteration::Slept;
        }
        let now = self.clock.now();
        let timeout_deadline = self
            .next_timeout_deadline()
            .map(|d| self.quantizer.round_up(d));
        // I/O watches are readiness-polled: bound the sleep to one
        // quantum so data is noticed at select()-like granularity.
        let io_deadline = if self.has_io_watches() {
            let quantum = self.quantizer.quantum();
            let step = if quantum.is_zero() {
                TimeDelta::from_millis(1)
            } else {
                quantum
            };
            Some(self.quantizer.round_up(now + step))
        } else {
            None
        };
        let deadline = match (timeout_deadline, io_deadline) {
            (Some(a), Some(b)) => a.min(b),
            (Some(a), None) => a,
            (None, Some(b)) => b,
            (None, None) => {
                if self.has_idles() {
                    // Idle-only loops spin at quantum granularity.
                    self.quantizer
                        .round_up(now + self.quantizer.quantum().max(TimeDelta::from_millis(1)))
                } else if self.clock.is_virtual() {
                    return Iteration::Stalled;
                } else {
                    // Nothing to wait for except cross-thread wake-ups.
                    self.wake
                        .wait_timeout(std::time::Duration::from_millis(100));
                    return Iteration::Slept;
                }
            }
        };
        self.clock.wait_until(deadline, &self.wake);
        Iteration::Slept
    }

    /// Runs until [`LoopHandle::quit`] is called.
    ///
    /// Equivalent to `gtk_main()` in Figure 6.
    ///
    /// # Panics
    ///
    /// Panics if the loop stalls on a virtual clock (no sources left and
    /// nothing can ever wake it).
    pub fn run(&mut self) {
        while !self.quit.load(Ordering::SeqCst) {
            match self.iteration(true) {
                Iteration::Stalled => {
                    if self.quit.load(Ordering::SeqCst) {
                        break;
                    }
                    panic!("main loop stalled: virtual clock with no runnable sources");
                }
                _ => continue,
            }
        }
        self.quit.store(false, Ordering::SeqCst);
    }

    /// Runs until the clock reaches `until` (or quit is requested).
    ///
    /// With a [`VirtualClock`](crate::clock::VirtualClock) this executes
    /// the whole timeline instantly; if the loop stalls early the clock
    /// is advanced to `until`.
    pub fn run_until(&mut self, until: TimeStamp) {
        while self.clock.now() < until && !self.quit.load(Ordering::SeqCst) {
            match self.iteration(true) {
                Iteration::Stalled => {
                    if let Some(d) = until.as_micros().checked_sub(self.clock.now().as_micros()) {
                        // Only virtual clocks stall; jump to the horizon.
                        self.clock
                            .wait_until(self.clock.now() + TimeDelta::from_micros(d), &self.wake);
                    }
                    break;
                }
                _ => continue,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VirtualClock;
    use std::sync::atomic::AtomicU64;

    fn virtual_loop() -> (MainLoop, VirtualClock) {
        let clock = VirtualClock::new();
        let ml = MainLoop::with_quantizer(Arc::new(clock.clone()), Quantizer::exact());
        (ml, clock)
    }

    #[test]
    fn timeout_fires_periodically() {
        let (mut ml, _clock) = virtual_loop();
        let count = Arc::new(AtomicU64::new(0));
        let c = Arc::clone(&count);
        ml.add_timeout(
            TimeDelta::from_millis(10),
            Box::new(move |_| {
                c.fetch_add(1, Ordering::SeqCst);
                Continue::Keep
            }),
        );
        ml.run_until(TimeStamp::from_millis(105));
        assert_eq!(count.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn timeout_self_removes() {
        let (mut ml, _clock) = virtual_loop();
        let count = Arc::new(AtomicU64::new(0));
        let c = Arc::clone(&count);
        ml.add_timeout(
            TimeDelta::from_millis(10),
            Box::new(move |_| {
                c.fetch_add(1, Ordering::SeqCst);
                Continue::Remove
            }),
        );
        ml.run_until(TimeStamp::from_millis(100));
        assert_eq!(count.load(Ordering::SeqCst), 1);
        assert_eq!(ml.source_count(), 0);
    }

    #[test]
    fn oneshot_runs_once() {
        let (mut ml, _clock) = virtual_loop();
        let count = Arc::new(AtomicU64::new(0));
        let c = Arc::clone(&count);
        ml.add_oneshot(TimeDelta::from_millis(30), move |tick| {
            assert_eq!(tick.scheduled, TimeStamp::from_millis(30));
            c.fetch_add(1, Ordering::SeqCst);
        });
        ml.run_until(TimeStamp::from_millis(200));
        assert_eq!(count.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn quantizer_rounds_dispatch_times() {
        let clock = VirtualClock::new();
        let mut ml = MainLoop::with_quantizer(Arc::new(clock.clone()), Quantizer::LINUX_HZ100);
        let times = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let t2 = Arc::clone(&times);
        // A 15 ms period under a 10 ms quantum: wake-ups land on 20, 40,
        // 60 ms boundaries (deadline 15→20, 30→40, 45→50...).
        ml.add_timeout(
            TimeDelta::from_millis(15),
            Box::new(move |tick| {
                t2.lock().push(tick.now.as_millis());
                Continue::Keep
            }),
        );
        ml.run_until(TimeStamp::from_millis(65));
        let observed = times.lock().clone();
        assert_eq!(observed, vec![20, 30, 50, 60]);
    }

    #[test]
    fn missed_ticks_are_reported() {
        let clock = VirtualClock::new();
        // The third wait is delivered 35 ms late.
        clock.set_latency_model(Some(Box::new(|n| if n == 2 { 35_000 } else { 0 })));
        let mut ml = MainLoop::with_quantizer(Arc::new(clock.clone()), Quantizer::exact());
        let missed = Arc::new(AtomicU64::new(0));
        let m = Arc::clone(&missed);
        ml.add_timeout(
            TimeDelta::from_millis(10),
            Box::new(move |tick| {
                m.fetch_add(tick.missed, Ordering::SeqCst);
                Continue::Keep
            }),
        );
        ml.run_until(TimeStamp::from_millis(100));
        // Wait for the 30 ms deadline arrives at 65 ms: 3 whole periods
        // late.
        assert_eq!(missed.load(Ordering::SeqCst), 3);
        assert_eq!(ml.stats().ticks_missed, 3);
    }

    #[test]
    fn schedule_catches_up_after_latency() {
        let clock = VirtualClock::new();
        clock.set_latency_model(Some(Box::new(|n| if n == 0 { 95_000 } else { 0 })));
        let mut ml = MainLoop::with_quantizer(Arc::new(clock.clone()), Quantizer::exact());
        let times = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let t2 = Arc::clone(&times);
        ml.add_timeout(
            TimeDelta::from_millis(10),
            Box::new(move |tick| {
                t2.lock().push((tick.now.as_millis(), tick.missed));
                Continue::Keep
            }),
        );
        ml.run_until(TimeStamp::from_millis(130));
        let observed = times.lock().clone();
        // First dispatch at 105 ms (9 missed), then back on the 10 ms
        // grid relative to the original phase: 110, 120, 130.
        assert_eq!(observed[0], (105, 9));
        assert_eq!(observed[1], (110, 0));
        assert_eq!(observed[2], (120, 0));
    }

    #[test]
    fn idle_runs_when_nothing_dispatched() {
        let (mut ml, _clock) = virtual_loop();
        let idles = Arc::new(AtomicU64::new(0));
        let i2 = Arc::clone(&idles);
        ml.add_idle(Box::new(move || {
            i2.fetch_add(1, Ordering::SeqCst);
            Continue::Remove
        }));
        ml.add_timeout(TimeDelta::from_millis(10), Box::new(|_| Continue::Keep));
        ml.run_until(TimeStamp::from_millis(50));
        assert_eq!(idles.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn io_watch_polled_and_removable() {
        let (mut ml, _clock) = virtual_loop();
        let polls = Arc::new(AtomicU64::new(0));
        let p2 = Arc::clone(&polls);
        ml.add_io_watch(Box::new(move || {
            let n = p2.fetch_add(1, Ordering::SeqCst);
            if n >= 4 {
                IoPoll::Remove
            } else if n.is_multiple_of(2) {
                IoPoll::Worked
            } else {
                IoPoll::Idle
            }
        }));
        ml.add_timeout(TimeDelta::from_millis(10), Box::new(|_| Continue::Keep));
        ml.run_until(TimeStamp::from_millis(100));
        assert_eq!(polls.load(Ordering::SeqCst), 5);
        assert_eq!(ml.source_count(), 1);
        assert!(ml.stats().io_dispatches >= 2);
    }

    #[test]
    fn remove_source_by_id() {
        let (mut ml, _clock) = virtual_loop();
        let count = Arc::new(AtomicU64::new(0));
        let c = Arc::clone(&count);
        let id = ml.add_timeout(
            TimeDelta::from_millis(10),
            Box::new(move |_| {
                c.fetch_add(1, Ordering::SeqCst);
                Continue::Keep
            }),
        );
        assert!(ml.remove_source(id));
        assert!(!ml.remove_source(id), "double remove must fail");
        ml.add_timeout(TimeDelta::from_millis(10), Box::new(|_| Continue::Keep));
        ml.run_until(TimeStamp::from_millis(50));
        assert_eq!(count.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn slot_reuse_does_not_resurrect_old_id() {
        let (mut ml, _clock) = virtual_loop();
        let id1 = ml.add_timeout(TimeDelta::from_millis(10), Box::new(|_| Continue::Keep));
        assert!(ml.remove_source(id1));
        let id2 = ml.add_timeout(TimeDelta::from_millis(10), Box::new(|_| Continue::Keep));
        assert_eq!(id1.index, id2.index, "slot should be reused");
        assert!(!ml.remove_source(id1), "stale generation must not match");
        assert!(ml.remove_source(id2));
    }

    #[test]
    fn invoke_runs_on_loop_and_can_add_sources() {
        let (mut ml, _clock) = virtual_loop();
        let handle = ml.handle();
        let count = Arc::new(AtomicU64::new(0));
        let c = Arc::clone(&count);
        handle.invoke(move |ml| {
            ml.add_timeout(
                TimeDelta::from_millis(10),
                Box::new(move |_| {
                    c.fetch_add(1, Ordering::SeqCst);
                    Continue::Keep
                }),
            );
        });
        ml.run_until(TimeStamp::from_millis(55));
        assert_eq!(count.load(Ordering::SeqCst), 5);
        assert_eq!(ml.stats().invokes, 1);
    }

    #[test]
    fn priorities_order_same_deadline_dispatch() {
        let (mut ml, _clock) = virtual_loop();
        let order = Arc::new(parking_lot::Mutex::new(Vec::new()));
        for (label, priority) in [
            ("low", Priority::Low),
            ("default", Priority::Default),
            ("high", Priority::High),
        ] {
            let o = Arc::clone(&order);
            ml.add_timeout_with_priority(
                TimeDelta::from_millis(10),
                priority,
                Box::new(move |_| {
                    o.lock().push(label);
                    Continue::Keep
                }),
            );
        }
        ml.run_until(TimeStamp::from_millis(15));
        assert_eq!(*order.lock(), vec!["high", "default", "low"]);
    }

    #[test]
    fn equal_priority_keeps_installation_order() {
        let (mut ml, _clock) = virtual_loop();
        let order = Arc::new(parking_lot::Mutex::new(Vec::new()));
        for label in ["first", "second", "third"] {
            let o = Arc::clone(&order);
            ml.add_timeout(
                TimeDelta::from_millis(10),
                Box::new(move |_| {
                    o.lock().push(label);
                    Continue::Keep
                }),
            );
        }
        ml.run_until(TimeStamp::from_millis(15));
        assert_eq!(*order.lock(), vec!["first", "second", "third"]);
    }

    #[test]
    fn high_priority_callback_can_remove_lower_one() {
        let (mut ml, _clock) = virtual_loop();
        let victim_fired = Arc::new(AtomicU64::new(0));
        let vf = Arc::clone(&victim_fired);
        // Install the victim first (Low priority).
        let victim = ml.add_timeout_with_priority(
            TimeDelta::from_millis(10),
            Priority::Low,
            Box::new(move |_| {
                vf.fetch_add(1, Ordering::SeqCst);
                Continue::Keep
            }),
        );
        let handle = ml.handle();
        ml.add_timeout_with_priority(
            TimeDelta::from_millis(10),
            Priority::High,
            Box::new(move |_| {
                // Removing via invoke lands before the next iteration's
                // dispatch; the same-iteration Low dispatch still runs.
                handle.invoke(move |ml| {
                    ml.remove_source(victim);
                });
                Continue::Keep
            }),
        );
        ml.run_until(TimeStamp::from_millis(45));
        // Fired once (the same iteration as the first High dispatch),
        // then removed before any further tick.
        assert_eq!(victim_fired.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn quit_stops_run() {
        let clock = Arc::new(VirtualClock::new());
        let mut ml = MainLoop::with_quantizer(clock, Quantizer::exact());
        let handle = ml.handle();
        let mut remaining = 3;
        ml.add_timeout(
            TimeDelta::from_millis(10),
            Box::new(move |_| {
                remaining -= 1;
                if remaining == 0 {
                    handle.quit();
                }
                Continue::Keep
            }),
        );
        ml.run();
        assert_eq!(ml.stats().timeouts_dispatched, 3);
    }

    #[test]
    fn run_until_with_real_clock() {
        let clock = Arc::new(crate::clock::SystemClock::new());
        let mut ml =
            MainLoop::with_quantizer(clock.clone(), Quantizer::new(TimeDelta::from_millis(1)));
        let count = Arc::new(AtomicU64::new(0));
        let c = Arc::clone(&count);
        ml.add_timeout(
            TimeDelta::from_millis(2),
            Box::new(move |_| {
                c.fetch_add(1, Ordering::SeqCst);
                Continue::Keep
            }),
        );
        let deadline = clock.now() + TimeDelta::from_millis(30);
        ml.run_until(deadline);
        let n = count.load(Ordering::SeqCst);
        assert!(n >= 5, "expected at least 5 ticks in 30 ms, got {n}");
    }

    #[test]
    fn callback_removing_itself_via_handle_is_safe() {
        let (mut ml, _clock) = virtual_loop();
        let id_cell = Arc::new(parking_lot::Mutex::new(None::<SourceId>));
        let id_cell2 = Arc::clone(&id_cell);
        let handle = ml.handle();
        let fired = Arc::new(AtomicU64::new(0));
        let f2 = Arc::clone(&fired);
        let id = ml.add_timeout(
            TimeDelta::from_millis(10),
            Box::new(move |_| {
                f2.fetch_add(1, Ordering::SeqCst);
                let id = id_cell2.lock().unwrap();
                // Ask the loop to remove us; runs before the next tick.
                handle.invoke(move |ml| {
                    ml.remove_source(id);
                });
                Continue::Keep
            }),
        );
        *id_cell.lock() = Some(id);
        ml.run_until(TimeStamp::from_millis(100));
        assert_eq!(fired.load(Ordering::SeqCst), 1);
    }
}
