//! `gel` — the **g**scope **e**vent **l**oop.
//!
//! A from-scratch replacement for the glib/GTK main-loop machinery the
//! original gscope (Goel & Walpole, USENIX FREENIX 2002) was built on:
//! periodic timeouts, idle sources, I/O watches, and cross-thread
//! invocation, all driven by a pluggable [`Clock`].
//!
//! Two properties of the paper's environment are modelled explicitly so
//! they can be measured and varied:
//!
//! 1. **Timer quantization** (§4.5): `select()` timeouts are delivered at
//!    timer-interrupt granularity (10 ms on Linux 2.4), capping polling
//!    at 100 Hz. See [`Quantizer`].
//! 2. **Lost timeouts** (§4.5): under load, ticks are lost; the loop
//!    reports how many whole periods were missed via [`TickInfo::missed`]
//!    so scopes can advance their refresh appropriately.
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use gel::{Clock, Continue, MainLoop, TimeDelta, TimeStamp, VirtualClock};
//!
//! let clock = VirtualClock::new();
//! let mut ml = MainLoop::new(Arc::new(clock.clone()));
//! let mut ticks = 0u32;
//! let handle = ml.handle();
//! ml.add_timeout(TimeDelta::from_millis(50), Box::new(move |_tick| {
//!     ticks += 1;
//!     if ticks == 4 { handle.quit(); }
//!     Continue::Keep
//! }));
//! ml.run();
//! assert_eq!(clock.now(), TimeStamp::from_millis(200));
//! ```

mod clock;
mod context;
mod quantizer;
mod telemetry;
mod time;

pub use clock::{Clock, LatencyModel, SystemClock, VirtualClock, WakeFlag};
pub use context::{
    Continue, IdleFn, InvokeFn, IoPoll, IoWatchFn, Iteration, LoopHandle, LoopStats, MainLoop,
    Priority, SourceId, TickInfo, TimeoutFn,
};
pub use quantizer::Quantizer;
pub use telemetry::{LoopTelemetry, StageMeters};
pub use time::{TimeDelta, TimeStamp};
