//! The scope engine — the library's `GtkScope` widget (§2) minus the
//! pixels.
//!
//! A [`Scope`] owns a set of [`Signal`]s, the scope-wide sample
//! [`ScopeBuffer`], the acquisition mode, and the display parameters
//! (period, delay, zoom, bias). Every action available from the GUI in
//! the original gscope is a method here — the paper's "programmatic
//! interface for every action that can be performed from the GUI"
//! (§3.4). Rendering lives in the `grender` crate, which reads the
//! scope's state through [`Scope::display_cols`] and friends.

use std::collections::HashMap;
use std::io::Write;
use std::sync::Arc;

use gdsp::{Bin, SpectrumConfig};
use gel::{Clock, Continue, MainLoop, SourceId, TickInfo, TimeDelta, TimeStamp};
use gtel::LatencyHistogram;
use parking_lot::Mutex;

use crate::buffer::ScopeBuffer;
use crate::config::SigConfig;
use crate::error::{Result, ScopeError};
use crate::history::Cols;
use crate::signal::{EventSink, Signal};
use crate::source::SigSource;
use crate::telemetry::ScopeTelemetry;
use crate::trigger::{Envelope, Trigger};
use crate::tuple::{Tuple, TupleSink, TupleSource, TupleWriter};

/// Default sampling period: the 50 ms used throughout the paper's
/// examples (Figure 6, §3.3).
pub const DEFAULT_PERIOD: TimeDelta = TimeDelta::from_millis(50);

/// Signal name assumed for name-less tuples in single-signal playback
/// streams (§3.3).
pub const UNNAMED_SIGNAL: &str = "signal";

/// How the scope acquires data (§3.1: "polling or playback").
enum Mode {
    /// Not acquiring; ticks are ignored.
    Stopped,
    /// Sample live sources every period.
    Polling,
    /// Replay tuples from a recorded stream.
    Playback {
        tuples: Vec<Tuple>,
        /// Pre-resolved signal index per tuple, parallel to `tuples`
        /// ([`UNROUTED`] = no matching signal). Rebuilt by
        /// `refresh_wiring` whenever the signal set changes, so the
        /// per-step loop never searches by name.
        slots: Vec<u32>,
        /// Index of the next tuple to consume.
        cursor: usize,
        /// Current playback time; advances one period per tick.
        time: TimeStamp,
        /// Last value seen per signal, parallel to `Scope::signals`
        /// (sample-and-hold between tuples).
        current: Vec<Option<f64>>,
    },
}

/// Playback slot marker for tuples with no matching signal.
const UNROUTED: u32 = u32::MAX;

impl Mode {
    fn name(&self) -> &'static str {
        match self {
            Mode::Stopped => "stopped",
            Mode::Polling => "polling",
            Mode::Playback { .. } => "playback",
        }
    }
}

/// Counters describing scope activity.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScopeStats {
    /// Polling or playback ticks processed.
    pub ticks: u64,
    /// Whole periods lost to scheduling latency, as reported by the
    /// event loop and compensated in the display (§4.5).
    pub missed_ticks: u64,
    /// Tuples written by the recorder.
    pub recorded_tuples: u64,
    /// Buffered samples rejected because they arrived after their
    /// display deadline (from the scope-wide [`ScopeBuffer`]).
    pub late_drops: u64,
    /// True if a recording was stopped by a write error (see
    /// [`Scope::recording_error`]).
    pub recording_failed: bool,
}

impl crate::telemetry::StatsExport for ScopeStats {
    fn to_tuples(&self, now: TimeStamp) -> Vec<Tuple> {
        vec![
            Tuple::new(now, self.ticks as f64, "scope.ticks"),
            Tuple::new(now, self.missed_ticks as f64, "scope.missed_ticks"),
            Tuple::new(now, self.recorded_tuples as f64, "scope.recorded_tuples"),
            Tuple::new(now, self.late_drops as f64, "scope.late_drops"),
            Tuple::new(
                now,
                if self.recording_failed { 1.0 } else { 0.0 },
                "scope.recording_failed",
            ),
        ]
    }
}

type RecordSink = Box<dyn TupleSink>;

/// An oscilloscope for software signals.
pub struct Scope {
    name: String,
    width: usize,
    height: usize,
    clock: Arc<dyn Clock>,
    signals: Vec<Signal>,
    palette_counter: usize,
    mode: Mode,
    period: TimeDelta,
    zoom: f64,
    bias: f64,
    buffer: ScopeBuffer,
    recorder: Option<RecordSink>,
    recording_error: Option<String>,
    /// Scope-level trigger: `(source signal, trigger)`.
    trigger: Option<(String, Trigger)>,
    envelopes: HashMap<String, Envelope>,
    stats: ScopeStats,
    telemetry: ScopeTelemetry,
    /// Interned signal name → index in `signals`; rebuilt on signal-set
    /// changes so tick-time routing is a single hash lookup.
    route: HashMap<Arc<str>, usize>,
    /// Per-signal poll-latency histograms, parallel to `signals` —
    /// resolved once at wiring time instead of per tick per signal.
    sig_tel: Vec<Arc<LatencyHistogram>>,
    /// Tick scratch: buffer samples drained this tick (reused).
    drain_buf: Vec<Tuple>,
    /// Tick scratch: values routed to each signal, parallel to
    /// `signals` (reused; cleared, not reallocated, each tick).
    routed: Vec<Vec<f64>>,
}

impl Scope {
    /// Creates a scope — `gtk_scope_new(name, width, height)` (§3.4).
    ///
    /// `width` is the canvas width in pixels (one polling period per
    /// pixel at default zoom); `height` only matters for rendering.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn new(
        name: impl Into<String>,
        width: usize,
        height: usize,
        clock: Arc<dyn Clock>,
    ) -> Self {
        assert!(width > 0, "scope width must be non-zero");
        let buffer = ScopeBuffer::new(Arc::clone(&clock), TimeDelta::from_millis(500));
        Scope {
            name: name.into(),
            width,
            height,
            clock,
            signals: Vec::new(),
            palette_counter: 0,
            mode: Mode::Stopped,
            period: DEFAULT_PERIOD,
            zoom: 1.0,
            bias: 0.0,
            buffer,
            recorder: None,
            recording_error: None,
            trigger: None,
            envelopes: HashMap::new(),
            stats: ScopeStats::default(),
            telemetry: ScopeTelemetry::default(),
            route: HashMap::new(),
            sig_tel: Vec::new(),
            drain_buf: Vec::new(),
            routed: Vec::new(),
        }
    }

    /// Wraps the scope for sharing with an event loop and other threads.
    pub fn into_shared(self) -> SharedScope {
        Arc::new(Mutex::new(self))
    }

    /// Returns the scope name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Returns the canvas width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Returns the canvas height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Resizes the canvas (a window resize in the GUI): every signal's
    /// history adopts the new pixel width (shrinking drops the oldest
    /// columns) and envelopes restart at the new width.
    ///
    /// # Errors
    ///
    /// Returns [`ScopeError::OutOfRange`] for a zero width.
    pub fn set_size(&mut self, width: usize, height: usize) -> Result<()> {
        if width == 0 {
            return Err(ScopeError::OutOfRange {
                what: "canvas width",
                value: 0.0,
            });
        }
        self.width = width;
        self.height = height.max(1);
        for sig in &mut self.signals {
            sig.set_width(width);
        }
        for env in self.envelopes.values_mut() {
            *env = Envelope::new(width);
        }
        Ok(())
    }

    /// Returns the scope's clock.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// Returns activity counters, folding in the buffer's late-drop
    /// count and the recording-failure flag.
    pub fn stats(&self) -> ScopeStats {
        let mut s = self.stats;
        s.late_drops = self.buffer.late_drops();
        s.recording_failed = self.recording_error.is_some();
        s
    }

    /// Returns the scope's telemetry handles (and, through them, the
    /// registry its `scope.*` metrics live in).
    pub fn telemetry(&self) -> &ScopeTelemetry {
        &self.telemetry
    }

    /// Re-homes the scope's metrics in `registry` — call before first
    /// use so every component of a process shares one registry.
    pub fn set_telemetry(&mut self, registry: Arc<gtel::Registry>) {
        self.telemetry = ScopeTelemetry::new(registry);
        self.refresh_wiring();
    }

    /// Rebuilds everything derived from the signal set: the name →
    /// index routing table, the per-signal scratch vectors, the
    /// pre-resolved telemetry handles, and (in playback) the tuple →
    /// signal slot mapping and sample-and-hold state. Runs on signal
    /// add/remove and telemetry re-homing — never on the tick path.
    fn refresh_wiring(&mut self) {
        let old_route = std::mem::take(&mut self.route);
        for (i, sig) in self.signals.iter().enumerate() {
            self.route.insert(Arc::clone(sig.interned_name()), i);
        }
        self.routed.resize_with(self.signals.len(), Vec::new);
        self.sig_tel.clear();
        for sig in &self.signals {
            self.sig_tel
                .push(Arc::clone(self.telemetry.signal_poll_ns(sig.name())));
        }
        if let Mode::Playback {
            tuples,
            slots,
            current,
            ..
        } = &mut self.mode
        {
            slots.clear();
            slots.extend(tuples.iter().map(|t| {
                let name = t.name.as_deref().unwrap_or(UNNAMED_SIGNAL);
                self.route.get(name).map(|&i| i as u32).unwrap_or(UNROUTED)
            }));
            // Carry each surviving signal's held value across the
            // re-index; signals added mid-replay start empty.
            let old_current = std::mem::take(current);
            current.extend(self.signals.iter().map(|s| {
                old_route
                    .get(s.name())
                    .and_then(|&old| old_current.get(old).copied().flatten())
            }));
        }
    }

    // ----- signal management (§3.1) -----

    /// Adds a signal — `gtk_scope_signal_new` (§3.4).
    ///
    /// # Errors
    ///
    /// Returns [`ScopeError::DuplicateSignal`] if the name is taken, or
    /// a config validation error.
    pub fn add_signal(
        &mut self,
        name: impl AsRef<str>,
        source: SigSource,
        config: SigConfig,
    ) -> Result<()> {
        let name = name.as_ref();
        if self.signals.iter().any(|s| s.name() == name) {
            return Err(ScopeError::DuplicateSignal(name.to_owned()));
        }
        let sig = Signal::new(name, source, config, self.palette_counter, self.width)?;
        self.palette_counter += 1;
        self.signals.push(sig);
        self.refresh_wiring();
        Ok(())
    }

    /// Removes a signal (dynamic removal, §1's feature list).
    ///
    /// # Errors
    ///
    /// Returns [`ScopeError::UnknownSignal`] if absent.
    pub fn remove_signal(&mut self, name: &str) -> Result<()> {
        let before = self.signals.len();
        self.signals.retain(|s| s.name() != name);
        if self.signals.len() == before {
            return Err(ScopeError::UnknownSignal(name.into()));
        }
        self.envelopes.remove(name);
        if self.trigger.as_ref().is_some_and(|(n, _)| n == name) {
            self.trigger = None;
        }
        self.refresh_wiring();
        Ok(())
    }

    /// Returns a signal by name.
    pub fn signal(&self, name: &str) -> Option<&Signal> {
        self.signals.iter().find(|s| s.name() == name)
    }

    /// Returns a mutable signal by name.
    pub fn signal_mut(&mut self, name: &str) -> Option<&mut Signal> {
        self.signals.iter_mut().find(|s| s.name() == name)
    }

    /// Returns the signal names in display order.
    pub fn signal_names(&self) -> Vec<String> {
        self.signals.iter().map(|s| s.name().to_owned()).collect()
    }

    /// Returns the signals in display order.
    pub fn signals(&self) -> &[Signal] {
        &self.signals
    }

    /// Number of signals.
    pub fn signal_count(&self) -> usize {
        self.signals.len()
    }

    /// Returns an event sink for a signal (§4.2 event aggregation).
    ///
    /// # Errors
    ///
    /// Returns [`ScopeError::UnknownSignal`] if absent.
    pub fn event_sink(&self, name: &str) -> Result<EventSink> {
        self.signal(name)
            .map(|s| s.event_sink())
            .ok_or_else(|| ScopeError::UnknownSignal(name.into()))
    }

    // ----- acquisition modes (§3.1) -----

    /// Enters polling mode at `period` —
    /// `gtk_scope_set_polling_mode(scope, ms)` (Figure 6). Acquisition
    /// starts on [`Scope::start`].
    ///
    /// # Errors
    ///
    /// Returns [`ScopeError::OutOfRange`] for a zero period.
    pub fn set_polling_mode(&mut self, period: TimeDelta) -> Result<()> {
        if period.is_zero() {
            return Err(ScopeError::OutOfRange {
                what: "polling period",
                value: 0.0,
            });
        }
        self.period = period;
        self.mode = Mode::Stopped;
        Ok(())
    }

    /// Enters playback mode over recorded tuples (§3.1, §3.3).
    ///
    /// Signals named in the stream that do not exist yet are created
    /// with default configuration; name-less tuples map to
    /// [`UNNAMED_SIGNAL`]. Playback starts on [`Scope::start`] and runs
    /// at the current period, one tuple-time period per tick.
    ///
    /// # Errors
    ///
    /// Returns [`ScopeError::TupleOrder`] if the tuples are not in
    /// non-decreasing time order, or signal-creation errors.
    pub fn set_playback_mode(&mut self, tuples: Vec<Tuple>) -> Result<()> {
        for (i, w) in tuples.windows(2).enumerate() {
            if w[1].time < w[0].time {
                return Err(ScopeError::TupleOrder {
                    line: i + 2,
                    previous_ms: w[0].time.as_millis_f64(),
                    found_ms: w[1].time.as_millis_f64(),
                });
            }
        }
        // Auto-create signals for names present in the stream.
        let mut names: Vec<&str> = tuples
            .iter()
            .map(|t| t.name.as_deref().unwrap_or(UNNAMED_SIGNAL))
            .collect();
        names.sort_unstable();
        names.dedup();
        for n in names {
            if self.signal(n).is_none() {
                self.add_signal(n, SigSource::Events, SigConfig::default())?;
            }
        }
        let start = tuples.first().map(|t| t.time).unwrap_or(TimeStamp::ZERO);
        self.mode = Mode::Playback {
            tuples,
            slots: Vec::new(),
            cursor: 0,
            time: start,
            current: Vec::new(),
        };
        // Resolve every tuple's signal slot up front; the per-step
        // replay loop then indexes instead of searching by name.
        self.refresh_wiring();
        Ok(())
    }

    /// Enters playback mode over any [`TupleSource`] — a
    /// [`crate::TupleReader`] over a text file, or a `gstore`
    /// store reader positioned by a seek, so `replay --from T` starts
    /// mid-recording without materializing what came before.
    ///
    /// # Errors
    ///
    /// Propagates source errors and [`Scope::set_playback_mode`]
    /// errors.
    pub fn set_playback_source(&mut self, source: &mut dyn TupleSource) -> Result<()> {
        let tuples = source.collect_tuples()?;
        self.set_playback_mode(tuples)
    }

    /// Starts acquisition — `gtk_scope_start_polling` (Figure 6).
    ///
    /// In the stopped state after [`Scope::set_polling_mode`], begins
    /// polling; a prepared playback resumes where it stopped.
    pub fn start(&mut self) {
        if matches!(self.mode, Mode::Stopped) {
            self.mode = Mode::Polling;
        }
    }

    /// Stops acquisition; ticks are ignored until restarted.
    pub fn stop(&mut self) {
        if matches!(self.mode, Mode::Polling) {
            self.mode = Mode::Stopped;
        }
    }

    /// Returns the acquisition mode name (`"stopped"`, `"polling"`,
    /// `"playback"`).
    pub fn mode_name(&self) -> &'static str {
        self.mode.name()
    }

    /// True while playback has tuples left to replay.
    pub fn playback_active(&self) -> bool {
        matches!(&self.mode, Mode::Playback { tuples, cursor, .. } if *cursor < tuples.len())
    }

    // ----- scope parameters (§2's widgets) -----

    /// Returns the sampling period.
    pub fn period(&self) -> TimeDelta {
        self.period
    }

    /// Changes the sampling period (the sampling-period widget).
    ///
    /// # Errors
    ///
    /// Returns [`ScopeError::OutOfRange`] for a zero period.
    pub fn set_period(&mut self, period: TimeDelta) -> Result<()> {
        if period.is_zero() {
            return Err(ScopeError::OutOfRange {
                what: "polling period",
                value: 0.0,
            });
        }
        self.period = period;
        Ok(())
    }

    /// Returns the zoom factor (default 1.0).
    pub fn zoom(&self) -> f64 {
        self.zoom
    }

    /// Sets the zoom factor (the zoom widget); legal in `[0.01, 100]`.
    ///
    /// # Errors
    ///
    /// Returns [`ScopeError::OutOfRange`] outside the legal range.
    pub fn set_zoom(&mut self, zoom: f64) -> Result<()> {
        if !zoom.is_finite() || !(0.01..=100.0).contains(&zoom) {
            return Err(ScopeError::OutOfRange {
                what: "zoom",
                value: zoom,
            });
        }
        self.zoom = zoom;
        Ok(())
    }

    /// Returns the bias (default 0.0).
    pub fn bias(&self) -> f64 {
        self.bias
    }

    /// Sets the bias (the bias widget); legal in `[-1, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`ScopeError::OutOfRange`] outside the legal range.
    pub fn set_bias(&mut self, bias: f64) -> Result<()> {
        if !bias.is_finite() || !(-1.0..=1.0).contains(&bias) {
            return Err(ScopeError::OutOfRange {
                what: "bias",
                value: bias,
            });
        }
        self.bias = bias;
        Ok(())
    }

    /// Returns the buffered-signal display delay (the delay widget).
    pub fn delay(&self) -> TimeDelta {
        self.buffer.delay()
    }

    /// Sets the buffered-signal display delay.
    pub fn set_delay(&mut self, delay: TimeDelta) {
        self.buffer.set_delay(delay);
    }

    /// Returns the scope-wide sample buffer for `BUFFER` signals.
    ///
    /// Clone it and hand it to producer threads or the network server.
    pub fn buffer(&self) -> &ScopeBuffer {
        &self.buffer
    }

    /// Maps a raw signal value to a display fraction in `[0, 1]`
    /// (0 = canvas bottom, 1 = top) applying the signal's min/max and
    /// the scope's zoom and bias.
    pub fn display_fraction(&self, config: &SigConfig, v: f64) -> f64 {
        (self.zoom * config.normalize(v) + self.bias).clamp(0.0, 1.0)
    }

    // ----- triggers and envelopes (§6 extensions) -----

    /// Installs a trigger sourced from `signal` — all traces align to
    /// its most recent trigger point.
    ///
    /// # Errors
    ///
    /// Returns [`ScopeError::UnknownSignal`] if absent.
    pub fn set_trigger(&mut self, signal: &str, trigger: Trigger) -> Result<()> {
        if self.signal(signal).is_none() {
            return Err(ScopeError::UnknownSignal(signal.into()));
        }
        self.trigger = Some((signal.to_owned(), trigger));
        Ok(())
    }

    /// Removes the trigger.
    pub fn clear_trigger(&mut self) {
        self.trigger = None;
    }

    /// Returns the installed trigger, if any.
    pub fn trigger(&self) -> Option<(&str, &Trigger)> {
        self.trigger.as_ref().map(|(n, t)| (n.as_str(), t))
    }

    /// Enables envelope accumulation for a signal.
    ///
    /// # Errors
    ///
    /// Returns [`ScopeError::UnknownSignal`] if absent.
    pub fn enable_envelope(&mut self, name: &str) -> Result<()> {
        if self.signal(name).is_none() {
            return Err(ScopeError::UnknownSignal(name.into()));
        }
        self.envelopes
            .entry(name.to_owned())
            .or_insert_with(|| Envelope::new(self.width));
        Ok(())
    }

    /// Installs a pre-computed envelope for a signal — the vehicle for
    /// level-of-detail playback, where min/max columns come straight
    /// off disk and the renderer must not re-decimate.
    ///
    /// # Errors
    ///
    /// Returns [`ScopeError::UnknownSignal`] if absent.
    pub fn set_envelope(&mut self, name: &str, envelope: Envelope) -> Result<()> {
        if self.signal(name).is_none() {
            return Err(ScopeError::UnknownSignal(name.into()));
        }
        self.envelopes.insert(name.to_owned(), envelope);
        Ok(())
    }

    /// Stops and clears envelope accumulation for a signal.
    pub fn disable_envelope(&mut self, name: &str) {
        self.envelopes.remove(name);
    }

    /// Returns the accumulated envelope for a signal, if enabled.
    pub fn envelope(&self, name: &str) -> Option<&Envelope> {
        self.envelopes.get(name)
    }

    // ----- recording (§3.1, §3.3) -----

    /// Starts recording every polled sample as §3.3 text tuples to a
    /// byte sink (a `File`, a socket, a `Vec<u8>`).
    pub fn start_recording<W>(&mut self, sink: W)
    where
        W: Write + Send + 'static,
    {
        self.start_recording_sink(TupleWriter::new(sink));
    }

    /// Starts recording into any [`TupleSink`] — e.g. a `gstore::Store`
    /// for a segmented, crash-safe, seekable recording instead of a
    /// flat text stream.
    pub fn start_recording_sink<S: TupleSink + 'static>(&mut self, sink: S) {
        self.recorder = Some(Box::new(sink));
        self.recording_error = None;
    }

    /// Stops recording, flushing and returning the sink.
    ///
    /// A flush failure is latched exactly like a tick-time write
    /// failure: the sink is still returned, but
    /// [`Scope::recording_error`] (and `ScopeStats::recording_failed`)
    /// report it.
    pub fn stop_recording(&mut self) -> Option<Box<dyn TupleSink>> {
        let mut w = self.recorder.take()?;
        if let Err(e) = w.flush() {
            self.recording_error = Some(e.to_string());
            self.telemetry.record_errors.inc();
        }
        Some(w)
    }

    /// True while a recorder is attached.
    pub fn is_recording(&self) -> bool {
        self.recorder.is_some()
    }

    /// The error that stopped a recording, if one occurred.
    pub fn recording_error(&self) -> Option<&str> {
        self.recording_error.as_deref()
    }

    // ----- the tick -----

    /// Advances the scope by one timeout dispatch.
    ///
    /// Wire this to a [`MainLoop`] timeout (see [`attach_scope`]) or
    /// call it directly in tests. Missed periods reported by the loop
    /// advance every trace by the missed amount first (§4.5), keeping
    /// the x-axis truthful.
    pub fn tick(&mut self, info: &TickInfo) {
        match &mut self.mode {
            Mode::Stopped => {}
            Mode::Polling => self.poll_tick(info),
            Mode::Playback { .. } => self.playback_tick(info),
        }
    }

    fn poll_tick(&mut self, info: &TickInfo) {
        let _span = gtel::span("scope.tick", self.stats.ticks + 1);
        let poll_started = std::time::Instant::now();
        self.stats.ticks += 1;
        self.stats.missed_ticks += info.missed;
        self.telemetry.ticks.inc();
        if info.missed > 0 {
            self.telemetry.ticks_missed.add(info.missed);
            for sig in &mut self.signals {
                sig.advance_held(info.missed);
            }
        }
        // Drain the scope-wide buffer up to now - delay and route the
        // samples to their signals (§3.1 buffered signals). The drain
        // target and per-signal routing vectors are reused across
        // ticks, so steady-state routing allocates nothing.
        let cutoff = info.now.saturating_sub(self.buffer.delay());
        self.drain_buf.clear();
        self.buffer.drain_until_into(cutoff, &mut self.drain_buf);
        for values in &mut self.routed {
            values.clear();
        }
        for t in &self.drain_buf {
            let name = t.name.as_deref().unwrap_or(UNNAMED_SIGNAL);
            if let Some(&idx) = self.route.get(name) {
                self.routed[idx].push(t.value);
            }
        }
        // Lateness attribution: this tick drained buffered samples for
        // these signals — the drain leg of any hub-stamped chain.
        let e2e = gtel::e2e();
        if e2e.is_active() {
            let drain_us = gtel::fast_now_ns() / 1_000;
            for (name, &idx) in &self.route {
                if !self.routed[idx].is_empty() {
                    e2e.note_drain(name, drain_us);
                }
            }
        }
        let period = self.period;
        for (i, sig) in self.signals.iter_mut().enumerate() {
            let sig_started = std::time::Instant::now();
            sig.tick(period, &self.routed[i]);
            self.sig_tel[i].record_duration(sig_started.elapsed());
        }
        self.telemetry.buffer_depth.set_count(self.buffer.len());
        self.telemetry.sync_late_drops(self.buffer.late_drops());
        self.record_tick(info.now);
        self.update_envelopes();
        self.telemetry
            .poll_ns
            .record_duration(poll_started.elapsed());
    }

    fn playback_tick(&mut self, info: &TickInfo) {
        let _span = gtel::span("scope.tick", self.stats.ticks + 1);
        let Mode::Playback {
            tuples,
            slots,
            cursor,
            time,
            current,
        } = &mut self.mode
        else {
            return;
        };
        self.stats.ticks += 1;
        self.stats.missed_ticks += info.missed;
        self.telemetry.ticks.inc();
        if info.missed > 0 {
            self.telemetry.ticks_missed.add(info.missed);
        }
        // Advance playback time by (1 + missed) periods, consuming
        // tuples that became due: one pixel per period (§3.1/§3.3).
        // Tuple→signal slots were resolved at set_playback_mode (and on
        // every signal-set change), so each step is index arithmetic —
        // no name lookups, no snapshots, no allocation.
        let steps = 1 + info.missed;
        for _ in 0..steps {
            while *cursor < tuples.len() && tuples[*cursor].time <= *time {
                let slot = slots[*cursor];
                if slot != UNROUTED {
                    current[slot as usize] = Some(tuples[*cursor].value);
                }
                *cursor += 1;
            }
            for (sig, v) in self.signals.iter_mut().zip(current.iter()) {
                sig.push_playback(*v);
            }
            *time += self.period;
        }
        if *cursor >= tuples.len() {
            let last = tuples.last().map(|t| t.time).unwrap_or(TimeStamp::ZERO);
            // Stop once the stream is exhausted and either nothing is
            // live any more (empty stream, or every routed signal was
            // removed mid-replay) or the display has scrolled past the
            // last tuple: freeze the display.
            let nothing_live = current.iter().all(|v| v.is_none());
            if nothing_live || *time > last + self.period {
                self.mode = Mode::Stopped;
            }
        }
        self.update_envelopes();
    }

    fn record_tick(&mut self, now: TimeStamp) {
        let Some(rec) = self.recorder.as_mut() else {
            return;
        };
        let _span = gtel::span("scope.record", self.stats.recorded_tuples);
        let write_started = std::time::Instant::now();
        let bytes_before = rec.bytes_written();
        let mut failed = None;
        for sig in &self.signals {
            if let Some(Some(v)) = sig.history().latest() {
                if let Err(e) = rec.write_parts(now, v, Some(sig.name())) {
                    failed = Some(e.to_string());
                    break;
                }
                self.stats.recorded_tuples += 1;
            }
        }
        let bytes_after = rec.bytes_written();
        self.telemetry
            .record_write_ns
            .record_duration(write_started.elapsed());
        self.telemetry
            .record_bytes
            .add(bytes_after.saturating_sub(bytes_before));
        if let Some(msg) = failed {
            self.recorder = None;
            self.recording_error = Some(msg);
            self.telemetry.record_errors.inc();
        }
    }

    fn update_envelopes(&mut self) {
        if self.envelopes.is_empty() {
            return;
        }
        // Split borrow: the envelope map is mutated while the signal
        // histories and trigger are only read — distinct fields, so
        // each sweep is folded in without cloning names or windows.
        let signals = &self.signals;
        let trigger = self.trigger.as_ref();
        let width = self.width;
        for (name, env) in &mut self.envelopes {
            env.accumulate_cols(display_cols_in(signals, trigger, width, name));
        }
    }

    /// Exports the currently displayed histories as ordered tuples —
    /// §6's "printing of recorded data" without having had a recorder
    /// attached. Column `i` of a window of length `n` is stamped
    /// `now − (n − 1 − i)·period`; empty columns are skipped.
    ///
    /// # Errors
    ///
    /// Propagates write errors from `sink`.
    pub fn dump_tuples<W: std::io::Write>(&self, sink: W) -> Result<u64> {
        let mut w = TupleWriter::new(sink);
        let now = self.clock.now();
        let mut count = 0u64;
        // Emit column by column so times are non-decreasing across
        // signals, reading each history in place — no window clones,
        // no per-tuple name or line allocations.
        let longest = self
            .signals
            .iter()
            .map(|sig| sig.history().len())
            .max()
            .unwrap_or(0);
        for col in 0..longest {
            for sig in &self.signals {
                // Right-align shorter histories to "now".
                let offset = longest - sig.history().len();
                if col < offset {
                    continue;
                }
                if let Some(Some(v)) = sig.history().get(col - offset) {
                    let age = (longest - 1 - col) as u64;
                    let t = now.saturating_sub(self.period.saturating_mul(age));
                    w.write_parts(t, v, Some(sig.name()))?;
                    count += 1;
                }
            }
        }
        w.flush()?;
        Ok(count)
    }

    // ----- display extraction (consumed by grender) -----

    /// Returns the columns to draw for `name` as a borrowed [`Cols`]
    /// view — trigger-aligned when a trigger is installed,
    /// right-aligned to the canvas otherwise. Zero-copy: the view
    /// borrows the signal's ring buffer in place.
    ///
    /// Unknown signals (and a Normal-mode trigger that has never
    /// fired) yield an empty view.
    pub fn display_cols(&self, name: &str) -> Cols<'_> {
        display_cols_in(&self.signals, self.trigger.as_ref(), self.width, name)
    }

    /// Runs `f` over the borrowed display window for `name` — the
    /// closure form of [`Scope::display_cols`], for callers that want
    /// the borrow scoped rather than returned.
    pub fn with_display_window<R>(&self, name: &str, f: impl FnOnce(Cols<'_>) -> R) -> R {
        f(self.display_cols(name))
    }

    /// Returns the columns to draw for `name`, trigger-aligned when a
    /// trigger is installed, right-aligned to the canvas otherwise.
    ///
    /// Unknown signals yield an empty vector.
    #[deprecated(note = "clones the window every call; use Scope::display_cols or \
                Scope::with_display_window for a zero-copy view")]
    pub fn display_window(&self, name: &str) -> Vec<Option<f64>> {
        self.display_cols(name).to_vec()
    }

    /// Computes a signal's frequency-domain view (§3.1) over the last
    /// `n` display samples.
    ///
    /// # Errors
    ///
    /// Returns [`ScopeError::UnknownSignal`] or an FFT length error
    /// mapped to [`ScopeError::OutOfRange`].
    pub fn spectrum(&self, name: &str, n: usize, config: SpectrumConfig) -> Result<Vec<Bin>> {
        let sig = self
            .signal(name)
            .ok_or_else(|| ScopeError::UnknownSignal(name.into()))?;
        sig.spectrum(n, config).map_err(|_| ScopeError::OutOfRange {
            what: "spectrum size",
            value: n as f64,
        })
    }

    /// Measures between two cursor columns of a signal's display
    /// window (x positions as column indices, oldest-first; both
    /// clamped to the window).
    ///
    /// # Errors
    ///
    /// Returns [`ScopeError::UnknownSignal`] if absent, or
    /// [`ScopeError::OutOfRange`] when the window is empty or the slice
    /// contains no values.
    pub fn measure(&self, name: &str, x1: usize, x2: usize) -> Result<Measurement> {
        if self.signal(name).is_none() {
            return Err(ScopeError::UnknownSignal(name.into()));
        }
        let window = self.display_cols(name);
        if window.is_empty() {
            return Err(ScopeError::OutOfRange {
                what: "measurement window",
                value: 0.0,
            });
        }
        let (lo, hi) = if x1 <= x2 { (x1, x2) } else { (x2, x1) };
        let lo = lo.min(window.len() - 1);
        let hi = hi.min(window.len() - 1);
        // Value at a cursor: nearest non-empty column at or before it.
        let value_at = |x: usize| window.slice(0, x + 1).iter().rev().find_map(|v| v);
        let (Some(v1), Some(v2)) = (value_at(lo), value_at(hi)) else {
            return Err(ScopeError::OutOfRange {
                what: "measurement cursors",
                value: lo as f64,
            });
        };
        let slice: Vec<f64> = window.slice(lo, hi + 1).iter().flatten().collect();
        if slice.is_empty() {
            return Err(ScopeError::OutOfRange {
                what: "measurement slice",
                value: lo as f64,
            });
        }
        let min = slice.iter().copied().fold(f64::INFINITY, f64::min);
        let max = slice.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mean = slice.iter().sum::<f64>() / slice.len() as f64;
        Ok(Measurement {
            dt: self.period.saturating_mul((hi - lo) as u64),
            dv: v2 - v1,
            min,
            max,
            mean,
            samples: slice.len(),
        })
    }

    /// The Value-button readout for a signal.
    ///
    /// # Errors
    ///
    /// Returns [`ScopeError::UnknownSignal`] if absent.
    pub fn value_readout(&self, name: &str) -> Result<Option<f64>> {
        self.signal(name)
            .map(|s| s.value_readout())
            .ok_or_else(|| ScopeError::UnknownSignal(name.into()))
    }
}

/// Display-window extraction shared by [`Scope::display_cols`] and the
/// envelope update, which must read windows while holding `&mut` on the
/// envelope map (a split borrow over the scope's fields).
fn display_cols_in<'a>(
    signals: &'a [Signal],
    trigger: Option<&(String, Trigger)>,
    width: usize,
    name: &str,
) -> Cols<'a> {
    let find = |n: &str| signals.iter().find(|s| s.name() == n);
    let Some(sig) = find(name) else {
        return Cols::EMPTY;
    };
    let full = sig.history().cols();
    let Some((trig_name, trig)) = trigger else {
        return full;
    };
    let Some(trig_sig) = find(trig_name) else {
        return full;
    };
    let trig_hist = trig_sig.history().cols();
    // Align every trace by the same distance from the newest column:
    // the window for all traces ends where the trigger source last
    // fired.
    let end_in_trig = match trig.find_last_cols(trig_hist) {
        Some(i) => i + 1,
        None => match trig.mode {
            crate::trigger::TriggerMode::Auto => trig_hist.len(),
            crate::trigger::TriggerMode::Normal => return Cols::EMPTY,
        },
    };
    let end_offset = trig_hist.len() - end_in_trig;
    let end = full.len().saturating_sub(end_offset);
    let start = end.saturating_sub(width);
    full.slice(start, end)
}

/// Cursor-measurement results over a display-window slice.
///
/// Real oscilloscopes provide measurement cursors: two x positions and
/// the Δt/ΔV (plus slice statistics) between them. [`Scope::measure`]
/// is the programmatic equivalent.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Measurement {
    /// Time between the two cursors (columns × period).
    pub dt: TimeDelta,
    /// Value difference `v(x2) − v(x1)` (nearest non-empty column at or
    /// before each cursor).
    pub dv: f64,
    /// Smallest value in the slice.
    pub min: f64,
    /// Largest value in the slice.
    pub max: f64,
    /// Mean over non-empty columns in the slice.
    pub mean: f64,
    /// Non-empty columns in the slice.
    pub samples: usize,
}

/// A scope shared between the event loop and application threads
/// (§4.3's threading models).
pub type SharedScope = Arc<Mutex<Scope>>;

/// Wires a shared scope to a main loop: installs a periodic timeout at
/// the scope's period that drives [`Scope::tick`].
///
/// If the scope's period changes, the source reinstalls itself at the
/// new rate automatically. Returns the initial source id.
pub fn attach_scope(scope: &SharedScope, ml: &mut MainLoop) -> SourceId {
    let period = scope.lock().period();
    let scope2 = Arc::clone(scope);
    let handle = ml.handle();
    ml.add_timeout(
        period,
        Box::new(move |tick| {
            let mut guard = scope2.lock();
            guard.tick(tick);
            let current = guard.period();
            drop(guard);
            if current != period {
                let scope3 = Arc::clone(&scope2);
                handle.invoke(move |ml| {
                    attach_scope(&scope3, ml);
                });
                return Continue::Remove;
            }
            Continue::Keep
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::IntVar;
    use gel::{Quantizer, VirtualClock};

    fn tick_at(ms: u64) -> TickInfo {
        TickInfo {
            now: TimeStamp::from_millis(ms),
            scheduled: TimeStamp::from_millis(ms),
            missed: 0,
        }
    }

    fn scope_with_int(width: usize) -> (Scope, IntVar) {
        let clock = Arc::new(VirtualClock::new());
        let mut scope = Scope::new("test", width, 100, clock);
        let v = IntVar::new(0);
        scope
            .add_signal("v", v.clone().into(), SigConfig::default())
            .unwrap();
        scope.set_polling_mode(TimeDelta::from_millis(50)).unwrap();
        scope.start();
        (scope, v)
    }

    #[test]
    fn polling_fills_history() {
        let (mut scope, v) = scope_with_int(8);
        for i in 0..5 {
            v.set(i);
            scope.tick(&tick_at(50 * (i as u64 + 1)));
        }
        assert_eq!(
            scope.display_cols("v").to_vec(),
            vec![Some(0.0), Some(1.0), Some(2.0), Some(3.0), Some(4.0)]
        );
        assert_eq!(scope.stats().ticks, 5);
    }

    #[test]
    fn stopped_scope_ignores_ticks() {
        let (mut scope, _v) = scope_with_int(8);
        scope.stop();
        scope.tick(&tick_at(50));
        assert_eq!(scope.stats().ticks, 0);
        assert!(scope.display_cols("v").to_vec().is_empty());
        scope.start();
        scope.tick(&tick_at(100));
        assert_eq!(scope.stats().ticks, 1);
    }

    #[test]
    fn missed_ticks_advance_display() {
        let (mut scope, v) = scope_with_int(16);
        v.set(7);
        scope.tick(&tick_at(50));
        // The loop reports 3 missed periods: the display advances 3
        // held columns plus the new sample.
        let mut info = tick_at(250);
        info.missed = 3;
        v.set(9);
        scope.tick(&info);
        assert_eq!(
            scope.display_cols("v").to_vec(),
            vec![Some(7.0), Some(7.0), Some(7.0), Some(7.0), Some(9.0)]
        );
        assert_eq!(scope.stats().missed_ticks, 3);
    }

    #[test]
    fn duplicate_and_unknown_signals_error() {
        let (mut scope, _v) = scope_with_int(8);
        let err = scope
            .add_signal("v", IntVar::new(0).into(), SigConfig::default())
            .unwrap_err();
        assert!(matches!(err, ScopeError::DuplicateSignal(_)));
        assert!(scope.remove_signal("nope").is_err());
        scope.remove_signal("v").unwrap();
        assert_eq!(scope.signal_count(), 0);
    }

    #[test]
    fn buffered_signal_respects_delay() {
        let clock = Arc::new(VirtualClock::new());
        let mut scope = Scope::new("buf", 8, 100, Arc::clone(&clock) as Arc<dyn Clock>);
        scope
            .add_signal("b", SigSource::Buffer, SigConfig::default())
            .unwrap();
        scope.set_delay(TimeDelta::from_millis(100));
        scope.set_polling_mode(TimeDelta::from_millis(50)).unwrap();
        scope.start();
        scope
            .buffer()
            .push_sample("b", TimeStamp::from_millis(40), 5.0);
        // At t=50, cutoff = -50: nothing visible yet.
        scope.tick(&tick_at(50));
        assert_eq!(scope.display_cols("b").to_vec(), vec![None]);
        // At t=150, cutoff = 50 >= 40: the sample appears.
        scope.tick(&tick_at(150));
        assert_eq!(scope.display_cols("b").to_vec(), vec![None, Some(5.0)]);
    }

    #[test]
    fn recording_writes_tuples() {
        let (mut scope, v) = scope_with_int(8);
        let sink: Vec<u8> = Vec::new();
        let shared = Arc::new(Mutex::new(sink));
        struct SharedWriter(Arc<Mutex<Vec<u8>>>);
        impl Write for SharedWriter {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        scope.start_recording(SharedWriter(Arc::clone(&shared)));
        v.set(3);
        scope.tick(&tick_at(50));
        v.set(4);
        scope.tick(&tick_at(100));
        scope.stop_recording();
        let text = String::from_utf8(shared.lock().clone()).unwrap();
        assert_eq!(text, "50.000 3 v\n100.000 4 v\n");
        assert_eq!(scope.stats().recorded_tuples, 2);
        assert!(!scope.is_recording());
    }

    /// A sink that accepts `good_writes` tuples, then fails every
    /// write; flush fails when `fail_flush` is set.
    struct FailingSink {
        good_writes: usize,
        fail_flush: bool,
        writes: usize,
    }

    impl crate::tuple::TupleSink for FailingSink {
        fn write_parts(&mut self, _t: TimeStamp, _v: f64, _n: Option<&str>) -> Result<()> {
            self.writes += 1;
            if self.writes > self.good_writes {
                return Err(ScopeError::Io(std::io::Error::other("disk full")));
            }
            Ok(())
        }
        fn flush(&mut self) -> Result<()> {
            if self.fail_flush {
                return Err(ScopeError::Io(std::io::Error::other("flush failed")));
            }
            Ok(())
        }
        fn bytes_written(&self) -> u64 {
            self.writes as u64
        }
    }

    #[test]
    fn failed_write_drops_recorder_and_latches_error() {
        let (mut scope, v) = scope_with_int(8);
        scope.start_recording_sink(FailingSink {
            good_writes: 1,
            fail_flush: false,
            writes: 0,
        });
        v.set(1);
        scope.tick(&tick_at(50));
        assert!(scope.is_recording(), "first write succeeded");
        assert!(!scope.stats().recording_failed);
        v.set(2);
        scope.tick(&tick_at(100));
        // The dead sink must be gone, the error latched, and the stats
        // flag visible — the documented error path.
        assert!(!scope.is_recording(), "failed sink must be dropped");
        assert!(scope.recording_error().unwrap().contains("disk full"));
        assert!(scope.stats().recording_failed);
        // Subsequent ticks are fine (no recorder), and a fresh
        // recording clears the latched error.
        v.set(3);
        scope.tick(&tick_at(150));
        scope.start_recording(Vec::new());
        assert!(scope.recording_error().is_none());
        assert!(!scope.stats().recording_failed);
    }

    #[test]
    fn flush_failure_at_stop_is_latched() {
        let (mut scope, v) = scope_with_int(8);
        scope.start_recording_sink(FailingSink {
            good_writes: usize::MAX,
            fail_flush: true,
            writes: 0,
        });
        v.set(1);
        scope.tick(&tick_at(50));
        let sink = scope.stop_recording();
        assert!(sink.is_some(), "sink is still returned");
        assert!(scope.recording_error().unwrap().contains("flush failed"));
        assert!(scope.stats().recording_failed);
    }

    #[test]
    fn playback_from_source_matches_playback_mode() {
        let data = "0 1 s\n100 2 s\n";
        let clock = Arc::new(VirtualClock::new());
        let mut scope = Scope::new("pb", 16, 100, clock);
        scope.set_period(TimeDelta::from_millis(50)).unwrap();
        let mut reader = crate::tuple::TupleReader::new(data.as_bytes());
        scope
            .set_playback_source(&mut reader as &mut dyn TupleSource)
            .unwrap();
        scope.start();
        for i in 1..=3 {
            scope.tick(&tick_at(50 * i));
        }
        assert_eq!(
            scope.display_cols("s").to_vec(),
            vec![Some(1.0), Some(1.0), Some(2.0)]
        );
    }

    #[test]
    fn playback_replays_with_sample_and_hold() {
        let clock = Arc::new(VirtualClock::new());
        let mut scope = Scope::new("pb", 16, 100, clock);
        scope.set_period(TimeDelta::from_millis(50)).unwrap();
        // §3.3's example: points 100 ms apart at 50 ms period land 2
        // pixels apart.
        let tuples = vec![
            Tuple::new(TimeStamp::from_millis(0), 1.0, "s"),
            Tuple::new(TimeStamp::from_millis(100), 2.0, "s"),
        ];
        scope.set_playback_mode(tuples).unwrap();
        assert_eq!(scope.signal_names(), vec!["s".to_owned()]);
        scope.start();
        for i in 1..=3 {
            scope.tick(&tick_at(50 * i));
        }
        assert_eq!(
            scope.display_cols("s").to_vec(),
            vec![Some(1.0), Some(1.0), Some(2.0)]
        );
    }

    #[test]
    fn playback_unnamed_tuples_use_default_signal() {
        let clock = Arc::new(VirtualClock::new());
        let mut scope = Scope::new("pb", 8, 100, clock);
        scope
            .set_playback_mode(vec![
                Tuple::unnamed(TimeStamp::ZERO, 9.0),
                Tuple::unnamed(TimeStamp::from_millis(50), 8.0),
            ])
            .unwrap();
        scope.start();
        scope.tick(&tick_at(50));
        assert_eq!(scope.display_cols(UNNAMED_SIGNAL).to_vec(), vec![Some(9.0)]);
    }

    #[test]
    fn playback_rejects_unordered() {
        let clock = Arc::new(VirtualClock::new());
        let mut scope = Scope::new("pb", 8, 100, clock);
        let err = scope
            .set_playback_mode(vec![
                Tuple::unnamed(TimeStamp::from_millis(10), 1.0),
                Tuple::unnamed(TimeStamp::ZERO, 2.0),
            ])
            .unwrap_err();
        assert!(matches!(err, ScopeError::TupleOrder { .. }));
    }

    #[test]
    fn playback_stops_past_stream_end() {
        let clock = Arc::new(VirtualClock::new());
        let mut scope = Scope::new("pb", 8, 100, clock);
        scope.set_period(TimeDelta::from_millis(50)).unwrap();
        scope
            .set_playback_mode(vec![Tuple::new(TimeStamp::ZERO, 1.0, "s")])
            .unwrap();
        scope.start();
        for i in 1..=10 {
            scope.tick(&tick_at(50 * i));
        }
        assert_eq!(scope.mode_name(), "stopped");
        let window = scope.display_cols("s").to_vec();
        assert!(window.len() < 10, "display froze after stream end");
    }

    #[test]
    fn playback_stops_when_signals_removed_mid_replay() {
        let clock = Arc::new(VirtualClock::new());
        let mut scope = Scope::new("pb", 8, 100, clock);
        scope.set_period(TimeDelta::from_millis(50)).unwrap();
        scope
            .set_playback_mode(vec![
                Tuple::new(TimeStamp::ZERO, 1.0, "a"),
                Tuple::new(TimeStamp::from_millis(50), 2.0, "b"),
            ])
            .unwrap();
        scope.start();
        scope.tick(&tick_at(50));
        // Both stream signals vanish mid-replay: once the stream is
        // exhausted, nothing is live and playback must reach Stopped
        // instead of replaying held values forever.
        scope.remove_signal("a").unwrap();
        scope.remove_signal("b").unwrap();
        for i in 2..=4 {
            scope.tick(&tick_at(50 * i));
        }
        assert_eq!(scope.mode_name(), "stopped");
        assert!(!scope.playback_active());
    }

    #[test]
    fn playback_survives_partial_signal_removal() {
        let clock = Arc::new(VirtualClock::new());
        let mut scope = Scope::new("pb", 16, 100, clock);
        scope.set_period(TimeDelta::from_millis(50)).unwrap();
        scope
            .set_playback_mode(vec![
                Tuple::new(TimeStamp::ZERO, 1.0, "a"),
                Tuple::new(TimeStamp::ZERO, 10.0, "b"),
                Tuple::new(TimeStamp::from_millis(100), 2.0, "a"),
                Tuple::new(TimeStamp::from_millis(100), 20.0, "b"),
            ])
            .unwrap();
        scope.start();
        scope.tick(&tick_at(50));
        // Dropping "b" re-resolves the remaining tuples' slots; "a"
        // keeps its sample-and-hold value across the re-index.
        scope.remove_signal("b").unwrap();
        scope.tick(&tick_at(100));
        scope.tick(&tick_at(150));
        assert_eq!(
            scope.display_cols("a").to_vec(),
            vec![Some(1.0), Some(1.0), Some(2.0)]
        );
    }

    #[test]
    fn zoom_bias_validation_and_transform() {
        let (mut scope, _v) = scope_with_int(8);
        assert!(scope.set_zoom(0.0).is_err());
        assert!(scope.set_bias(2.0).is_err());
        scope.set_zoom(2.0).unwrap();
        scope.set_bias(-0.5).unwrap();
        let cfg = SigConfig::default(); // range 0..100
                                        // v=50 → norm 0.5 → 2*0.5 - 0.5 = 0.5.
        assert_eq!(scope.display_fraction(&cfg, 50.0), 0.5);
        // v=100 → 2*1 - 0.5 = 1.5 → clamped 1.0.
        assert_eq!(scope.display_fraction(&cfg, 100.0), 1.0);
    }

    #[test]
    fn trigger_aligns_display_window() {
        let (mut scope, v) = scope_with_int(8);
        // Sawtooth 0..3 twice, then partial.
        let vals = [0, 1, 2, 3, 0, 1, 2, 3, 0, 1];
        for (i, &x) in vals.iter().enumerate() {
            v.set(x);
            scope.tick(&tick_at(50 * (i as u64 + 1)));
        }
        scope.set_trigger("v", Trigger::rising(3.0)).unwrap();
        let w = scope.display_cols("v").to_vec();
        // Window ends at the most recent rising crossing of 3 (the
        // second "3", two columns before the end).
        assert_eq!(w.last(), Some(&Some(3.0)));
        scope.clear_trigger();
        assert_eq!(scope.display_cols("v").to_vec().last(), Some(&Some(1.0)));
    }

    #[test]
    fn display_accessors_agree() {
        let (mut scope, v) = scope_with_int(6);
        for (i, x) in [0, 1, 2, 3, 0, 1, 2, 3].into_iter().enumerate() {
            v.set(x);
            scope.tick(&tick_at(50 * (i as u64 + 1)));
        }
        scope.set_trigger("v", Trigger::rising(3.0)).unwrap();
        #[allow(deprecated)]
        let cloned = scope.display_window("v");
        assert_eq!(scope.display_cols("v").to_vec(), cloned);
        let via_closure = scope.with_display_window("v", |cols| cols.to_vec());
        assert_eq!(via_closure, cloned);
        assert!(scope.display_cols("nope").is_empty());
    }

    #[test]
    fn envelope_accumulates_over_ticks() {
        let (mut scope, v) = scope_with_int(4);
        scope.enable_envelope("v").unwrap();
        for (i, x) in [5, 9, 2, 7].into_iter().enumerate() {
            v.set(x);
            scope.tick(&tick_at(50 * (i as u64 + 1)));
        }
        let env = scope.envelope("v").unwrap();
        assert_eq!(env.sweeps(), 4);
        // Newest column saw values 5, 9, 2, 7 as the trace scrolled.
        assert_eq!(env.band(3), Some((2.0, 9.0)));
        scope.disable_envelope("v");
        assert!(scope.envelope("v").is_none());
    }

    #[test]
    fn attach_scope_drives_ticks_and_period_change() {
        let clock = VirtualClock::new();
        let mut ml = MainLoop::with_quantizer(Arc::new(clock.clone()), Quantizer::exact());
        let scope = {
            let mut s = Scope::new("att", 32, 100, Arc::new(clock.clone()));
            let v = IntVar::new(1);
            s.add_signal("v", v.into(), SigConfig::default()).unwrap();
            s.set_polling_mode(TimeDelta::from_millis(50)).unwrap();
            s.start();
            s.into_shared()
        };
        attach_scope(&scope, &mut ml);
        ml.run_until(TimeStamp::from_millis(260));
        assert_eq!(scope.lock().stats().ticks, 5);
        // Change the period: the source reinstalls at 10 ms.
        scope.lock().set_period(TimeDelta::from_millis(10)).unwrap();
        ml.run_until(TimeStamp::from_millis(500));
        let ticks = scope.lock().stats().ticks;
        assert!(
            ticks > 20,
            "faster period should add many ticks, got {ticks}"
        );
    }

    #[test]
    fn resize_preserves_newest_columns() {
        let (mut scope, v) = scope_with_int(10);
        for i in 0..10 {
            v.set(i);
            scope.tick(&tick_at(50 * (i as u64 + 1)));
        }
        scope.enable_envelope("v").unwrap();
        scope.tick(&tick_at(550));
        scope.set_size(4, 80).unwrap();
        assert_eq!(scope.width(), 4);
        let w = scope.display_cols("v").to_vec();
        assert_eq!(w.len(), 4, "history shrank to the new width");
        assert_eq!(w.last(), Some(&Some(9.0)), "newest column kept");
        assert_eq!(
            scope.envelope("v").unwrap().width(),
            4,
            "envelope restarted at the new width"
        );
        assert!(scope.set_size(0, 10).is_err());
        // Growing keeps data and allows longer histories.
        scope.set_size(16, 80).unwrap();
        scope.tick(&tick_at(600));
        assert_eq!(scope.display_cols("v").to_vec().len(), 5);
    }

    #[test]
    fn measurement_cursors() {
        let (mut scope, v) = scope_with_int(16);
        for i in 0..10 {
            v.set(i * 5);
            scope.tick(&tick_at(50 * (i as u64 + 1)));
        }
        // Cursors at columns 2 and 8: 6 periods apart, v 10 -> 40.
        let m = scope.measure("v", 2, 8).unwrap();
        assert_eq!(m.dt, TimeDelta::from_millis(300));
        assert_eq!(m.dv, 30.0);
        assert_eq!(m.min, 10.0);
        assert_eq!(m.max, 40.0);
        assert_eq!(m.samples, 7);
        assert!((m.mean - 25.0).abs() < 1e-9);
        // Reversed and clamped cursors work.
        assert_eq!(scope.measure("v", 8, 2).unwrap(), m);
        let clamped = scope.measure("v", 0, 999).unwrap();
        assert_eq!(clamped.dv, 45.0);
        // Errors.
        assert!(scope.measure("nope", 0, 1).is_err());
    }

    #[test]
    fn measurement_skips_gaps_via_nearest_value() {
        let clock = Arc::new(VirtualClock::new());
        let mut scope = Scope::new("m", 8, 60, clock);
        scope
            .add_signal("e", SigSource::Events, SigConfig::default())
            .unwrap();
        scope.set_polling_mode(TimeDelta::from_millis(50)).unwrap();
        scope.start();
        let sink = scope.event_sink("e").unwrap();
        // Tick 1 has an event; ticks 2-3 are quiet (hold); 4 has one.
        sink.push(7.0);
        scope.tick(&tick_at(50));
        scope.tick(&tick_at(100));
        scope.tick(&tick_at(150));
        sink.push(9.0);
        scope.tick(&tick_at(200));
        let m = scope.measure("e", 0, 3).unwrap();
        assert_eq!(m.dv, 2.0);
        assert_eq!(m.samples, 4, "hold fills the quiet ticks");
        // An all-gap prefix errors cleanly.
        let mut empty = Scope::new("x", 4, 60, Arc::new(VirtualClock::new()));
        empty
            .add_signal("q", SigSource::Buffer, SigConfig::default())
            .unwrap();
        empty.set_polling_mode(TimeDelta::from_millis(50)).unwrap();
        empty.start();
        empty.tick(&tick_at(50));
        assert!(empty.measure("q", 0, 0).is_err());
    }

    #[test]
    fn dump_tuples_exports_display_in_time_order() {
        let clock = VirtualClock::new();
        let mut scope = Scope::new("dump", 8, 100, Arc::new(clock.clone()));
        let v = IntVar::new(0);
        scope
            .add_signal("v", v.clone().into(), SigConfig::default())
            .unwrap();
        scope.set_polling_mode(TimeDelta::from_millis(50)).unwrap();
        scope.start();
        for i in 0..5 {
            v.set(i * 10);
            let t = TimeStamp::from_millis(50 * (i as u64 + 1));
            clock.set(t);
            scope.tick(&TickInfo {
                now: t,
                scheduled: t,
                missed: 0,
            });
        }
        let mut out = Vec::new();
        let n = scope.dump_tuples(&mut out).unwrap();
        assert_eq!(n, 5);
        let text = String::from_utf8(out.clone()).unwrap();
        // Round-trips through the reader, ordered, and replayable.
        let tuples = crate::tuple::TupleReader::new(out.as_slice())
            .read_all()
            .unwrap();
        assert_eq!(tuples.len(), 5);
        assert_eq!(tuples[0].value, 0.0);
        assert_eq!(tuples[4].value, 40.0);
        assert!(text.lines().all(|l| l.ends_with(" v")));
        // Newest column is stamped "now" (250 ms), oldest 4 periods
        // earlier.
        assert_eq!(tuples[4].time, TimeStamp::from_millis(250));
        assert_eq!(tuples[0].time, TimeStamp::from_millis(50));
    }

    #[test]
    fn value_readout_and_spectrum_errors() {
        let (mut scope, v) = scope_with_int(64);
        v.set(42);
        scope.tick(&tick_at(50));
        assert_eq!(scope.value_readout("v").unwrap(), Some(42.0));
        assert!(scope.value_readout("zz").is_err());
        assert!(scope.spectrum("v", 64, SpectrumConfig::default()).is_ok());
        assert!(scope.spectrum("v", 63, SpectrumConfig::default()).is_err());
        assert!(scope.spectrum("zz", 64, SpectrumConfig::default()).is_err());
    }
}
