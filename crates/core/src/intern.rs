//! Signal-name interning for the tuple hot paths.
//!
//! Every layer of the pipeline — recorder, network client/server,
//! playback, the scope-wide buffer — tags samples with a signal name.
//! A monitoring session uses a handful of distinct names but moves
//! millions of tuples, so storing a `String` per tuple means a heap
//! allocation (and later a free) per sample on the wire. Interning
//! collapses that to one shared `Arc<str>` per *distinct* name: cloning
//! the handle is a reference-count bump, equality on hot paths can
//! short-circuit on pointer identity, and parse/format loops run
//! allocation-free in steady state.
//!
//! The table is two-level: a thread-local cache serves repeat lookups
//! without synchronization (producer threads pushing into a
//! [`ScopeBuffer`](crate::ScopeBuffer) never contend with each other or
//! with the scope thread), backed by a global table that guarantees one
//! canonical `Arc<str>` per name process-wide.

use std::cell::RefCell;
use std::collections::HashSet;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::{Arc, Mutex, OnceLock};

/// FNV-1a. Signal names are short (a dozen bytes), so the repeat-lookup
/// cost in the thread-local cache is dominated by hashing; FNV beats
/// SipHash severalfold at these lengths. Only the local cache uses it —
/// the global table keeps the default DoS-resistant hasher, since names
/// can arrive from the network and the global table is off the hot
/// path (one miss per name per thread).
#[derive(Default)]
struct Fnv(u64);

impl Hasher for Fnv {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut h = if self.0 == 0 {
            0xcbf2_9ce4_8422_2325
        } else {
            self.0
        };
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.0 = h;
    }
}

fn global_table() -> &'static Mutex<HashSet<Arc<str>>> {
    static TABLE: OnceLock<Mutex<HashSet<Arc<str>>>> = OnceLock::new();
    TABLE.get_or_init(|| Mutex::new(HashSet::new()))
}

thread_local! {
    static LOCAL_TABLE: RefCell<HashSet<Arc<str>, BuildHasherDefault<Fnv>>> =
        RefCell::new(HashSet::default());
}

/// Returns the canonical shared handle for `name`.
///
/// The first call for a given name allocates once (plus a global-table
/// entry); every later call from any thread returns a clone of the same
/// `Arc<str>` — repeat lookups on the calling thread are lock-free.
///
/// # Examples
///
/// ```
/// use gscope::intern;
///
/// let a = intern("CWND");
/// let b = intern("CWND");
/// assert!(std::sync::Arc::ptr_eq(&a, &b));
/// ```
pub fn intern(name: &str) -> Arc<str> {
    LOCAL_TABLE.with(|local| {
        if let Some(hit) = local.borrow().get(name) {
            return Arc::clone(hit);
        }
        let canonical = intern_global(name);
        local.borrow_mut().insert(Arc::clone(&canonical));
        canonical
    })
}

fn intern_global(name: &str) -> Arc<str> {
    let mut table = global_table().lock().unwrap_or_else(|e| e.into_inner());
    if let Some(hit) = table.get(name) {
        return Arc::clone(hit);
    }
    let canonical: Arc<str> = Arc::from(name);
    table.insert(Arc::clone(&canonical));
    canonical
}

/// Number of distinct names interned process-wide so far.
///
/// Monitoring sessions use a bounded signal vocabulary, so this stays
/// small; a runaway value indicates a producer generating unbounded
/// unique names (which would also defeat interning's purpose).
pub fn interned_count() -> usize {
    global_table()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_shares_one_allocation() {
        let a = intern("intern-test-shared");
        let b = intern("intern-test-shared");
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(&*a, "intern-test-shared");
    }

    #[test]
    fn distinct_names_stay_distinct() {
        let a = intern("intern-test-x");
        let b = intern("intern-test-y");
        assert!(!Arc::ptr_eq(&a, &b));
        assert_ne!(a, b);
    }

    #[test]
    fn cross_thread_interning_is_canonical() {
        let here = intern("intern-test-cross");
        let there = std::thread::spawn(|| intern("intern-test-cross"))
            .join()
            .unwrap();
        assert!(
            Arc::ptr_eq(&here, &there),
            "threads must agree on the canonical handle"
        );
    }

    #[test]
    fn count_grows_with_new_names() {
        let before = interned_count();
        intern("intern-test-count-unique-name");
        assert!(interned_count() >= before);
        intern("intern-test-count-unique-name");
        // A repeat lookup adds nothing.
        let after = interned_count();
        intern("intern-test-count-unique-name");
        assert_eq!(interned_count(), after);
    }
}
