//! The textual tuple format (§3.3).
//!
//! Signal data is streamed, recorded, and replayed as text lines of
//! `time value name`, where `time` is milliseconds in non-decreasing
//! order. "As a special case, if there is only one signal, then the
//! third quantity may not exist" — name-less two-field tuples are
//! accepted and belong to whatever single signal the consumer expects.
//!
//! Extensions over the paper (documented, backwards-compatible): blank
//! lines and `#` comment lines are skipped when reading.
//!
//! # Hot-path codec
//!
//! The codec is written so that steady-state record/stream/replay does
//! **zero heap allocations per tuple**:
//!
//! * names are interned `Arc<str>` handles (see [`crate::intern`]), so
//!   a million tuples of `CWND` share one allocation;
//! * [`Tuple::write_line_into`] / [`write_tuple_line`] format into a
//!   caller-owned byte buffer (no intermediate `String`), and
//!   [`TupleWriter`] reuses one such buffer across writes;
//! * [`Tuple::parse_raw`] yields a [`RawTuple`] borrowing the input
//!   line, and [`TupleReader::next_raw`] exposes it streaming-style.
//!
//! The byte format emitted by the buffer writers is identical to the
//! historical `format!("{:.3} {} {}", ms, value, name)` encoding, so
//! recorded files and the wire protocol are unchanged.

use std::io::{BufRead, Write};
use std::sync::Arc;

use gel::TimeStamp;

use crate::error::{Result, ScopeError};
use crate::intern::intern;

/// One timestamped sample, optionally tagged with its signal name.
///
/// The name is an interned shared string: cloning a `Tuple` (or just
/// its name) is a reference-count bump, never a heap allocation.
#[derive(Clone, Debug, PartialEq)]
pub struct Tuple {
    /// Sample time.
    pub time: TimeStamp,
    /// Sample value.
    pub value: f64,
    /// Signal name; `None` in single-signal streams.
    pub name: Option<Arc<str>>,
}

/// A parsed tuple borrowing its name from the input line — the
/// allocation-free half of [`Tuple::parse_line`].
///
/// Network servers and replay loops parse into a `RawTuple` first and
/// only pay for interning ([`RawTuple::to_tuple`]) when the sample is
/// actually kept.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RawTuple<'a> {
    /// Sample time.
    pub time: TimeStamp,
    /// Sample value.
    pub value: f64,
    /// Borrowed signal name; `None` in single-signal streams.
    pub name: Option<&'a str>,
}

impl RawTuple<'_> {
    /// Converts to an owning [`Tuple`], interning the name (a hash
    /// lookup for already-seen names, no allocation).
    pub fn to_tuple(&self) -> Tuple {
        Tuple {
            time: self.time,
            value: self.value,
            name: self.name.map(intern),
        }
    }
}

impl Tuple {
    /// Creates a named tuple. The name is interned, so repeated
    /// construction with the same name does not allocate.
    pub fn new(time: TimeStamp, value: f64, name: impl AsRef<str>) -> Self {
        Tuple {
            time,
            value,
            name: Some(intern(name.as_ref())),
        }
    }

    /// Creates a named tuple from an already-interned handle (pure
    /// reference-count bump).
    pub fn with_interned(time: TimeStamp, value: f64, name: Arc<str>) -> Self {
        Tuple {
            time,
            value,
            name: Some(name),
        }
    }

    /// Creates a name-less tuple for single-signal streams.
    pub fn unnamed(time: TimeStamp, value: f64) -> Self {
        Tuple {
            time,
            value,
            name: None,
        }
    }

    /// Borrows the signal name, if any.
    pub fn name(&self) -> Option<&str> {
        self.name.as_deref()
    }

    /// Formats the tuple as one text line (no trailing newline).
    ///
    /// Times are written as fractional milliseconds with microsecond
    /// precision; values round-trip through `f64` formatting. This
    /// allocates a fresh `String`; hot paths should use
    /// [`Tuple::write_line_into`] instead.
    pub fn to_line(&self) -> String {
        let mut buf = Vec::with_capacity(32);
        self.write_line_into(&mut buf);
        String::from_utf8(buf).expect("tuple lines are ASCII")
    }

    /// Appends the tuple's text line (no trailing newline) to `buf`
    /// without allocating.
    pub fn write_line_into(&self, buf: &mut Vec<u8>) {
        write_tuple_line(buf, self.time, self.value, self.name.as_deref());
    }

    /// Parses one tuple from a text line.
    ///
    /// # Examples
    ///
    /// ```
    /// use gscope::Tuple;
    ///
    /// let t = Tuple::parse_line("1500.000 42.5 CWND", 1).unwrap();
    /// assert_eq!(t.time.as_millis(), 1500);
    /// assert_eq!(t.value, 42.5);
    /// assert_eq!(t.name(), Some("CWND"));
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`ScopeError::TupleParse`] (tagged with `line_no`) if the
    /// line does not have 2 or 3 whitespace-separated fields, the time or
    /// value is not a finite number, the time is negative, or the name is
    /// empty.
    pub fn parse_line(line: &str, line_no: usize) -> Result<Self> {
        Self::parse_raw(line, line_no).map(|raw| raw.to_tuple())
    }

    /// Parses one tuple from a text line without allocating: the name
    /// borrows from `line`. Same validation and errors as
    /// [`Tuple::parse_line`].
    ///
    /// # Errors
    ///
    /// See [`Tuple::parse_line`].
    pub fn parse_raw(line: &str, line_no: usize) -> Result<RawTuple<'_>> {
        let mut fields = line.split_whitespace();
        let time_s = fields.next().ok_or(ScopeError::TupleParse {
            line: line_no,
            reason: "empty line".into(),
        })?;
        let value_s = fields.next().ok_or(ScopeError::TupleParse {
            line: line_no,
            reason: "missing value field".into(),
        })?;
        let name = fields.next();
        if let Some(extra) = fields.next() {
            return Err(ScopeError::TupleParse {
                line: line_no,
                reason: format!("unexpected extra field {extra:?}"),
            });
        }
        let time_ms: f64 = time_s.parse().map_err(|_| ScopeError::TupleParse {
            line: line_no,
            reason: format!("bad time {time_s:?}"),
        })?;
        if !time_ms.is_finite() || time_ms < 0.0 {
            return Err(ScopeError::TupleParse {
                line: line_no,
                reason: format!("time {time_ms} must be finite and non-negative"),
            });
        }
        let value: f64 = value_s.parse().map_err(|_| ScopeError::TupleParse {
            line: line_no,
            reason: format!("bad value {value_s:?}"),
        })?;
        if !value.is_finite() {
            return Err(ScopeError::TupleParse {
                line: line_no,
                reason: format!("value {value} must be finite"),
            });
        }
        if let Some(n) = name {
            if n.is_empty() {
                return Err(ScopeError::TupleParse {
                    line: line_no,
                    reason: "empty signal name".into(),
                });
            }
        }
        Ok(RawTuple {
            time: TimeStamp::from_micros((time_ms * 1_000.0).round() as u64),
            value,
            name,
        })
    }
}

/// Appends one tuple line (no trailing newline) to `buf` without
/// allocating — the zero-copy encoder shared by [`TupleWriter`], the
/// recorder, and the network client.
///
/// The encoding is byte-identical to the historical
/// `format!("{:.3} {} {}", time_ms, value, name)` form: fractional
/// milliseconds with exactly three decimal places, then the value via
/// `f64` `Display` (which round-trips exactly), then the name.
pub fn write_tuple_line(buf: &mut Vec<u8>, time: TimeStamp, value: f64, name: Option<&str>) {
    write_millis(buf, time.as_micros());
    buf.push(b' ');
    // `Display` for f64 formats into a stack buffer — no heap use.
    let mut sink = VecSink(buf);
    let _ = write!(sink, "{value}");
    if let Some(name) = name {
        buf.push(b' ');
        buf.extend_from_slice(name.as_bytes());
    }
}

/// `io::Write` adapter so `write!` can format numbers straight into the
/// byte buffer (infallible).
struct VecSink<'a>(&'a mut Vec<u8>);

impl Write for VecSink<'_> {
    fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
        self.0.extend_from_slice(data);
        Ok(data.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Writes `micros` as fractional milliseconds with exactly three
/// decimal places (`1234567` → `1234.567`), matching `{:.3}` of the
/// same duration as `f64` milliseconds.
fn write_millis(buf: &mut Vec<u8>, micros: u64) {
    let ms = micros / 1_000;
    let frac = (micros % 1_000) as u32;
    write_u64(buf, ms);
    buf.push(b'.');
    buf.push(b'0' + (frac / 100) as u8);
    buf.push(b'0' + (frac / 10 % 10) as u8);
    buf.push(b'0' + (frac % 10) as u8);
}

/// Appends the decimal digits of `v` (no allocation, no fmt machinery).
fn write_u64(buf: &mut Vec<u8>, mut v: u64) {
    let mut digits = [0u8; 20];
    let mut i = digits.len();
    loop {
        i -= 1;
        digits[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    buf.extend_from_slice(&digits[i..]);
}

/// A pull-style producer of tuples — the reading half of the
/// pipeline's storage abstraction.
///
/// [`TupleReader`] (text files, sockets) and `gstore::StoreReader`
/// (the binary segment store) both implement it, so playback, `gtool`
/// and the network layer consume recordings without caring how they
/// are encoded on disk.
pub trait TupleSource {
    /// Produces the next tuple, or `Ok(None)` at end of stream.
    ///
    /// # Errors
    ///
    /// Implementation-defined decode/order/I/O errors.
    fn next_tuple(&mut self) -> Result<Option<Tuple>>;

    /// Drains the source into a vector.
    ///
    /// # Errors
    ///
    /// Propagates the first error from [`TupleSource::next_tuple`].
    fn collect_tuples(&mut self) -> Result<Vec<Tuple>> {
        let mut out = Vec::new();
        while let Some(t) = self.next_tuple()? {
            out.push(t);
        }
        Ok(out)
    }
}

/// A push-style consumer of tuples — the writing half of the
/// pipeline's storage abstraction.
///
/// [`TupleWriter`] (the §3.3 text format) and `gstore::Store` (the
/// binary segment store) both implement it; [`crate::Scope`] records
/// through a boxed `TupleSink`, so a scope can stream to a file, a
/// socket, or a crash-safe store with the same call.
pub trait TupleSink: Send {
    /// Consumes one tuple given as loose parts (the allocation-free
    /// recorder path).
    ///
    /// # Errors
    ///
    /// [`ScopeError::TupleOrder`] when `time` precedes the previous
    /// tuple, or implementation-defined encode/I/O errors.
    fn write_parts(&mut self, time: TimeStamp, value: f64, name: Option<&str>) -> Result<()>;

    /// Consumes one tuple.
    ///
    /// # Errors
    ///
    /// Same as [`TupleSink::write_parts`].
    fn write_tuple(&mut self, t: &Tuple) -> Result<()> {
        self.write_parts(t.time, t.value, t.name.as_deref())
    }

    /// Flushes buffered data to the underlying medium.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    fn flush(&mut self) -> Result<()>;

    /// Total bytes this sink has emitted so far (post-encoding), for
    /// telemetry.
    fn bytes_written(&self) -> u64;
}

/// Streaming tuple reader enforcing the format's time ordering.
pub struct TupleReader<R> {
    input: R,
    line_no: usize,
    last_time: Option<TimeStamp>,
    buf: String,
}

impl<R: BufRead> TupleReader<R> {
    /// Wraps a buffered reader.
    pub fn new(input: R) -> Self {
        TupleReader {
            input,
            line_no: 0,
            last_time: None,
            buf: String::new(),
        }
    }

    /// Reads the next tuple, skipping blank and `#` comment lines.
    ///
    /// Returns `Ok(None)` at end of input.
    ///
    /// # Errors
    ///
    /// Returns parse errors from [`Tuple::parse_line`], a
    /// [`ScopeError::TupleOrder`] if time decreases (§3.3 requires
    /// non-decreasing times), or I/O errors.
    pub fn next_tuple(&mut self) -> Result<Option<Tuple>> {
        Ok(self.next_raw()?.map(|raw| raw.to_tuple()))
    }

    /// Reads the next tuple as a [`RawTuple`] borrowing this reader's
    /// line buffer — the allocation-free streaming path.
    ///
    /// # Errors
    ///
    /// Same as [`TupleReader::next_tuple`].
    pub fn next_raw(&mut self) -> Result<Option<RawTuple<'_>>> {
        // The loop's borrows of `self.buf` must end before the return
        // value can borrow it, so the parsed fields are carried out of
        // the loop as plain values — the name as its byte span inside
        // `buf` — and the borrow is re-created from the span.
        let (time, value, name_span) = loop {
            self.buf.clear();
            let n = self.input.read_line(&mut self.buf)?;
            if n == 0 {
                return Ok(None);
            }
            self.line_no += 1;
            let line = self.buf.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let t = Tuple::parse_raw(line, self.line_no)?;
            if let Some(prev) = self.last_time {
                if t.time < prev {
                    return Err(ScopeError::TupleOrder {
                        line: self.line_no,
                        previous_ms: prev.as_millis_f64(),
                        found_ms: t.time.as_millis_f64(),
                    });
                }
            }
            self.last_time = Some(t.time);
            let base = self.buf.as_ptr() as usize;
            break (
                t.time,
                t.value,
                t.name.map(|n| {
                    let start = n.as_ptr() as usize - base;
                    (start, start + n.len())
                }),
            );
        };
        Ok(Some(RawTuple {
            time,
            value,
            name: name_span.map(|(start, end)| &self.buf[start..end]),
        }))
    }

    /// Reads all remaining tuples.
    ///
    /// # Errors
    ///
    /// Propagates the first error from [`TupleReader::next_tuple`].
    pub fn read_all(&mut self) -> Result<Vec<Tuple>> {
        let mut out = Vec::new();
        while let Some(t) = self.next_tuple()? {
            out.push(t);
        }
        Ok(out)
    }
}

/// Streaming tuple writer.
///
/// Reuses one internal line buffer across writes, so the steady-state
/// cost of a write is formatting plus the sink's `write_all` — no
/// allocations.
pub struct TupleWriter<W> {
    output: W,
    last_time: Option<TimeStamp>,
    bytes_written: u64,
    line_buf: Vec<u8>,
}

impl<W: Write> TupleWriter<W> {
    /// Wraps a writer.
    pub fn new(output: W) -> Self {
        TupleWriter {
            output,
            last_time: None,
            bytes_written: 0,
            line_buf: Vec::with_capacity(64),
        }
    }

    /// Total bytes emitted by [`TupleWriter::write_tuple`] so far
    /// (including newlines).
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Writes one tuple as a line.
    ///
    /// # Errors
    ///
    /// Returns [`ScopeError::TupleOrder`] if `t` precedes the previous
    /// tuple in time, or an I/O error.
    pub fn write_tuple(&mut self, t: &Tuple) -> Result<()> {
        self.write_parts(t.time, t.value, t.name.as_deref())
    }

    /// Writes one tuple given as loose parts, skipping `Tuple`
    /// construction entirely — the recorder and exporter hot path.
    ///
    /// # Errors
    ///
    /// Same as [`TupleWriter::write_tuple`].
    pub fn write_parts(&mut self, time: TimeStamp, value: f64, name: Option<&str>) -> Result<()> {
        if let Some(prev) = self.last_time {
            if time < prev {
                return Err(ScopeError::TupleOrder {
                    line: 0,
                    previous_ms: prev.as_millis_f64(),
                    found_ms: time.as_millis_f64(),
                });
            }
        }
        self.last_time = Some(time);
        self.line_buf.clear();
        write_tuple_line(&mut self.line_buf, time, value, name);
        self.line_buf.push(b'\n');
        self.output.write_all(&self.line_buf)?;
        self.bytes_written += self.line_buf.len() as u64;
        Ok(())
    }

    /// Flushes the underlying writer.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn flush(&mut self) -> Result<()> {
        self.output.flush()?;
        Ok(())
    }

    /// Consumes the writer, returning the inner sink.
    pub fn into_inner(self) -> W {
        self.output
    }
}

impl<R: BufRead> TupleSource for TupleReader<R> {
    fn next_tuple(&mut self) -> Result<Option<Tuple>> {
        TupleReader::next_tuple(self)
    }
}

impl<W: Write + Send> TupleSink for TupleWriter<W> {
    fn write_parts(&mut self, time: TimeStamp, value: f64, name: Option<&str>) -> Result<()> {
        TupleWriter::write_parts(self, time, value, name)
    }

    fn flush(&mut self) -> Result<()> {
        TupleWriter::flush(self)
    }

    fn bytes_written(&self) -> u64 {
        TupleWriter::bytes_written(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gel::TimeDelta;

    #[test]
    fn named_tuple_round_trips() {
        let t = Tuple::new(TimeStamp::from_millis(1500), 42.5, "CWND");
        let line = t.to_line();
        assert_eq!(line, "1500.000 42.5 CWND");
        assert_eq!(Tuple::parse_line(&line, 1).unwrap(), t);
    }

    #[test]
    fn unnamed_tuple_round_trips() {
        let t = Tuple::unnamed(TimeStamp::from_micros(1_234), -0.5);
        let line = t.to_line();
        assert_eq!(line, "1.234 -0.5");
        assert_eq!(Tuple::parse_line(&line, 1).unwrap(), t);
    }

    #[test]
    fn write_line_into_matches_legacy_format() {
        // The buffer encoder must be byte-identical to the historical
        // format!-based encoding for files and the wire protocol.
        for (us, value, name) in [
            (0u64, 0.0f64, Some("a")),
            (999, -0.125, None),
            (1_000, 1e-9, Some("sig.name_0")),
            (1_234_567, 123456.789, Some("x")),
            (50_000, -3.0, None),
            (u64::from(u32::MAX) * 1_000, 7.25, Some("big")),
        ] {
            let time = TimeStamp::from_micros(us);
            let legacy = match name {
                Some(n) => format!("{:.3} {} {}", time.as_millis_f64(), value, n),
                None => format!("{:.3} {}", time.as_millis_f64(), value),
            };
            let mut buf = Vec::new();
            write_tuple_line(&mut buf, time, value, name);
            assert_eq!(String::from_utf8(buf).unwrap(), legacy, "us={us}");
        }
    }

    #[test]
    fn parse_raw_borrows_and_matches_parse_line() {
        let line = "1500.000 42.5 CWND";
        let raw = Tuple::parse_raw(line, 1).unwrap();
        assert_eq!(raw.name, Some("CWND"));
        assert_eq!(raw.to_tuple(), Tuple::parse_line(line, 1).unwrap());
    }

    #[test]
    fn interned_names_share_storage() {
        let a = Tuple::new(TimeStamp::ZERO, 1.0, "shared-name");
        let b = Tuple::parse_line("5 2 shared-name", 1).unwrap();
        assert!(Arc::ptr_eq(
            a.name.as_ref().unwrap(),
            b.name.as_ref().unwrap()
        ));
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in [
            "",
            "100",
            "abc 1 x",
            "100 xyz n",
            "100 1 name extra",
            "-5 1 n",
            "nan 1 n",
            "100 inf n",
        ] {
            assert!(Tuple::parse_line(bad, 3).is_err(), "should reject {bad:?}");
            assert!(
                Tuple::parse_raw(bad, 3).is_err(),
                "raw should reject {bad:?}"
            );
        }
    }

    #[test]
    fn parse_error_carries_line_number() {
        let Err(ScopeError::TupleParse { line, .. }) = Tuple::parse_line("x", 17) else {
            panic!("expected parse error");
        };
        assert_eq!(line, 17);
    }

    #[test]
    fn reader_skips_blank_and_comments() {
        let data = "# gscope capture\n\n10 1 a\n  \n20 2 a\n";
        let mut r = TupleReader::new(data.as_bytes());
        let all = r.read_all().unwrap();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].time, TimeStamp::from_millis(10));
        assert_eq!(all[1].value, 2.0);
    }

    #[test]
    fn reader_next_raw_streams_without_owning() {
        let data = "10 1 a\n20 2 b\n";
        let mut r = TupleReader::new(data.as_bytes());
        let first = r.next_raw().unwrap().unwrap();
        assert_eq!((first.value, first.name), (1.0, Some("a")));
        let second = r.next_raw().unwrap().unwrap();
        assert_eq!((second.value, second.name), (2.0, Some("b")));
        assert!(r.next_raw().unwrap().is_none());
    }

    #[test]
    fn reader_enforces_time_order() {
        let data = "10 1 a\n5 2 a\n";
        let mut r = TupleReader::new(data.as_bytes());
        r.next_tuple().unwrap();
        let err = r.next_tuple().unwrap_err();
        assert!(matches!(err, ScopeError::TupleOrder { line: 2, .. }));
    }

    #[test]
    fn equal_times_are_allowed() {
        // Multiple signals may share a timestamp.
        let data = "10 1 a\n10 2 b\n10 3 c\n";
        let mut r = TupleReader::new(data.as_bytes());
        assert_eq!(r.read_all().unwrap().len(), 3);
    }

    #[test]
    fn writer_round_trips_through_reader() {
        let mut w = TupleWriter::new(Vec::new());
        let tuples: Vec<Tuple> = (0..10)
            .map(|i| {
                Tuple::new(
                    TimeStamp::from_millis(i * 50),
                    (i as f64) * 1.5 - 3.0,
                    format!("sig{}", i % 3),
                )
            })
            .collect();
        for t in &tuples {
            w.write_tuple(t).unwrap();
        }
        let counted = w.bytes_written();
        let bytes = w.into_inner();
        assert_eq!(counted, bytes.len() as u64);
        let mut r = TupleReader::new(bytes.as_slice());
        assert_eq!(r.read_all().unwrap(), tuples);
    }

    #[test]
    fn writer_rejects_backwards_time() {
        let mut w = TupleWriter::new(Vec::new());
        w.write_tuple(&Tuple::unnamed(TimeStamp::from_millis(100), 1.0))
            .unwrap();
        let err = w
            .write_tuple(&Tuple::unnamed(TimeStamp::from_millis(50), 2.0))
            .unwrap_err();
        assert!(matches!(err, ScopeError::TupleOrder { .. }));
        // write_parts enforces the same ordering.
        let err = w
            .write_parts(TimeStamp::from_millis(10), 1.0, Some("s"))
            .unwrap_err();
        assert!(matches!(err, ScopeError::TupleOrder { .. }));
    }

    #[test]
    fn sub_millisecond_precision_survives() {
        let t = Tuple::new(TimeStamp::from_micros(1_234_567), 9.75, "fine");
        let parsed = Tuple::parse_line(&t.to_line(), 1).unwrap();
        assert_eq!(parsed.time, t.time);
    }

    #[test]
    fn pixel_spacing_example_from_paper() {
        // §3.3: "if the polling period is 50 ms, then data points in the
        // file that are 100 ms apart will be displayed 2 pixels apart."
        let a = Tuple::parse_line("0 1 s", 1).unwrap();
        let b = Tuple::parse_line("100 2 s", 2).unwrap();
        let period = TimeDelta::from_millis(50);
        let pixels = (b.time - a.time).div_periods(period);
        assert_eq!(pixels, 2);
    }
}
