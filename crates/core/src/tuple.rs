//! The textual tuple format (§3.3).
//!
//! Signal data is streamed, recorded, and replayed as text lines of
//! `time value name`, where `time` is milliseconds in non-decreasing
//! order. "As a special case, if there is only one signal, then the
//! third quantity may not exist" — name-less two-field tuples are
//! accepted and belong to whatever single signal the consumer expects.
//!
//! Extensions over the paper (documented, backwards-compatible): blank
//! lines and `#` comment lines are skipped when reading.

use std::io::{BufRead, Write};

use gel::TimeStamp;

use crate::error::{Result, ScopeError};

/// One timestamped sample, optionally tagged with its signal name.
#[derive(Clone, Debug, PartialEq)]
pub struct Tuple {
    /// Sample time.
    pub time: TimeStamp,
    /// Sample value.
    pub value: f64,
    /// Signal name; `None` in single-signal streams.
    pub name: Option<String>,
}

impl Tuple {
    /// Creates a named tuple.
    pub fn new(time: TimeStamp, value: f64, name: impl Into<String>) -> Self {
        Tuple {
            time,
            value,
            name: Some(name.into()),
        }
    }

    /// Creates a name-less tuple for single-signal streams.
    pub fn unnamed(time: TimeStamp, value: f64) -> Self {
        Tuple {
            time,
            value,
            name: None,
        }
    }

    /// Formats the tuple as one text line (no trailing newline).
    ///
    /// Times are written as fractional milliseconds with microsecond
    /// precision; values round-trip through `f64` formatting.
    pub fn to_line(&self) -> String {
        match &self.name {
            Some(name) => format!("{:.3} {} {}", self.time.as_millis_f64(), self.value, name),
            None => format!("{:.3} {}", self.time.as_millis_f64(), self.value),
        }
    }

    /// Parses one tuple from a text line.
    ///
    /// # Examples
    ///
    /// ```
    /// use gscope::Tuple;
    ///
    /// let t = Tuple::parse_line("1500.000 42.5 CWND", 1).unwrap();
    /// assert_eq!(t.time.as_millis(), 1500);
    /// assert_eq!(t.value, 42.5);
    /// assert_eq!(t.name.as_deref(), Some("CWND"));
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`ScopeError::TupleParse`] (tagged with `line_no`) if the
    /// line does not have 2 or 3 whitespace-separated fields, the time or
    /// value is not a finite number, the time is negative, or the name is
    /// empty.
    pub fn parse_line(line: &str, line_no: usize) -> Result<Self> {
        let mut fields = line.split_whitespace();
        let time_s = fields.next().ok_or_else(|| ScopeError::TupleParse {
            line: line_no,
            reason: "empty line".into(),
        })?;
        let value_s = fields.next().ok_or_else(|| ScopeError::TupleParse {
            line: line_no,
            reason: "missing value field".into(),
        })?;
        let name = fields.next().map(str::to_owned);
        if let Some(extra) = fields.next() {
            return Err(ScopeError::TupleParse {
                line: line_no,
                reason: format!("unexpected extra field {extra:?}"),
            });
        }
        let time_ms: f64 = time_s.parse().map_err(|_| ScopeError::TupleParse {
            line: line_no,
            reason: format!("bad time {time_s:?}"),
        })?;
        if !time_ms.is_finite() || time_ms < 0.0 {
            return Err(ScopeError::TupleParse {
                line: line_no,
                reason: format!("time {time_ms} must be finite and non-negative"),
            });
        }
        let value: f64 = value_s.parse().map_err(|_| ScopeError::TupleParse {
            line: line_no,
            reason: format!("bad value {value_s:?}"),
        })?;
        if !value.is_finite() {
            return Err(ScopeError::TupleParse {
                line: line_no,
                reason: format!("value {value} must be finite"),
            });
        }
        if let Some(n) = &name {
            if n.is_empty() {
                return Err(ScopeError::TupleParse {
                    line: line_no,
                    reason: "empty signal name".into(),
                });
            }
        }
        Ok(Tuple {
            time: TimeStamp::from_micros((time_ms * 1_000.0).round() as u64),
            value,
            name,
        })
    }
}

/// Streaming tuple reader enforcing the format's time ordering.
pub struct TupleReader<R> {
    input: R,
    line_no: usize,
    last_time: Option<TimeStamp>,
    buf: String,
}

impl<R: BufRead> TupleReader<R> {
    /// Wraps a buffered reader.
    pub fn new(input: R) -> Self {
        TupleReader {
            input,
            line_no: 0,
            last_time: None,
            buf: String::new(),
        }
    }

    /// Reads the next tuple, skipping blank and `#` comment lines.
    ///
    /// Returns `Ok(None)` at end of input.
    ///
    /// # Errors
    ///
    /// Returns parse errors from [`Tuple::parse_line`], a
    /// [`ScopeError::TupleOrder`] if time decreases (§3.3 requires
    /// non-decreasing times), or I/O errors.
    pub fn next_tuple(&mut self) -> Result<Option<Tuple>> {
        loop {
            self.buf.clear();
            let n = self.input.read_line(&mut self.buf)?;
            if n == 0 {
                return Ok(None);
            }
            self.line_no += 1;
            let line = self.buf.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let t = Tuple::parse_line(line, self.line_no)?;
            if let Some(prev) = self.last_time {
                if t.time < prev {
                    return Err(ScopeError::TupleOrder {
                        line: self.line_no,
                        previous_ms: prev.as_millis_f64(),
                        found_ms: t.time.as_millis_f64(),
                    });
                }
            }
            self.last_time = Some(t.time);
            return Ok(Some(t));
        }
    }

    /// Reads all remaining tuples.
    ///
    /// # Errors
    ///
    /// Propagates the first error from [`TupleReader::next_tuple`].
    pub fn read_all(&mut self) -> Result<Vec<Tuple>> {
        let mut out = Vec::new();
        while let Some(t) = self.next_tuple()? {
            out.push(t);
        }
        Ok(out)
    }
}

/// Streaming tuple writer.
pub struct TupleWriter<W> {
    output: W,
    last_time: Option<TimeStamp>,
    bytes_written: u64,
}

impl<W: Write> TupleWriter<W> {
    /// Wraps a writer.
    pub fn new(output: W) -> Self {
        TupleWriter {
            output,
            last_time: None,
            bytes_written: 0,
        }
    }

    /// Total bytes emitted by [`TupleWriter::write_tuple`] so far
    /// (including newlines).
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Writes one tuple as a line.
    ///
    /// # Errors
    ///
    /// Returns [`ScopeError::TupleOrder`] if `t` precedes the previous
    /// tuple in time, or an I/O error.
    pub fn write_tuple(&mut self, t: &Tuple) -> Result<()> {
        if let Some(prev) = self.last_time {
            if t.time < prev {
                return Err(ScopeError::TupleOrder {
                    line: 0,
                    previous_ms: prev.as_millis_f64(),
                    found_ms: t.time.as_millis_f64(),
                });
            }
        }
        self.last_time = Some(t.time);
        let mut line = t.to_line();
        line.push('\n');
        self.output.write_all(line.as_bytes())?;
        self.bytes_written += line.len() as u64;
        Ok(())
    }

    /// Flushes the underlying writer.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn flush(&mut self) -> Result<()> {
        self.output.flush()?;
        Ok(())
    }

    /// Consumes the writer, returning the inner sink.
    pub fn into_inner(self) -> W {
        self.output
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gel::TimeDelta;

    #[test]
    fn named_tuple_round_trips() {
        let t = Tuple::new(TimeStamp::from_millis(1500), 42.5, "CWND");
        let line = t.to_line();
        assert_eq!(line, "1500.000 42.5 CWND");
        assert_eq!(Tuple::parse_line(&line, 1).unwrap(), t);
    }

    #[test]
    fn unnamed_tuple_round_trips() {
        let t = Tuple::unnamed(TimeStamp::from_micros(1_234), -0.5);
        let line = t.to_line();
        assert_eq!(line, "1.234 -0.5");
        assert_eq!(Tuple::parse_line(&line, 1).unwrap(), t);
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in [
            "",
            "100",
            "abc 1 x",
            "100 xyz n",
            "100 1 name extra",
            "-5 1 n",
            "nan 1 n",
            "100 inf n",
        ] {
            assert!(Tuple::parse_line(bad, 3).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn parse_error_carries_line_number() {
        let Err(ScopeError::TupleParse { line, .. }) = Tuple::parse_line("x", 17) else {
            panic!("expected parse error");
        };
        assert_eq!(line, 17);
    }

    #[test]
    fn reader_skips_blank_and_comments() {
        let data = "# gscope capture\n\n10 1 a\n  \n20 2 a\n";
        let mut r = TupleReader::new(data.as_bytes());
        let all = r.read_all().unwrap();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].time, TimeStamp::from_millis(10));
        assert_eq!(all[1].value, 2.0);
    }

    #[test]
    fn reader_enforces_time_order() {
        let data = "10 1 a\n5 2 a\n";
        let mut r = TupleReader::new(data.as_bytes());
        r.next_tuple().unwrap();
        let err = r.next_tuple().unwrap_err();
        assert!(matches!(err, ScopeError::TupleOrder { line: 2, .. }));
    }

    #[test]
    fn equal_times_are_allowed() {
        // Multiple signals may share a timestamp.
        let data = "10 1 a\n10 2 b\n10 3 c\n";
        let mut r = TupleReader::new(data.as_bytes());
        assert_eq!(r.read_all().unwrap().len(), 3);
    }

    #[test]
    fn writer_round_trips_through_reader() {
        let mut w = TupleWriter::new(Vec::new());
        let tuples: Vec<Tuple> = (0..10)
            .map(|i| {
                Tuple::new(
                    TimeStamp::from_millis(i * 50),
                    (i as f64) * 1.5 - 3.0,
                    format!("sig{}", i % 3),
                )
            })
            .collect();
        for t in &tuples {
            w.write_tuple(t).unwrap();
        }
        let counted = w.bytes_written();
        let bytes = w.into_inner();
        assert_eq!(counted, bytes.len() as u64);
        let mut r = TupleReader::new(bytes.as_slice());
        assert_eq!(r.read_all().unwrap(), tuples);
    }

    #[test]
    fn writer_rejects_backwards_time() {
        let mut w = TupleWriter::new(Vec::new());
        w.write_tuple(&Tuple::unnamed(TimeStamp::from_millis(100), 1.0))
            .unwrap();
        let err = w
            .write_tuple(&Tuple::unnamed(TimeStamp::from_millis(50), 2.0))
            .unwrap_err();
        assert!(matches!(err, ScopeError::TupleOrder { .. }));
    }

    #[test]
    fn sub_millisecond_precision_survives() {
        let t = Tuple::new(TimeStamp::from_micros(1_234_567), 9.75, "fine");
        let parsed = Tuple::parse_line(&t.to_line(), 1).unwrap();
        assert_eq!(parsed.time, t.time);
    }

    #[test]
    fn pixel_spacing_example_from_paper() {
        // §3.3: "if the polling period is 50 ms, then data points in the
        // file that are 100 ms apart will be displayed 2 pixels apart."
        let a = Tuple::parse_line("0 1 s", 1).unwrap();
        let b = Tuple::parse_line("100 2 s", 2).unwrap();
        let period = TimeDelta::from_millis(50);
        let pixels = (b.time - a.time).div_periods(period);
        assert_eq!(pixels, 2);
    }
}
