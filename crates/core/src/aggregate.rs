//! Event aggregation between polling intervals (§4.2).
//!
//! Event-driven signals (packet arrivals, connection errors, ...) can
//! fire many times — or not at all — between two scope ticks. Gscope
//! aggregates the events of each polling interval with one of the
//! functions below, each motivated in the paper with a network example:
//!
//! * **Maximum / Minimum** — e.g. max/min packet latency in the interval,
//! * **Sum** — e.g. bytes received,
//! * **Rate** — sum ÷ polling period, e.g. bandwidth in bytes/second,
//! * **Average** — sum ÷ number of events, e.g. bytes per packet,
//! * **Events** — number of events, e.g. packets,
//! * **AnyEvent** — did anything arrive at all,
//! * **SampleHold** — the last event value, held between events (§4.2's
//!   "Sample and Hold" technique).

use gel::TimeDelta;

use crate::history::Cols;

/// Reduces a display window to at most `width` per-pixel `(lo, hi)`
/// bands for drawing: when several samples land on one pixel column
/// (zoom-out, wide windows) the trace is painted from the bands, so
/// draw cost is bounded by pixel width instead of sample count.
///
/// Sample `i` of `n` maps to column `i * width / n` — the same
/// right-edge-biased partition SigViewer-style min/max decimation
/// uses, covering every sample exactly once. Columns whose samples are
/// all gaps (`None`) yield `None`. When `n <= width` each sample
/// becomes its own single-value band, so the result is always
/// `min(n, width)` columns.
///
/// # Examples
///
/// ```
/// use gscope::{decimate_minmax, Cols};
///
/// let samples: Vec<Option<f64>> =
///     [1.0, 5.0, 2.0, 4.0].iter().map(|&v| Some(v)).collect();
/// let bands = decimate_minmax(Cols::from_slices(&samples, &[]), 2);
/// assert_eq!(bands, vec![Some((1.0, 5.0)), Some((2.0, 4.0))]);
/// ```
pub fn decimate_minmax(samples: Cols<'_>, width: usize) -> Vec<Option<(f64, f64)>> {
    let n = samples.len();
    if width == 0 || n == 0 {
        return Vec::new();
    }
    let cols = n.min(width);
    let mut bands: Vec<Option<(f64, f64)>> = vec![None; cols];
    for (i, s) in samples.iter().enumerate() {
        let Some(v) = s else { continue };
        let b = i * cols / n;
        bands[b] = Some(match bands[b] {
            None => (v, v),
            Some((lo, hi)) => (lo.min(v), hi.max(v)),
        });
    }
    bands
}

/// How events within one polling interval reduce to a displayed sample.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Aggregation {
    /// Display the last event's value; hold it while no events arrive.
    #[default]
    SampleHold,
    /// Largest event value in the interval; holds when empty.
    Maximum,
    /// Smallest event value in the interval; holds when empty.
    Minimum,
    /// Sum of event values; 0 when empty.
    Sum,
    /// Sum divided by the polling period in seconds; 0 when empty.
    Rate,
    /// Sum divided by the event count; holds when empty.
    Average,
    /// Number of events; 0 when empty.
    Events,
    /// 1 if any event arrived, else 0.
    AnyEvent,
}

impl Aggregation {
    /// All aggregation modes, for UIs and sweeps.
    pub const ALL: [Aggregation; 8] = [
        Aggregation::SampleHold,
        Aggregation::Maximum,
        Aggregation::Minimum,
        Aggregation::Sum,
        Aggregation::Rate,
        Aggregation::Average,
        Aggregation::Events,
        Aggregation::AnyEvent,
    ];

    /// A short human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Aggregation::SampleHold => "hold",
            Aggregation::Maximum => "max",
            Aggregation::Minimum => "min",
            Aggregation::Sum => "sum",
            Aggregation::Rate => "rate",
            Aggregation::Average => "avg",
            Aggregation::Events => "events",
            Aggregation::AnyEvent => "any",
        }
    }

    /// True if empty intervals hold the previous output rather than
    /// reporting zero.
    pub fn holds_when_empty(self) -> bool {
        matches!(
            self,
            Aggregation::SampleHold
                | Aggregation::Maximum
                | Aggregation::Minimum
                | Aggregation::Average
        )
    }
}

/// Accumulates events for one polling interval and produces the
/// aggregated display sample at each tick.
///
/// # Examples
///
/// ```
/// use gel::TimeDelta;
/// use gscope::{Aggregation, EventAccumulator};
///
/// // §4.2's bandwidth example: Rate = bytes per second.
/// let mut acc = EventAccumulator::new(Aggregation::Rate);
/// acc.push(700.0);
/// acc.push(300.0);
/// let sample = acc.finish_interval(TimeDelta::from_millis(50)).unwrap();
/// assert_eq!(sample, 20_000.0, "1000 bytes / 50 ms = 20 kB/s");
/// ```
#[derive(Clone, Debug)]
pub struct EventAccumulator {
    aggregation: Aggregation,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    last: f64,
    /// Output of the previous non-empty interval, for hold semantics.
    held: Option<f64>,
    /// Total events ever pushed (statistics).
    total_events: u64,
}

impl EventAccumulator {
    /// Creates an accumulator with the given aggregation mode.
    pub fn new(aggregation: Aggregation) -> Self {
        EventAccumulator {
            aggregation,
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            last: 0.0,
            held: None,
            total_events: 0,
        }
    }

    /// Returns the aggregation mode.
    pub fn aggregation(&self) -> Aggregation {
        self.aggregation
    }

    /// Changes the aggregation mode, clearing held state.
    pub fn set_aggregation(&mut self, aggregation: Aggregation) {
        self.aggregation = aggregation;
        self.held = None;
        self.clear_interval();
    }

    /// Number of events pushed in the current (unfinished) interval.
    pub fn pending_events(&self) -> u64 {
        self.count
    }

    /// Total events pushed over the accumulator's lifetime.
    pub fn total_events(&self) -> u64 {
        self.total_events
    }

    fn clear_interval(&mut self) {
        self.count = 0;
        self.sum = 0.0;
        self.min = f64::INFINITY;
        self.max = f64::NEG_INFINITY;
    }

    /// Records one event value.
    pub fn push(&mut self, value: f64) {
        self.count += 1;
        self.total_events += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.last = value;
    }

    /// Closes the current interval and returns the display sample.
    ///
    /// `period` is the polling period (used by [`Aggregation::Rate`]).
    /// Returns `None` when a holding aggregation has never seen an event.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero and the aggregation is `Rate`.
    pub fn finish_interval(&mut self, period: TimeDelta) -> Option<f64> {
        let out = if self.count == 0 {
            match self.aggregation {
                a if a.holds_when_empty() => self.held,
                Aggregation::Sum | Aggregation::Rate | Aggregation::Events => Some(0.0),
                Aggregation::AnyEvent => Some(0.0),
                _ => unreachable!(),
            }
        } else {
            let v = match self.aggregation {
                Aggregation::SampleHold => self.last,
                Aggregation::Maximum => self.max,
                Aggregation::Minimum => self.min,
                Aggregation::Sum => self.sum,
                Aggregation::Rate => {
                    assert!(
                        !period.is_zero(),
                        "Rate aggregation requires a non-zero period"
                    );
                    self.sum / period.as_secs_f64()
                }
                Aggregation::Average => self.sum / self.count as f64,
                Aggregation::Events => self.count as f64,
                Aggregation::AnyEvent => 1.0,
            };
            self.held = Some(v);
            Some(v)
        };
        self.clear_interval();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PERIOD: TimeDelta = TimeDelta::from_millis(50);

    fn run(agg: Aggregation, events: &[f64]) -> Option<f64> {
        let mut acc = EventAccumulator::new(agg);
        for &e in events {
            acc.push(e);
        }
        acc.finish_interval(PERIOD)
    }

    #[test]
    fn aggregation_functions_match_paper_examples() {
        let events = [3.0, 1.0, 4.0, 1.0, 5.0];
        assert_eq!(run(Aggregation::Maximum, &events), Some(5.0));
        assert_eq!(run(Aggregation::Minimum, &events), Some(1.0));
        assert_eq!(run(Aggregation::Sum, &events), Some(14.0));
        assert_eq!(run(Aggregation::Average, &events), Some(2.8));
        assert_eq!(run(Aggregation::Events, &events), Some(5.0));
        assert_eq!(run(Aggregation::AnyEvent, &events), Some(1.0));
        assert_eq!(run(Aggregation::SampleHold, &events), Some(5.0));
        // Rate: 14 units per 50 ms interval = 280 units/second.
        assert_eq!(run(Aggregation::Rate, &events), Some(280.0));
    }

    #[test]
    fn empty_interval_zero_vs_hold() {
        assert_eq!(run(Aggregation::Sum, &[]), Some(0.0));
        assert_eq!(run(Aggregation::Rate, &[]), Some(0.0));
        assert_eq!(run(Aggregation::Events, &[]), Some(0.0));
        assert_eq!(run(Aggregation::AnyEvent, &[]), Some(0.0));
        assert_eq!(run(Aggregation::Maximum, &[]), None);
        assert_eq!(run(Aggregation::Minimum, &[]), None);
        assert_eq!(run(Aggregation::Average, &[]), None);
        assert_eq!(run(Aggregation::SampleHold, &[]), None);
    }

    #[test]
    fn holding_aggregations_hold_across_empty_intervals() {
        let mut acc = EventAccumulator::new(Aggregation::Maximum);
        acc.push(9.0);
        acc.push(2.0);
        assert_eq!(acc.finish_interval(PERIOD), Some(9.0));
        // Two quiet intervals: the max holds.
        assert_eq!(acc.finish_interval(PERIOD), Some(9.0));
        assert_eq!(acc.finish_interval(PERIOD), Some(9.0));
        acc.push(1.0);
        assert_eq!(acc.finish_interval(PERIOD), Some(1.0));
    }

    #[test]
    fn counting_aggregations_reset_each_interval() {
        let mut acc = EventAccumulator::new(Aggregation::Events);
        acc.push(1.0);
        acc.push(1.0);
        assert_eq!(acc.finish_interval(PERIOD), Some(2.0));
        assert_eq!(acc.finish_interval(PERIOD), Some(0.0));
        acc.push(1.0);
        assert_eq!(acc.finish_interval(PERIOD), Some(1.0));
    }

    #[test]
    fn sample_hold_tracks_last_event() {
        let mut acc = EventAccumulator::new(Aggregation::SampleHold);
        acc.push(10.0);
        acc.push(20.0);
        assert_eq!(acc.finish_interval(PERIOD), Some(20.0));
        assert_eq!(acc.finish_interval(PERIOD), Some(20.0), "held");
    }

    #[test]
    fn rate_scales_with_period() {
        let mut acc = EventAccumulator::new(Aggregation::Rate);
        acc.push(100.0);
        assert_eq!(
            acc.finish_interval(TimeDelta::from_millis(100)),
            Some(1000.0)
        );
        acc.push(100.0);
        assert_eq!(acc.finish_interval(TimeDelta::from_secs(1)), Some(100.0));
    }

    #[test]
    fn algebraic_relations() {
        // Sum = Average * Events, Rate * period = Sum, Max >= Min.
        let events = [2.5, -1.0, 7.75, 0.0, 3.25, 3.25];
        let sum = run(Aggregation::Sum, &events).unwrap();
        let avg = run(Aggregation::Average, &events).unwrap();
        let n = run(Aggregation::Events, &events).unwrap();
        let rate = run(Aggregation::Rate, &events).unwrap();
        let max = run(Aggregation::Maximum, &events).unwrap();
        let min = run(Aggregation::Minimum, &events).unwrap();
        assert!((sum - avg * n).abs() < 1e-12);
        assert!((rate * PERIOD.as_secs_f64() - sum).abs() < 1e-12);
        assert!(max >= min);
    }

    #[test]
    fn set_aggregation_clears_state() {
        let mut acc = EventAccumulator::new(Aggregation::Maximum);
        acc.push(100.0);
        acc.finish_interval(PERIOD);
        acc.set_aggregation(Aggregation::Minimum);
        assert_eq!(acc.finish_interval(PERIOD), None, "held state cleared");
        assert_eq!(acc.total_events(), 1, "lifetime stats survive");
    }

    fn cols_of(vals: &[Option<f64>]) -> Cols<'_> {
        Cols::from_slices(vals, &[])
    }

    #[test]
    fn decimate_partitions_all_samples() {
        // 10 samples into 4 columns: buckets of size 3,2,3,2
        // (i*4/10 = 0,0,0,1,1,2,2,2,3,3).
        let samples: Vec<Option<f64>> = (0..10).map(|i| Some(i as f64)).collect();
        let bands = decimate_minmax(cols_of(&samples), 4);
        assert_eq!(
            bands,
            vec![
                Some((0.0, 2.0)),
                Some((3.0, 4.0)),
                Some((5.0, 7.0)),
                Some((8.0, 9.0)),
            ]
        );
    }

    #[test]
    fn decimate_narrow_window_is_per_sample() {
        let samples = [Some(2.0), None, Some(-1.0)];
        let bands = decimate_minmax(cols_of(&samples), 10);
        assert_eq!(bands, vec![Some((2.0, 2.0)), None, Some((-1.0, -1.0))]);
    }

    #[test]
    fn decimate_gap_only_columns_are_none() {
        let samples = [Some(1.0), None, None, None, Some(5.0), Some(3.0)];
        let bands = decimate_minmax(cols_of(&samples), 3);
        assert_eq!(bands, vec![Some((1.0, 1.0)), None, Some((3.0, 5.0))]);
    }

    #[test]
    fn decimate_degenerate_inputs() {
        assert!(decimate_minmax(cols_of(&[]), 5).is_empty());
        assert!(decimate_minmax(cols_of(&[Some(1.0)]), 0).is_empty());
        // Everything lands in one column.
        let samples = [Some(4.0), Some(-2.0), Some(7.0)];
        assert_eq!(
            decimate_minmax(cols_of(&samples), 1),
            vec![Some((-2.0, 7.0))]
        );
    }

    #[test]
    fn decimate_preserves_extremes() {
        // Whatever the width, the global min/max must survive.
        let samples: Vec<Option<f64>> = (0..100).map(|i| Some(((i * 37) % 100) as f64)).collect();
        for width in [1, 3, 7, 50, 100, 200] {
            let bands = decimate_minmax(cols_of(&samples), width);
            let lo = bands
                .iter()
                .flatten()
                .map(|b| b.0)
                .fold(f64::INFINITY, f64::min);
            let hi = bands
                .iter()
                .flatten()
                .map(|b| b.1)
                .fold(f64::NEG_INFINITY, f64::max);
            assert_eq!((lo, hi), (0.0, 99.0), "width {width}");
            assert_eq!(bands.len(), width.min(100));
        }
    }

    #[test]
    fn pending_and_total_counts() {
        let mut acc = EventAccumulator::new(Aggregation::Sum);
        acc.push(1.0);
        acc.push(1.0);
        assert_eq!(acc.pending_events(), 2);
        acc.finish_interval(PERIOD);
        assert_eq!(acc.pending_events(), 0);
        assert_eq!(acc.total_events(), 2);
    }
}
