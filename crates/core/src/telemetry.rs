//! Scope-side telemetry: cached gtel handles, the stats → tuple
//! export trait, and the self-scoping adapter.
//!
//! **Self-scoping** is the observability counterpart of the paper's
//! §4.5 microbenchmarks: instead of measuring gscope's overhead
//! offline, [`metric_signal`] exposes any registry metric as a
//! [`SigSource::func`] signal, so a second scope can plot the first
//! scope's tick jitter, buffer depth, or poll latency *live*, with the
//! same machinery it uses for application signals.

use std::collections::HashMap;
use std::sync::Arc;

use gel::{LoopStats, TimeStamp};
use gtel::{Counter, Gauge, HistogramStat, LatencyHistogram, Registry};

use crate::source::SigSource;
use crate::tuple::Tuple;

/// Exposes registry metric `name` as a polled `FUNC` signal source.
///
/// Counters read as their running total, gauges as their value, and
/// histograms through `stat` (e.g. [`HistogramStat::P99`] of
/// `gel.tick.jitter_ns` to watch the event loop's own jitter).
/// Returns `None` if `name` is not registered yet.
pub fn metric_signal(registry: &Registry, name: &str, stat: HistogramStat) -> Option<SigSource> {
    registry.sampler(name, stat).map(SigSource::func)
}

/// Common export shape for the stack's stats structs: render the
/// counters as §3.3 tuples stamped `now`, ready for recording,
/// streaming, or replay into a scope.
pub trait StatsExport {
    /// One tuple per counter, named `<prefix>.<field>`.
    fn to_tuples(&self, now: TimeStamp) -> Vec<Tuple>;
}

/// Exports several stats structs with one shared timestamp.
///
/// Calling `to_tuples` per struct stamps each call with its own clock
/// reading, so a multi-struct export carries skewed timestamps; this
/// captures `now` once and stamps every tuple with it, which is what
/// the flight recorder and `gtool stats --json` need for a coherent
/// snapshot.
pub fn export_stats(now: TimeStamp, stats: &[&dyn StatsExport]) -> Vec<Tuple> {
    let mut out = Vec::new();
    for s in stats {
        out.extend(s.to_tuples(now));
    }
    out
}

impl StatsExport for LoopStats {
    fn to_tuples(&self, now: TimeStamp) -> Vec<Tuple> {
        vec![
            Tuple::new(now, self.iterations as f64, "loop.iterations"),
            Tuple::new(
                now,
                self.timeouts_dispatched as f64,
                "loop.timeouts_dispatched",
            ),
            Tuple::new(now, self.ticks_missed as f64, "loop.ticks_missed"),
            Tuple::new(now, self.io_dispatches as f64, "loop.io_dispatches"),
            Tuple::new(now, self.io_idle_polls as f64, "loop.io_idle_polls"),
            Tuple::new(now, self.idle_runs as f64, "loop.idle_runs"),
            Tuple::new(now, self.invokes as f64, "loop.invokes"),
        ]
    }
}

/// Cached metric handles for one [`Scope`](crate::scope::Scope).
#[derive(Debug)]
pub struct ScopeTelemetry {
    registry: Arc<Registry>,
    /// `scope.ticks` — polling/playback ticks processed.
    pub ticks: Arc<Counter>,
    /// `scope.ticks.missed` — whole periods lost to scheduling.
    pub ticks_missed: Arc<Counter>,
    /// `scope.tick.poll_ns` — wall time of one full poll tick.
    pub poll_ns: Arc<LatencyHistogram>,
    /// `scope.buffer.depth` — buffered samples awaiting drain.
    pub buffer_depth: Arc<Gauge>,
    /// `scope.buffer.late_drops` — samples rejected as too old.
    pub late_drops: Arc<Counter>,
    /// `scope.record.write_ns` — recorder write latency per tick.
    pub record_write_ns: Arc<LatencyHistogram>,
    /// `scope.record.bytes` — bytes emitted by the recorder.
    pub record_bytes: Arc<Counter>,
    /// `scope.record.errors` — recordings stopped by write errors.
    pub record_errors: Arc<Counter>,
    /// Per-signal poll-duration histograms, resolved on first use as
    /// `scope.signal.<name>.poll_ns`.
    signal_poll: HashMap<String, Arc<LatencyHistogram>>,
    /// Late-drop total already folded into the counter.
    late_drops_seen: u64,
}

impl ScopeTelemetry {
    /// Resolves handles in `registry`.
    pub fn new(registry: Arc<Registry>) -> Self {
        ScopeTelemetry {
            ticks: registry.counter("scope.ticks"),
            ticks_missed: registry.counter("scope.ticks.missed"),
            poll_ns: registry.histogram("scope.tick.poll_ns"),
            buffer_depth: registry.gauge("scope.buffer.depth"),
            late_drops: registry.counter("scope.buffer.late_drops"),
            record_write_ns: registry.histogram("scope.record.write_ns"),
            record_bytes: registry.counter("scope.record.bytes"),
            record_errors: registry.counter("scope.record.errors"),
            signal_poll: HashMap::new(),
            late_drops_seen: 0,
            registry,
        }
    }

    /// The registry the handles live in.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The poll-duration histogram for signal `name`, resolving (and
    /// caching) the handle on first use.
    pub fn signal_poll_ns(&mut self, name: &str) -> &Arc<LatencyHistogram> {
        if !self.signal_poll.contains_key(name) {
            let h = self
                .registry
                .histogram(&format!("scope.signal.{name}.poll_ns"));
            self.signal_poll.insert(name.to_owned(), h);
        }
        &self.signal_poll[name]
    }

    /// Folds the buffer's cumulative late-drop count into the
    /// `scope.buffer.late_drops` counter (the buffer counts since
    /// creation; the counter must only advance by the delta).
    pub fn sync_late_drops(&mut self, buffer_total: u64) {
        let delta = buffer_total.saturating_sub(self.late_drops_seen);
        if delta > 0 {
            self.late_drops.add(delta);
            self.late_drops_seen = buffer_total;
        }
    }
}

impl Default for ScopeTelemetry {
    fn default() -> Self {
        ScopeTelemetry::new(Registry::shared())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loop_stats_export_shape() {
        let stats = LoopStats {
            iterations: 10,
            timeouts_dispatched: 6,
            ticks_missed: 2,
            io_dispatches: 1,
            io_idle_polls: 3,
            idle_runs: 0,
            invokes: 4,
        };
        let now = TimeStamp::from_millis(500);
        let tuples = stats.to_tuples(now);
        assert_eq!(tuples.len(), 7);
        assert!(tuples.iter().all(|t| t.time == now));
        let missed = tuples
            .iter()
            .find(|t| t.name.as_deref() == Some("loop.ticks_missed"))
            .expect("field exported");
        assert_eq!(missed.value, 2.0);
    }

    #[test]
    fn export_stats_shares_one_timestamp() {
        let a = LoopStats {
            iterations: 1,
            ..LoopStats::default()
        };
        let b = LoopStats {
            iterations: 2,
            ..LoopStats::default()
        };
        let now = TimeStamp::from_millis(777);
        let tuples = export_stats(now, &[&a, &b]);
        assert_eq!(tuples.len(), 14);
        assert!(tuples.iter().all(|t| t.time == now));
    }

    #[test]
    fn metric_signal_samples_registry() {
        let reg = Registry::new();
        let g = reg.gauge("scope.buffer.depth");
        g.set(12.0);
        let mut src =
            metric_signal(&reg, "scope.buffer.depth", HistogramStat::Mean).expect("registered");
        assert_eq!(src.type_name(), "FUNC");
        assert_eq!(src.sample(), Some(12.0));
        g.set(3.0);
        assert_eq!(src.sample(), Some(3.0));
        assert!(metric_signal(&reg, "absent", HistogramStat::Mean).is_none());
    }

    #[test]
    fn late_drop_sync_is_delta_based() {
        let mut tel = ScopeTelemetry::default();
        tel.sync_late_drops(3);
        tel.sync_late_drops(3);
        tel.sync_late_drops(7);
        assert_eq!(tel.late_drops.get(), 7);
    }

    #[test]
    fn signal_histograms_are_cached_per_name() {
        let mut tel = ScopeTelemetry::default();
        tel.signal_poll_ns("cwnd").record(10);
        tel.signal_poll_ns("cwnd").record(20);
        tel.signal_poll_ns("rtt").record(30);
        assert_eq!(tel.signal_poll_ns("cwnd").count(), 2);
        assert_eq!(
            tel.registry().histogram("scope.signal.rtt.poll_ns").count(),
            1
        );
    }
}
