//! Signal data sources — the `GtkScopeSigData` union (§3.1).
//!
//! A signal's type "determines how signals are sampled": the scalar
//! types poll a shared variable, `FUNC` invokes an application function,
//! and `BUFFER` marks the signal as fed from the scope-wide buffer
//! (timestamped samples pushed by the application, displayed with a
//! delay).

use std::fmt;

use crate::value::{BoolVar, FloatVar, IntVar, ShortVar};

/// Where a signal's samples come from.
pub enum SigSource {
    /// Poll an [`IntVar`] (`INTEGER`).
    Int(IntVar),
    /// Poll a [`ShortVar`] (`SHORT`).
    Short(ShortVar),
    /// Poll a [`BoolVar`] (`BOOLEAN`), displayed as 0/1.
    Bool(BoolVar),
    /// Poll a [`FloatVar`] (`FLOAT`).
    Float(FloatVar),
    /// Call a function each tick (`FUNC`).
    ///
    /// The paper's `FUNC` takes two user arguments; a Rust closure
    /// captures them instead (e.g. the `get_cwnd(fd)` example becomes a
    /// closure capturing the socket handle).
    Func(Box<dyn FnMut() -> f64 + Send>),
    /// Samples arrive through the scope-wide buffer with timestamps
    /// (`BUFFER`); the scope drains them with a display delay.
    Buffer,
    /// Samples arrive as untimestamped events pushed through an
    /// [`EventSink`](crate::signal::EventSink) and are reduced by the
    /// signal's aggregation each polling interval (§4.2 "Event
    /// Aggregation").
    Events,
}

impl SigSource {
    /// Builds a `FUNC` source from a closure.
    pub fn func<F>(f: F) -> Self
    where
        F: FnMut() -> f64 + Send + 'static,
    {
        SigSource::Func(Box::new(f))
    }

    /// Samples the source once.
    ///
    /// Returns `None` for [`SigSource::Buffer`] and [`SigSource::Events`],
    /// whose data does not come from polling.
    pub fn sample(&mut self) -> Option<f64> {
        match self {
            SigSource::Int(v) => Some(v.get() as f64),
            SigSource::Short(v) => Some(f64::from(v.get())),
            SigSource::Bool(v) => Some(if v.get() { 1.0 } else { 0.0 }),
            SigSource::Float(v) => Some(v.get()),
            SigSource::Func(f) => Some(f()),
            SigSource::Buffer | SigSource::Events => None,
        }
    }

    /// True if this is a buffered source.
    pub fn is_buffered(&self) -> bool {
        matches!(self, SigSource::Buffer)
    }

    /// The paper's type-tag name (`Events` is this implementation's
    /// extension).
    pub fn type_name(&self) -> &'static str {
        match self {
            SigSource::Int(_) => "INTEGER",
            SigSource::Short(_) => "SHORT",
            SigSource::Bool(_) => "BOOLEAN",
            SigSource::Float(_) => "FLOAT",
            SigSource::Func(_) => "FUNC",
            SigSource::Buffer => "BUFFER",
            SigSource::Events => "EVENTS",
        }
    }
}

impl fmt::Debug for SigSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SigSource::{}", self.type_name())
    }
}

impl From<IntVar> for SigSource {
    fn from(v: IntVar) -> Self {
        SigSource::Int(v)
    }
}

impl From<ShortVar> for SigSource {
    fn from(v: ShortVar) -> Self {
        SigSource::Short(v)
    }
}

impl From<BoolVar> for SigSource {
    fn from(v: BoolVar) -> Self {
        SigSource::Bool(v)
    }
}

impl From<FloatVar> for SigSource {
    fn from(v: FloatVar) -> Self {
        SigSource::Float(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_sources_sample_current_value() {
        let iv = IntVar::new(7);
        let mut s: SigSource = iv.clone().into();
        assert_eq!(s.sample(), Some(7.0));
        iv.set(-2);
        assert_eq!(s.sample(), Some(-2.0));

        let bv = BoolVar::new(true);
        let mut s: SigSource = bv.clone().into();
        assert_eq!(s.sample(), Some(1.0));
        bv.set(false);
        assert_eq!(s.sample(), Some(0.0));

        let fv = FloatVar::new(1.25);
        let mut s: SigSource = fv.into();
        assert_eq!(s.sample(), Some(1.25));

        let sv = ShortVar::new(-300);
        let mut s: SigSource = sv.into();
        assert_eq!(s.sample(), Some(-300.0));
    }

    #[test]
    fn func_source_calls_closure_with_captured_state() {
        // The paper's get_cwnd(fd) idiom: the closure captures "fd".
        let fd = 42;
        let mut calls = 0;
        let mut s = SigSource::func(move || {
            calls += 1;
            (fd + calls) as f64
        });
        assert_eq!(s.sample(), Some(43.0));
        assert_eq!(s.sample(), Some(44.0));
        assert_eq!(s.type_name(), "FUNC");
    }

    #[test]
    fn buffer_source_does_not_poll() {
        let mut s = SigSource::Buffer;
        assert_eq!(s.sample(), None);
        assert!(s.is_buffered());
        assert_eq!(format!("{s:?}"), "SigSource::BUFFER");
    }

    #[test]
    fn type_names_match_paper() {
        assert_eq!(SigSource::from(IntVar::new(0)).type_name(), "INTEGER");
        assert_eq!(SigSource::from(ShortVar::new(0)).type_name(), "SHORT");
        assert_eq!(SigSource::from(BoolVar::new(false)).type_name(), "BOOLEAN");
        assert_eq!(SigSource::from(FloatVar::new(0.0)).type_name(), "FLOAT");
    }
}
