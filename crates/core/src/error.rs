//! Error types for the gscope library.

use std::fmt;

/// Errors returned by the gscope public API.
#[derive(Debug)]
pub enum ScopeError {
    /// A signal with this name is already registered on the scope.
    DuplicateSignal(String),
    /// No signal with this name exists on the scope.
    UnknownSignal(String),
    /// A parameter with this name is already registered.
    DuplicateParameter(String),
    /// No parameter with this name exists.
    UnknownParameter(String),
    /// A numeric argument was outside its legal range.
    OutOfRange {
        /// What was being set.
        what: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A tuple line could not be parsed.
    TupleParse {
        /// 1-based line number within the input.
        line: usize,
        /// Description of the problem.
        reason: String,
    },
    /// Tuples were not in non-decreasing time order (§3.3).
    TupleOrder {
        /// 1-based line number of the out-of-order tuple.
        line: usize,
        /// Previous timestamp in milliseconds.
        previous_ms: f64,
        /// Offending timestamp in milliseconds.
        found_ms: f64,
    },
    /// The operation requires a mode the scope is not in.
    WrongMode {
        /// The operation attempted.
        operation: &'static str,
        /// The mode the scope is in.
        mode: &'static str,
    },
    /// Setting a parameter to an incompatible value type.
    TypeMismatch {
        /// Parameter name.
        name: String,
        /// Expected type name.
        expected: &'static str,
    },
    /// Underlying I/O failure (recording, playback).
    Io(std::io::Error),
}

impl fmt::Display for ScopeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScopeError::DuplicateSignal(n) => write!(f, "signal {n:?} already exists"),
            ScopeError::UnknownSignal(n) => write!(f, "no signal named {n:?}"),
            ScopeError::DuplicateParameter(n) => write!(f, "parameter {n:?} already exists"),
            ScopeError::UnknownParameter(n) => write!(f, "no parameter named {n:?}"),
            ScopeError::OutOfRange { what, value } => {
                write!(f, "{what} value {value} out of range")
            }
            ScopeError::TupleParse { line, reason } => {
                write!(f, "tuple parse error at line {line}: {reason}")
            }
            ScopeError::TupleOrder {
                line,
                previous_ms,
                found_ms,
            } => write!(
                f,
                "tuple at line {line} goes back in time ({found_ms} ms after {previous_ms} ms)"
            ),
            ScopeError::WrongMode { operation, mode } => {
                write!(f, "cannot {operation} while in {mode} mode")
            }
            ScopeError::TypeMismatch { name, expected } => {
                write!(f, "parameter {name:?} expects a {expected} value")
            }
            ScopeError::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for ScopeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ScopeError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ScopeError {
    fn from(e: std::io::Error) -> Self {
        ScopeError::Io(e)
    }
}

/// Convenience alias for gscope results.
pub type Result<T> = std::result::Result<T, ScopeError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = ScopeError::UnknownSignal("CWND".into());
        assert!(e.to_string().contains("CWND"));
        let e = ScopeError::TupleOrder {
            line: 7,
            previous_ms: 100.0,
            found_ms: 50.0,
        };
        let s = e.to_string();
        assert!(s.contains("line 7") && s.contains("100") && s.contains("50"));
    }

    #[test]
    fn io_error_converts_and_chains() {
        let ioe = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: ScopeError = ioe.into();
        assert!(std::error::Error::source(&e).is_some());
    }
}
