//! Per-signal display configuration — the optional fields of
//! `GtkScopeSig` (§3.1): "the color of the signal, the minimum and
//! maximum value of the signal displayed (for default zoom and bias
//! values), the line mode in which the signal is displayed, whether the
//! signal is hidden or visible, and a parameter α for low-pass filtering
//! the signal."

use crate::aggregate::Aggregation;
use crate::error::{Result, ScopeError};

/// An RGB color (the canvas is 24-bit).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Color {
    /// Red component.
    pub r: u8,
    /// Green component.
    pub g: u8,
    /// Blue component.
    pub b: u8,
}

impl Color {
    /// Creates a color from components.
    pub const fn new(r: u8, g: u8, b: u8) -> Self {
        Color { r, g, b }
    }

    /// Canvas background.
    pub const BLACK: Color = Color::new(0, 0, 0);
    /// Grid and text.
    pub const WHITE: Color = Color::new(255, 255, 255);
    /// Default trace palette entry 0.
    pub const GREEN: Color = Color::new(0, 230, 64);
    /// Default trace palette entry 1.
    pub const YELLOW: Color = Color::new(240, 220, 40);
    /// Default trace palette entry 2.
    pub const CYAN: Color = Color::new(60, 200, 230);
    /// Default trace palette entry 3.
    pub const MAGENTA: Color = Color::new(230, 80, 230);
    /// Default trace palette entry 4.
    pub const RED: Color = Color::new(235, 60, 60);
    /// Default trace palette entry 5.
    pub const ORANGE: Color = Color::new(245, 150, 40);
    /// Default trace palette entry 6.
    pub const BLUE: Color = Color::new(90, 120, 250);
    /// Default trace palette entry 7.
    pub const GRAY: Color = Color::new(160, 160, 160);

    /// The default signal color cycle, indexed modulo its length — an
    /// oscilloscope-phosphor-inspired palette on black.
    pub const PALETTE: [Color; 8] = [
        Color::GREEN,
        Color::YELLOW,
        Color::CYAN,
        Color::MAGENTA,
        Color::RED,
        Color::ORANGE,
        Color::BLUE,
        Color::GRAY,
    ];

    /// Returns palette entry `i` (wrapping).
    pub const fn palette(i: usize) -> Color {
        Color::PALETTE[i % Color::PALETTE.len()]
    }
}

/// How a trace is drawn.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum LineMode {
    /// Connect successive samples with line segments.
    #[default]
    Line,
    /// One dot per sample.
    Points,
    /// Horizontal run then vertical step (sample-and-hold shape).
    Step,
    /// Vertical bar from 0 to the sample (event counts).
    Bars,
}

impl LineMode {
    /// All line modes, for UIs.
    pub const ALL: [LineMode; 4] = [
        LineMode::Line,
        LineMode::Points,
        LineMode::Step,
        LineMode::Bars,
    ];

    /// A short human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            LineMode::Line => "line",
            LineMode::Points => "points",
            LineMode::Step => "step",
            LineMode::Bars => "bars",
        }
    }
}

/// Display configuration for one signal (the optional `GtkScopeSig`
/// fields, §3.1, plus the §4.2 aggregation choice).
#[derive(Clone, Debug)]
pub struct SigConfig {
    /// Trace color; `None` picks the next palette entry automatically.
    pub color: Option<Color>,
    /// Value displayed at the bottom of the canvas at default zoom/bias.
    pub min: f64,
    /// Value displayed at the top of the canvas at default zoom/bias.
    pub max: f64,
    /// Trace drawing style.
    pub line: LineMode,
    /// Hidden signals are sampled but not drawn (left-click on the
    /// signal name toggles this, §2).
    pub hidden: bool,
    /// Low-pass filter coefficient α ∈ [0, 1]; 0 disables (§3.1).
    pub filter_alpha: f64,
    /// Event aggregation between polling intervals (§4.2).
    pub aggregation: Aggregation,
    /// The Value button: continuously display the numeric value (§2).
    pub show_value: bool,
}

impl Default for SigConfig {
    /// Paper defaults: y range matches the 0–100 y ruler, unfiltered,
    /// visible, line mode.
    fn default() -> Self {
        SigConfig {
            color: None,
            min: 0.0,
            max: 100.0,
            line: LineMode::Line,
            hidden: false,
            filter_alpha: 0.0,
            aggregation: Aggregation::SampleHold,
            show_value: false,
        }
    }
}

impl SigConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ScopeError::OutOfRange`] if α is outside `[0, 1]` or
    /// the min/max range is empty or not finite.
    pub fn validate(&self) -> Result<()> {
        if !self.filter_alpha.is_finite() || !(0.0..=1.0).contains(&self.filter_alpha) {
            return Err(ScopeError::OutOfRange {
                what: "filter alpha",
                value: self.filter_alpha,
            });
        }
        if !self.min.is_finite() || !self.max.is_finite() || self.min >= self.max {
            return Err(ScopeError::OutOfRange {
                what: "signal min/max",
                value: self.min,
            });
        }
        Ok(())
    }

    /// Sets the color.
    pub fn with_color(mut self, c: Color) -> Self {
        self.color = Some(c);
        self
    }

    /// Sets the displayed range.
    pub fn with_range(mut self, min: f64, max: f64) -> Self {
        self.min = min;
        self.max = max;
        self
    }

    /// Sets the line mode.
    pub fn with_line(mut self, line: LineMode) -> Self {
        self.line = line;
        self
    }

    /// Sets hidden.
    pub fn with_hidden(mut self, hidden: bool) -> Self {
        self.hidden = hidden;
        self
    }

    /// Sets the filter α.
    pub fn with_filter(mut self, alpha: f64) -> Self {
        self.filter_alpha = alpha;
        self
    }

    /// Sets the aggregation mode.
    pub fn with_aggregation(mut self, aggregation: Aggregation) -> Self {
        self.aggregation = aggregation;
        self
    }

    /// Sets the Value-button state.
    pub fn with_show_value(mut self, show: bool) -> Self {
        self.show_value = show;
        self
    }

    /// Maps a raw value to the normalized display fraction in `[0, 1]`
    /// before zoom/bias (0 = bottom of canvas, 1 = top), clamped.
    pub fn normalize(&self, v: f64) -> f64 {
        ((v - self.min) / (self.max - self.min)).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = SigConfig::default();
        assert_eq!(c.min, 0.0);
        assert_eq!(c.max, 100.0);
        assert_eq!(c.filter_alpha, 0.0, "default alpha is zero (§3.1)");
        assert!(!c.hidden);
        assert_eq!(c.line, LineMode::Line);
        c.validate().unwrap();
    }

    #[test]
    fn builder_chains() {
        let c = SigConfig::default()
            .with_color(Color::RED)
            .with_range(-1.0, 1.0)
            .with_line(LineMode::Step)
            .with_filter(0.5)
            .with_aggregation(Aggregation::Rate)
            .with_show_value(true)
            .with_hidden(true);
        assert_eq!(c.color, Some(Color::RED));
        assert_eq!((c.min, c.max), (-1.0, 1.0));
        assert!(c.hidden && c.show_value);
        c.validate().unwrap();
    }

    #[test]
    fn validation_rejects_bad_values() {
        assert!(SigConfig::default().with_filter(1.5).validate().is_err());
        assert!(SigConfig::default().with_filter(-0.1).validate().is_err());
        assert!(SigConfig::default()
            .with_range(5.0, 5.0)
            .validate()
            .is_err());
        assert!(SigConfig::default()
            .with_range(10.0, -10.0)
            .validate()
            .is_err());
        assert!(SigConfig::default()
            .with_range(f64::NEG_INFINITY, 0.0)
            .validate()
            .is_err());
    }

    #[test]
    fn normalize_clamps() {
        let c = SigConfig::default().with_range(0.0, 40.0);
        assert_eq!(c.normalize(0.0), 0.0);
        assert_eq!(c.normalize(40.0), 1.0);
        assert_eq!(c.normalize(20.0), 0.5);
        assert_eq!(c.normalize(-10.0), 0.0);
        assert_eq!(c.normalize(100.0), 1.0);
    }

    #[test]
    fn palette_wraps() {
        assert_eq!(Color::palette(0), Color::GREEN);
        assert_eq!(Color::palette(8), Color::GREEN);
        assert_eq!(Color::palette(9), Color::YELLOW);
    }
}
