//! Oscilloscope triggers and waveform envelopes.
//!
//! §6 lists these as future work: "Gscope currently does not have
//! support for repeating waveforms. Thus, many oscilloscope features
//! such as triggers that stabilize repeating waveforms or waveform
//! envelop generation are not implemented." This implementation provides
//! both:
//!
//! * [`Trigger`] — level-crossing detection with hysteresis and
//!   Auto/Normal modes, used to align the display window to the most
//!   recent trigger point so repeating waveforms hold still.
//! * [`Envelope`] — per-pixel running min/max across aligned sweeps.

use crate::history::Cols;

/// Which crossing direction fires the trigger.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TriggerEdge {
    /// Fire when the signal rises through the level.
    #[default]
    Rising,
    /// Fire when the signal falls through the level.
    Falling,
}

/// What to display when no trigger is found in the window.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TriggerMode {
    /// Free-run: show the unaligned window (like an analog scope's auto
    /// sweep).
    #[default]
    Auto,
    /// Hold the previous aligned sweep until the next trigger.
    Normal,
}

/// A level trigger with hysteresis.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Trigger {
    /// Crossing direction.
    pub edge: TriggerEdge,
    /// Trigger level in signal units.
    pub level: f64,
    /// The signal must retreat at least this far beyond the level to
    /// re-arm, suppressing noise-induced double triggers.
    pub hysteresis: f64,
    /// Behaviour when no trigger is present.
    pub mode: TriggerMode,
}

impl Trigger {
    /// Creates a rising-edge auto trigger at `level` with no hysteresis.
    pub fn rising(level: f64) -> Self {
        Trigger {
            edge: TriggerEdge::Rising,
            level,
            hysteresis: 0.0,
            mode: TriggerMode::Auto,
        }
    }

    /// Creates a falling-edge auto trigger at `level`.
    pub fn falling(level: f64) -> Self {
        Trigger {
            edge: TriggerEdge::Falling,
            level,
            hysteresis: 0.0,
            mode: TriggerMode::Auto,
        }
    }

    /// Sets the hysteresis band.
    pub fn with_hysteresis(mut self, h: f64) -> Self {
        self.hysteresis = h.abs();
        self
    }

    /// Sets the trigger mode.
    pub fn with_mode(mut self, mode: TriggerMode) -> Self {
        self.mode = mode;
        self
    }

    /// Returns every index where the trigger fires.
    ///
    /// # Examples
    ///
    /// ```
    /// use gscope::Trigger;
    ///
    /// let ramp: Vec<Option<f64>> =
    ///     [0.0, 1.0, 2.0, 0.0, 1.0, 2.0].iter().map(|&v| Some(v)).collect();
    /// assert_eq!(Trigger::rising(1.5).find_all(&ramp), vec![2, 5]);
    /// ```
    ///
    /// An index `i` fires when the sample crosses the level in the edge
    /// direction and the signal had re-armed (gone past
    /// `level ∓ hysteresis`) since the previous firing. Gaps (`None`)
    /// disarm the trigger.
    pub fn find_all(&self, samples: &[Option<f64>]) -> Vec<usize> {
        self.find_all_iter(samples.iter().copied())
    }

    /// [`Trigger::find_all`] over any column iterator — lets callers
    /// scan a borrowed [`Cols`] view without materialising a `Vec`.
    pub fn find_all_iter(&self, samples: impl Iterator<Item = Option<f64>>) -> Vec<usize> {
        let mut out = Vec::new();
        let mut armed = false;
        let mut prev: Option<f64> = None;
        for (i, s) in samples.enumerate() {
            let Some(v) = s else {
                armed = false;
                prev = None;
                continue;
            };
            match self.edge {
                TriggerEdge::Rising => {
                    if v <= self.level - self.hysteresis {
                        armed = true;
                    }
                    if armed && prev.is_some_and(|p| p < self.level) && v >= self.level {
                        out.push(i);
                        armed = false;
                    }
                }
                TriggerEdge::Falling => {
                    if v >= self.level + self.hysteresis {
                        armed = true;
                    }
                    if armed && prev.is_some_and(|p| p > self.level) && v <= self.level {
                        out.push(i);
                        armed = false;
                    }
                }
            }
            prev = Some(v);
        }
        out
    }

    /// Returns the last index where the trigger fires, if any.
    pub fn find_last(&self, samples: &[Option<f64>]) -> Option<usize> {
        self.find_all(samples).pop()
    }

    /// [`Trigger::find_last`] over a borrowed [`Cols`] view.
    pub fn find_last_cols(&self, samples: Cols<'_>) -> Option<usize> {
        self.find_all_iter(samples.iter()).pop()
    }

    /// Extracts a sweep of `width` columns ending at the most recent
    /// trigger point, for stable display of repeating waveforms.
    ///
    /// In [`TriggerMode::Auto`] with no trigger found, returns the last
    /// `width` columns unaligned; in [`TriggerMode::Normal`], returns
    /// `None` (caller holds the previous sweep).
    pub fn align<'a>(&self, samples: &'a [Option<f64>], width: usize) -> Option<&'a [Option<f64>]> {
        let end = match self.find_last(samples) {
            Some(i) => i + 1,
            None => match self.mode {
                TriggerMode::Auto => samples.len(),
                TriggerMode::Normal => return None,
            },
        };
        let start = end.saturating_sub(width);
        Some(&samples[start..end])
    }

    /// [`Trigger::align`] over a borrowed [`Cols`] view: the returned
    /// sub-view borrows the same storage, so alignment stays zero-copy.
    pub fn align_cols<'a>(&self, samples: Cols<'a>, width: usize) -> Option<Cols<'a>> {
        let end = match self.find_last_cols(samples) {
            Some(i) => i + 1,
            None => match self.mode {
                TriggerMode::Auto => samples.len(),
                TriggerMode::Normal => return None,
            },
        };
        let start = end.saturating_sub(width);
        Some(samples.slice(start, end))
    }
}

/// Per-pixel min/max accumulated across sweeps (§6's "waveform envelop
/// generation").
#[derive(Clone, Debug)]
pub struct Envelope {
    min: Vec<f64>,
    max: Vec<f64>,
    sweeps: u64,
}

impl Envelope {
    /// Creates an envelope for a canvas `width` pixels wide.
    pub fn new(width: usize) -> Self {
        Envelope {
            min: vec![f64::INFINITY; width],
            max: vec![f64::NEG_INFINITY; width],
            sweeps: 0,
        }
    }

    /// Builds an envelope directly from per-pixel `(min, max)` bands —
    /// the shape a level-of-detail store query returns — counting as
    /// one sweep. `None` columns stay empty.
    pub fn from_bands(bands: &[Option<(f64, f64)>]) -> Self {
        let mut env = Envelope::new(bands.len());
        for (x, band) in bands.iter().enumerate() {
            if let Some((lo, hi)) = *band {
                env.min[x] = lo;
                env.max[x] = hi;
            }
        }
        env.sweeps = 1;
        env
    }

    /// Returns the canvas width.
    pub fn width(&self) -> usize {
        self.min.len()
    }

    /// Number of sweeps accumulated.
    pub fn sweeps(&self) -> u64 {
        self.sweeps
    }

    /// Folds one sweep into the envelope. The sweep is right-aligned if
    /// shorter than the canvas (matching how traces render).
    pub fn accumulate(&mut self, sweep: &[Option<f64>]) {
        self.accumulate_iter(sweep.len(), sweep.iter().copied());
    }

    /// [`Envelope::accumulate`] over a borrowed [`Cols`] view.
    pub fn accumulate_cols(&mut self, sweep: Cols<'_>) {
        self.accumulate_iter(sweep.len(), sweep.iter());
    }

    fn accumulate_iter(&mut self, len: usize, sweep: impl Iterator<Item = Option<f64>>) {
        let w = self.min.len();
        let offset = w.saturating_sub(len);
        let skip = len.saturating_sub(w);
        for (i, s) in sweep.skip(skip).enumerate() {
            if let Some(v) = s {
                let x = offset + i;
                self.min[x] = self.min[x].min(v);
                self.max[x] = self.max[x].max(v);
            }
        }
        self.sweeps += 1;
    }

    /// Returns the `(min, max)` band at pixel `x`, if any sweep touched
    /// it.
    pub fn band(&self, x: usize) -> Option<(f64, f64)> {
        if x >= self.min.len() || self.min[x] > self.max[x] {
            None
        } else {
            Some((self.min[x], self.max[x]))
        }
    }

    /// Clears the accumulated envelope.
    pub fn reset(&mut self) {
        self.min.fill(f64::INFINITY);
        self.max.fill(f64::NEG_INFINITY);
        self.sweeps = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wave(vals: &[f64]) -> Vec<Option<f64>> {
        vals.iter().map(|&v| Some(v)).collect()
    }

    #[test]
    fn rising_trigger_finds_crossings() {
        // Two full cycles of a ramp: 0..4, 0..4.
        let s = wave(&[0.0, 1.0, 2.0, 3.0, 4.0, 0.0, 1.0, 2.0, 3.0, 4.0]);
        let t = Trigger::rising(2.0);
        assert_eq!(t.find_all(&s), vec![2, 7]);
        assert_eq!(t.find_last(&s), Some(7));
    }

    #[test]
    fn falling_trigger_finds_crossings() {
        let s = wave(&[4.0, 3.0, 2.0, 1.0, 4.0, 3.0, 2.0, 1.0]);
        let t = Trigger::falling(2.5);
        assert_eq!(t.find_all(&s), vec![2, 6]);
    }

    #[test]
    fn hysteresis_suppresses_chatter() {
        // Noise oscillating right around level 2.0.
        let s = wave(&[0.0, 2.1, 1.9, 2.1, 1.9, 2.1, 0.0, 3.0]);
        let loose = Trigger::rising(2.0);
        assert!(loose.find_all(&s).len() > 1, "no hysteresis chatters");
        let tight = Trigger::rising(2.0).with_hysteresis(1.0);
        // Only fires after the signal dips to <= 1.0 first: at index 1
        // (armed by 0.0 start) and index 7 (re-armed by the 0.0 at 6).
        assert_eq!(tight.find_all(&s), vec![1, 7]);
    }

    #[test]
    fn gaps_disarm() {
        let mut s = wave(&[0.0, 3.0]);
        s.push(None);
        s.extend(wave(&[3.0, 3.5]));
        let t = Trigger::rising(2.0);
        // Fires at 1; after the gap there is no below-level sample, so
        // no second firing.
        assert_eq!(t.find_all(&s), vec![1]);
    }

    #[test]
    fn align_windows_end_at_trigger() {
        let s = wave(&[0.0, 5.0, 0.0, 1.0, 5.0, 0.0, 1.0, 2.0]);
        let t = Trigger::rising(4.0);
        let sweep = t.align(&s, 3).unwrap();
        // Last trigger at index 4; window is indices 2..=4.
        assert_eq!(sweep, &wave(&[0.0, 1.0, 5.0])[..]);
    }

    #[test]
    fn align_modes_differ_without_trigger() {
        let s = wave(&[0.0, 0.1, 0.2, 0.3]);
        let auto = Trigger::rising(5.0);
        assert_eq!(auto.align(&s, 2).unwrap(), &wave(&[0.2, 0.3])[..]);
        let normal = Trigger::rising(5.0).with_mode(TriggerMode::Normal);
        assert_eq!(normal.align(&s, 2), None);
    }

    #[test]
    fn envelope_accumulates_min_max() {
        let mut e = Envelope::new(4);
        e.accumulate(&wave(&[1.0, 2.0, 3.0, 4.0]));
        e.accumulate(&wave(&[2.0, 1.0, 5.0, 4.0]));
        assert_eq!(e.band(0), Some((1.0, 2.0)));
        assert_eq!(e.band(1), Some((1.0, 2.0)));
        assert_eq!(e.band(2), Some((3.0, 5.0)));
        assert_eq!(e.band(3), Some((4.0, 4.0)));
        assert_eq!(e.sweeps(), 2);
    }

    #[test]
    fn envelope_right_aligns_short_sweeps() {
        let mut e = Envelope::new(4);
        e.accumulate(&wave(&[7.0, 8.0]));
        assert_eq!(e.band(0), None);
        assert_eq!(e.band(1), None);
        assert_eq!(e.band(2), Some((7.0, 7.0)));
        assert_eq!(e.band(3), Some((8.0, 8.0)));
    }

    #[test]
    fn envelope_truncates_long_sweeps_keeping_newest() {
        let mut e = Envelope::new(2);
        e.accumulate(&wave(&[1.0, 2.0, 3.0, 4.0]));
        assert_eq!(e.band(0), Some((3.0, 3.0)));
        assert_eq!(e.band(1), Some((4.0, 4.0)));
    }

    #[test]
    fn envelope_skips_gaps_and_resets() {
        let mut e = Envelope::new(3);
        e.accumulate(&[Some(1.0), None, Some(3.0)]);
        assert_eq!(e.band(1), None);
        e.reset();
        assert_eq!(e.band(0), None);
        assert_eq!(e.sweeps(), 0);
    }

    #[test]
    fn out_of_range_band_is_none() {
        let e = Envelope::new(2);
        assert_eq!(e.band(5), None);
    }

    #[test]
    fn cols_variants_match_slice_variants() {
        use crate::history::History;

        // Push past capacity so the ring wraps and Cols has two runs.
        let mut h = History::new(8);
        for v in [0.0, 5.0, 0.0, 1.0, 5.0, 0.0, 1.0, 2.0, 0.0, 5.0, 1.0] {
            h.push(Some(v));
        }
        let v = h.to_vec();
        let cols = h.cols();
        let t = Trigger::rising(4.0);
        assert_eq!(t.find_last_cols(cols), t.find_last(&v));
        let aligned = t.align_cols(cols, 3).unwrap();
        assert_eq!(aligned.to_vec(), t.align(&v, 3).unwrap());

        let normal = Trigger::rising(99.0).with_mode(TriggerMode::Normal);
        assert!(normal.align_cols(cols, 3).is_none());

        let mut by_slice = Envelope::new(4);
        by_slice.accumulate(&v);
        let mut by_cols = Envelope::new(4);
        by_cols.accumulate_cols(cols);
        for x in 0..4 {
            assert_eq!(by_cols.band(x), by_slice.band(x));
        }
        assert_eq!(by_cols.sweeps(), by_slice.sweeps());
    }
}
