//! Per-signal display history.
//!
//! In both polling and playback mode "data is displayed one pixel apart
//! each polling period (for the default zoom value)" (§3.1) — so the
//! scope keeps, per signal, a ring of one sample per pixel column.
//! Columns with no data yet (a holding aggregation before its first
//! event, a gap in playback) are `None` and render as blank.

use std::collections::VecDeque;

/// A fixed-capacity ring of display samples, one per pixel column.
#[derive(Clone, Debug)]
pub struct History {
    slots: VecDeque<Option<f64>>,
    capacity: usize,
    /// Total samples ever pushed (including `None`), i.e. the x-axis
    /// position of the newest column in ticks since the sweep began.
    pushed: u64,
}

impl History {
    /// Creates an empty history holding up to `capacity` columns.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "history capacity must be non-zero");
        History {
            slots: VecDeque::with_capacity(capacity),
            capacity,
            pushed: 0,
        }
    }

    /// Returns the capacity in columns.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Returns the number of stored columns (≤ capacity).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Returns true if nothing has been stored.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Total columns pushed since creation or [`History::clear`].
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }

    /// Appends one column, evicting the oldest if full.
    pub fn push(&mut self, v: Option<f64>) {
        if self.slots.len() == self.capacity {
            self.slots.pop_front();
        }
        self.slots.push_back(v);
        self.pushed += 1;
    }

    /// Returns the newest column, if any.
    pub fn latest(&self) -> Option<Option<f64>> {
        self.slots.back().copied()
    }

    /// Returns the newest non-empty value, if any.
    pub fn latest_value(&self) -> Option<f64> {
        self.slots.iter().rev().find_map(|v| *v)
    }

    /// Returns column `i`, oldest first.
    pub fn get(&self, i: usize) -> Option<Option<f64>> {
        self.slots.get(i).copied()
    }

    /// Copies the stored columns oldest-first.
    pub fn to_vec(&self) -> Vec<Option<f64>> {
        self.slots.iter().copied().collect()
    }

    /// Returns the newest `n` *values* (skipping empty columns),
    /// oldest-first — the FFT input for the frequency view.
    pub fn last_values(&self, n: usize) -> Vec<f64> {
        let vals: Vec<f64> = self.slots.iter().filter_map(|v| *v).collect();
        let start = vals.len().saturating_sub(n);
        vals[start..].to_vec()
    }

    /// Iterates stored columns oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = Option<f64>> + '_ {
        self.slots.iter().copied()
    }

    /// Changes the capacity (canvas resize), dropping oldest columns if
    /// shrinking.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn set_capacity(&mut self, capacity: usize) {
        assert!(capacity > 0, "history capacity must be non-zero");
        while self.slots.len() > capacity {
            self.slots.pop_front();
        }
        self.capacity = capacity;
    }

    /// Removes all columns and resets the push counter.
    pub fn clear(&mut self) {
        self.slots.clear();
        self.pushed = 0;
    }

    /// Minimum and maximum over stored values, ignoring empty columns.
    ///
    /// Returns `None` if no values are stored.
    pub fn value_range(&self) -> Option<(f64, f64)> {
        let mut it = self.slots.iter().filter_map(|v| *v);
        let first = it.next()?;
        let mut lo = first;
        let mut hi = first;
        for v in it {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        Some((lo, hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_evict_oldest() {
        let mut h = History::new(3);
        for i in 0..5 {
            h.push(Some(i as f64));
        }
        assert_eq!(h.len(), 3);
        assert_eq!(h.to_vec(), vec![Some(2.0), Some(3.0), Some(4.0)]);
        assert_eq!(h.total_pushed(), 5);
        assert_eq!(h.latest(), Some(Some(4.0)));
    }

    #[test]
    fn empty_columns_are_preserved() {
        let mut h = History::new(4);
        h.push(Some(1.0));
        h.push(None);
        h.push(Some(3.0));
        assert_eq!(h.to_vec(), vec![Some(1.0), None, Some(3.0)]);
        assert_eq!(h.latest_value(), Some(3.0));
        h.push(None);
        assert_eq!(h.latest(), Some(None));
        assert_eq!(h.latest_value(), Some(3.0));
    }

    #[test]
    fn last_values_skips_gaps() {
        let mut h = History::new(8);
        for v in [Some(1.0), None, Some(2.0), Some(3.0), None, Some(4.0)] {
            h.push(v);
        }
        assert_eq!(h.last_values(3), vec![2.0, 3.0, 4.0]);
        assert_eq!(h.last_values(100), vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(h.last_values(0), Vec::<f64>::new());
    }

    #[test]
    fn shrink_capacity_keeps_newest() {
        let mut h = History::new(5);
        for i in 0..5 {
            h.push(Some(i as f64));
        }
        h.set_capacity(2);
        assert_eq!(h.to_vec(), vec![Some(3.0), Some(4.0)]);
        assert_eq!(h.capacity(), 2);
        h.set_capacity(10);
        h.push(Some(9.0));
        assert_eq!(h.len(), 3);
    }

    #[test]
    fn value_range_ignores_gaps() {
        let mut h = History::new(8);
        assert_eq!(h.value_range(), None);
        h.push(None);
        assert_eq!(h.value_range(), None);
        h.push(Some(-2.0));
        h.push(Some(7.0));
        h.push(None);
        assert_eq!(h.value_range(), Some((-2.0, 7.0)));
    }

    #[test]
    fn clear_resets_everything() {
        let mut h = History::new(3);
        h.push(Some(1.0));
        h.clear();
        assert!(h.is_empty());
        assert_eq!(h.total_pushed(), 0);
        assert_eq!(h.latest(), None);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_rejected() {
        let _ = History::new(0);
    }
}
