//! Per-signal display history.
//!
//! In both polling and playback mode "data is displayed one pixel apart
//! each polling period (for the default zoom value)" (§3.1) — so the
//! scope keeps, per signal, a ring of one sample per pixel column.
//! Columns with no data yet (a holding aggregation before its first
//! event, a gap in playback) are `None` and render as blank.

use std::collections::VecDeque;

/// A zero-copy, possibly discontiguous view of display columns.
///
/// A [`History`] is a ring buffer, so its stored columns occupy at most
/// two contiguous runs of memory. `Cols` borrows both runs and presents
/// them as one logical oldest-first sequence, letting renderers walk a
/// display window without cloning it into a `Vec` first (the old
/// [`Scope::display_window`](crate::Scope::display_window) contract).
///
/// Obtain one from [`History::cols`] or
/// [`Scope::display_cols`](crate::Scope::display_cols).
#[derive(Clone, Copy, Debug, Default)]
pub struct Cols<'a> {
    head: &'a [Option<f64>],
    tail: &'a [Option<f64>],
}

impl<'a> Cols<'a> {
    /// An empty view (unknown signal, Normal-mode trigger with no
    /// firing yet).
    pub const EMPTY: Cols<'static> = Cols {
        head: &[],
        tail: &[],
    };

    /// Builds a view from the two runs of a ring buffer (either may be
    /// empty). `head` holds the older columns.
    pub fn from_slices(head: &'a [Option<f64>], tail: &'a [Option<f64>]) -> Self {
        Cols { head, tail }
    }

    /// Number of columns in the view.
    pub fn len(&self) -> usize {
        self.head.len() + self.tail.len()
    }

    /// True if the view holds no columns.
    pub fn is_empty(&self) -> bool {
        self.head.is_empty() && self.tail.is_empty()
    }

    /// Returns column `i`, oldest first.
    pub fn get(&self, i: usize) -> Option<Option<f64>> {
        if i < self.head.len() {
            Some(self.head[i])
        } else {
            self.tail.get(i - self.head.len()).copied()
        }
    }

    /// Returns the newest column, if any.
    pub fn last(&self) -> Option<Option<f64>> {
        self.tail.last().or_else(|| self.head.last()).copied()
    }

    /// Iterates the columns oldest-first.
    pub fn iter(&self) -> impl DoubleEndedIterator<Item = Option<f64>> + 'a {
        self.head.iter().chain(self.tail.iter()).copied()
    }

    /// Iterates the columns starting at index `start` (oldest-first),
    /// seeking directly into the right run — O(1) setup, unlike
    /// `iter().skip(start)`.
    pub fn iter_from(&self, start: usize) -> impl DoubleEndedIterator<Item = Option<f64>> + 'a {
        let h = start.min(self.head.len());
        let t = (start - h).min(self.tail.len());
        self.head[h..].iter().chain(self.tail[t..].iter()).copied()
    }

    /// Returns the sub-view `[start, end)`; out-of-range bounds clamp.
    pub fn slice(&self, start: usize, end: usize) -> Cols<'a> {
        let len = self.len();
        let start = start.min(len);
        let end = end.clamp(start, len);
        let hl = self.head.len();
        let (hs, he) = (start.min(hl), end.min(hl));
        let (ts, te) = (start.max(hl) - hl, end.max(hl) - hl);
        Cols {
            head: &self.head[hs..he],
            tail: &self.tail[ts..te],
        }
    }

    /// Copies the view into a `Vec` (compatibility path; allocates).
    pub fn to_vec(&self) -> Vec<Option<f64>> {
        let mut v = Vec::with_capacity(self.len());
        v.extend_from_slice(self.head);
        v.extend_from_slice(self.tail);
        v
    }
}

/// A fixed-capacity ring of display samples, one per pixel column.
#[derive(Clone, Debug)]
pub struct History {
    slots: VecDeque<Option<f64>>,
    capacity: usize,
    /// Total samples ever pushed (including `None`), i.e. the x-axis
    /// position of the newest column in ticks since the sweep began.
    pushed: u64,
}

impl History {
    /// Creates an empty history holding up to `capacity` columns.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "history capacity must be non-zero");
        History {
            slots: VecDeque::with_capacity(capacity),
            capacity,
            pushed: 0,
        }
    }

    /// Returns the capacity in columns.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Returns the number of stored columns (≤ capacity).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Returns true if nothing has been stored.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Total columns pushed since creation or [`History::clear`].
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }

    /// Appends one column, evicting the oldest if full.
    pub fn push(&mut self, v: Option<f64>) {
        if self.slots.len() == self.capacity {
            self.slots.pop_front();
        }
        self.slots.push_back(v);
        self.pushed += 1;
    }

    /// Returns the newest column, if any.
    pub fn latest(&self) -> Option<Option<f64>> {
        self.slots.back().copied()
    }

    /// Returns the newest non-empty value, if any.
    pub fn latest_value(&self) -> Option<f64> {
        self.slots.iter().rev().find_map(|v| *v)
    }

    /// Returns column `i`, oldest first.
    pub fn get(&self, i: usize) -> Option<Option<f64>> {
        self.slots.get(i).copied()
    }

    /// Copies the stored columns oldest-first.
    pub fn to_vec(&self) -> Vec<Option<f64>> {
        self.slots.iter().copied().collect()
    }

    /// Borrows the stored columns as the ring's (head, tail) runs,
    /// oldest-first across the pair. Zero-copy counterpart of
    /// [`History::to_vec`].
    pub fn as_slices(&self) -> (&[Option<f64>], &[Option<f64>]) {
        self.slots.as_slices()
    }

    /// Borrows the stored columns as a [`Cols`] view, oldest-first.
    pub fn cols(&self) -> Cols<'_> {
        let (head, tail) = self.slots.as_slices();
        Cols::from_slices(head, tail)
    }

    /// Number of non-empty columns (samples that carry a value).
    pub fn value_count(&self) -> usize {
        self.slots.iter().filter(|v| v.is_some()).count()
    }

    /// Returns the newest `n` *values* (skipping empty columns),
    /// oldest-first — the FFT input for the frequency view.
    ///
    /// Single pass from the back: collects at most `n` values newest
    /// first, then reverses in place — no intermediate full-history
    /// `Vec`.
    pub fn last_values(&self, n: usize) -> Vec<f64> {
        let mut vals: Vec<f64> = Vec::with_capacity(n.min(self.slots.len()));
        for v in self.slots.iter().rev().filter_map(|v| *v) {
            if vals.len() == n {
                break;
            }
            vals.push(v);
        }
        vals.reverse();
        vals
    }

    /// Iterates stored columns oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = Option<f64>> + '_ {
        self.slots.iter().copied()
    }

    /// Changes the capacity (canvas resize), dropping oldest columns if
    /// shrinking.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn set_capacity(&mut self, capacity: usize) {
        assert!(capacity > 0, "history capacity must be non-zero");
        while self.slots.len() > capacity {
            self.slots.pop_front();
        }
        self.capacity = capacity;
    }

    /// Removes all columns and resets the push counter.
    pub fn clear(&mut self) {
        self.slots.clear();
        self.pushed = 0;
    }

    /// Minimum and maximum over stored values, ignoring empty columns.
    ///
    /// Returns `None` if no values are stored.
    pub fn value_range(&self) -> Option<(f64, f64)> {
        let mut it = self.slots.iter().filter_map(|v| *v);
        let first = it.next()?;
        let mut lo = first;
        let mut hi = first;
        for v in it {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        Some((lo, hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_evict_oldest() {
        let mut h = History::new(3);
        for i in 0..5 {
            h.push(Some(i as f64));
        }
        assert_eq!(h.len(), 3);
        assert_eq!(h.to_vec(), vec![Some(2.0), Some(3.0), Some(4.0)]);
        assert_eq!(h.total_pushed(), 5);
        assert_eq!(h.latest(), Some(Some(4.0)));
    }

    #[test]
    fn empty_columns_are_preserved() {
        let mut h = History::new(4);
        h.push(Some(1.0));
        h.push(None);
        h.push(Some(3.0));
        assert_eq!(h.to_vec(), vec![Some(1.0), None, Some(3.0)]);
        assert_eq!(h.latest_value(), Some(3.0));
        h.push(None);
        assert_eq!(h.latest(), Some(None));
        assert_eq!(h.latest_value(), Some(3.0));
    }

    #[test]
    fn last_values_skips_gaps() {
        let mut h = History::new(8);
        for v in [Some(1.0), None, Some(2.0), Some(3.0), None, Some(4.0)] {
            h.push(v);
        }
        assert_eq!(h.last_values(3), vec![2.0, 3.0, 4.0]);
        assert_eq!(h.last_values(100), vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(h.last_values(0), Vec::<f64>::new());
    }

    #[test]
    fn shrink_capacity_keeps_newest() {
        let mut h = History::new(5);
        for i in 0..5 {
            h.push(Some(i as f64));
        }
        h.set_capacity(2);
        assert_eq!(h.to_vec(), vec![Some(3.0), Some(4.0)]);
        assert_eq!(h.capacity(), 2);
        h.set_capacity(10);
        h.push(Some(9.0));
        assert_eq!(h.len(), 3);
    }

    #[test]
    fn value_range_ignores_gaps() {
        let mut h = History::new(8);
        assert_eq!(h.value_range(), None);
        h.push(None);
        assert_eq!(h.value_range(), None);
        h.push(Some(-2.0));
        h.push(Some(7.0));
        h.push(None);
        assert_eq!(h.value_range(), Some((-2.0, 7.0)));
    }

    #[test]
    fn clear_resets_everything() {
        let mut h = History::new(3);
        h.push(Some(1.0));
        h.clear();
        assert!(h.is_empty());
        assert_eq!(h.total_pushed(), 0);
        assert_eq!(h.latest(), None);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_rejected() {
        let _ = History::new(0);
    }

    #[test]
    fn cols_matches_to_vec_across_wrap() {
        let mut h = History::new(4);
        for i in 0..7 {
            h.push(if i % 3 == 0 { None } else { Some(i as f64) });
            let cols = h.cols();
            assert_eq!(cols.len(), h.len());
            assert_eq!(cols.iter().collect::<Vec<_>>(), h.to_vec());
            assert_eq!(cols.to_vec(), h.to_vec());
            let (head, tail) = h.as_slices();
            assert_eq!(head.len() + tail.len(), h.len());
        }
        // After 7 pushes into capacity 4 the ring has wrapped; make
        // sure indexing/last agree with the copied form too.
        let cols = h.cols();
        let v = h.to_vec();
        for (i, expect) in v.iter().enumerate() {
            assert_eq!(cols.get(i), Some(*expect));
        }
        assert_eq!(cols.get(v.len()), None);
        assert_eq!(cols.last(), v.last().copied());
    }

    #[test]
    fn cols_slice_and_iter_from() {
        let mut h = History::new(5);
        for i in 0..8 {
            h.push(Some(i as f64));
        }
        let cols = h.cols();
        let v = h.to_vec();
        for start in 0..=v.len() + 1 {
            for end in start..=v.len() + 1 {
                let sub = cols.slice(start, end);
                let s = start.min(v.len());
                let e = end.min(v.len());
                assert_eq!(sub.to_vec(), v[s..e], "slice({start},{end})");
            }
            assert_eq!(
                cols.iter_from(start).collect::<Vec<_>>(),
                v[start.min(v.len())..].to_vec(),
                "iter_from({start})"
            );
        }
        assert!(Cols::EMPTY.is_empty());
        assert_eq!(Cols::EMPTY.last(), None);
    }

    #[test]
    fn value_count_skips_gaps() {
        let mut h = History::new(6);
        assert_eq!(h.value_count(), 0);
        for v in [Some(1.0), None, Some(2.0), None, None, Some(3.0)] {
            h.push(v);
        }
        assert_eq!(h.value_count(), 3);
    }

    #[test]
    fn last_values_capped_capacity() {
        let mut h = History::new(4);
        for i in 0..4 {
            h.push(Some(i as f64));
        }
        // A huge `n` must not pre-allocate `n` slots.
        let v = h.last_values(usize::MAX);
        assert_eq!(v, vec![0.0, 1.0, 2.0, 3.0]);
    }
}
