//! The scope-wide buffer behind `BUFFER` signals (§3.1, §4.4).
//!
//! Applications (or remote clients) *push* timestamped samples into the
//! buffer from any thread; the scope *polls* the buffer each tick and
//! displays samples "with a user-specified delay". The delay gives
//! in-flight data time to arrive; a sample that shows up after its
//! display deadline has already passed "is not buffered but dropped
//! immediately" (§4.4) and counted.
//!
//! # Ingestion layout
//!
//! Producers do not share one lock. Pushes land in one of a fixed set
//! of *shards* — plain `Mutex<Vec<Entry>>` segments — with each
//! producer thread pinned to a shard, so concurrent producers (and the
//! scope thread draining) contend only when they hash to the same
//! shard. Global time ordering is reconstructed at drain time: the
//! drain sweeps every shard into a staging min-heap ordered by
//! `(time, seq)` where `seq` is a process-wide insertion counter, then
//! pops everything up to the cutoff. Pushing is therefore an
//! O(1) `Vec::push` under a mostly-uncontended lock instead of an
//! O(log n) heap insert under a single hot one.

use std::cell::Cell;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use gel::{Clock, TimeDelta, TimeStamp};
use parking_lot::Mutex;

use crate::tuple::Tuple;

/// Number of ingestion shards. Power of two, sized for "a handful of
/// producer threads plus the scope thread" — more shards than typical
/// producers so the thread→shard pinning rarely collides.
const SHARDS: usize = 8;

#[derive(Debug)]
struct Entry {
    time: TimeStamp,
    seq: u64,
    value: f64,
    name: Option<Arc<str>>,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        (self.time, self.seq) == (other.time, other.seq)
    }
}

impl Eq for Entry {}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

#[derive(Default)]
struct Core {
    /// Per-producer ingestion segments; unsorted, merged at drain time.
    shards: [Mutex<Vec<Entry>>; SHARDS],
    /// Drain-side staging heap holding swept-but-not-yet-due samples.
    staged: Mutex<BinaryHeap<Reverse<Entry>>>,
    /// Process-wide insertion counter; breaks time ties in push order
    /// and doubles as the lifetime accepted-sample count (late drops
    /// never reach it).
    seq: AtomicU64,
    /// Samples removed by drains and clears. `seq - drained` is the
    /// queue population, letting the tick path skip all nine locks
    /// when the buffer is empty — the common case for a polling scope.
    drained: AtomicU64,
    late_drops: AtomicU64,
}

/// Returns this thread's shard slot, assigned round-robin on first use.
///
/// Pinning (rather than hashing per push) keeps a producer's samples in
/// one segment, so its cache lines are not bounced between shards.
fn shard_index() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SLOT: Cell<usize> = const { Cell::new(usize::MAX) };
    }
    SLOT.with(|slot| {
        let mut idx = slot.get();
        if idx == usize::MAX {
            idx = NEXT.fetch_add(1, Ordering::Relaxed) % SHARDS;
            slot.set(idx);
        }
        idx
    })
}

/// Thread-safe timestamped sample queue shared by a scope and its data
/// producers.
///
/// Clones share the same queue, so a clone can be handed to producer
/// threads, device drivers (§4.2 "Buffering"), or the network server
/// (§4.4) while the scope keeps draining it.
#[derive(Clone)]
pub struct ScopeBuffer {
    core: Arc<Core>,
    delay_us: Arc<AtomicU64>,
    clock: Arc<dyn Clock>,
}

impl ScopeBuffer {
    /// Creates an empty buffer with the given display delay.
    pub fn new(clock: Arc<dyn Clock>, delay: TimeDelta) -> Self {
        ScopeBuffer {
            core: Arc::new(Core::default()),
            delay_us: Arc::new(AtomicU64::new(delay.as_micros())),
            clock,
        }
    }

    /// Returns the display delay.
    pub fn delay(&self) -> TimeDelta {
        TimeDelta::from_micros(self.delay_us.load(Ordering::Relaxed))
    }

    /// Changes the display delay (the GUI's delay widget).
    pub fn set_delay(&self, delay: TimeDelta) {
        self.delay_us.store(delay.as_micros(), Ordering::Relaxed);
    }

    /// Enqueues one sample.
    ///
    /// Returns false (and counts a late drop) if the sample's display
    /// deadline `time + delay` has already passed.
    ///
    /// # Examples
    ///
    /// ```
    /// use std::sync::Arc;
    /// use gel::{TimeDelta, TimeStamp, VirtualClock};
    /// use gscope::{ScopeBuffer, Tuple};
    ///
    /// let clock = Arc::new(VirtualClock::new());
    /// let buf = ScopeBuffer::new(clock, TimeDelta::from_millis(500));
    /// assert!(buf.push(Tuple::new(TimeStamp::from_millis(10), 1.0, "rtt")));
    /// assert_eq!(buf.drain_until(TimeStamp::from_millis(10)).len(), 1);
    /// ```
    pub fn push(&self, tuple: Tuple) -> bool {
        let deadline = tuple.time.saturating_add(self.delay());
        if deadline < self.clock.now() {
            self.core.late_drops.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        let seq = self.core.seq.fetch_add(1, Ordering::Relaxed);
        self.core.shards[shard_index()].lock().push(Entry {
            time: tuple.time,
            seq,
            value: tuple.value,
            name: tuple.name,
        });
        true
    }

    /// Convenience: enqueue a named sample.
    pub fn push_sample(&self, name: impl AsRef<str>, time: TimeStamp, value: f64) -> bool {
        self.push(Tuple::new(time, value, name))
    }

    /// Removes and returns all samples with `time ≤ cutoff`, in time
    /// order (ties in insertion order).
    ///
    /// The scope calls this each tick with `cutoff = now − delay`.
    pub fn drain_until(&self, cutoff: TimeStamp) -> Vec<Tuple> {
        let mut out = Vec::new();
        self.drain_until_into(cutoff, &mut out);
        out
    }

    /// [`ScopeBuffer::drain_until`] into a caller-owned vector, so the
    /// scope tick can reuse one allocation across ticks. Appends to
    /// `out` without clearing it.
    pub fn drain_until_into(&self, cutoff: TimeStamp, out: &mut Vec<Tuple>) {
        // Lock-free fast path: nothing queued anywhere. A push racing
        // with this check is simply picked up on the next tick, which
        // the delay semantics already allow.
        if self.is_empty() {
            return;
        }
        let mut staged = self.core.staged.lock();
        for shard in &self.core.shards {
            let mut pending = shard.lock();
            staged.extend(pending.drain(..).map(Reverse));
        }
        let mut popped = 0u64;
        while let Some(Reverse(head)) = staged.peek() {
            if head.time > cutoff {
                break;
            }
            let Reverse(e) = staged.pop().expect("peeked entry exists");
            popped += 1;
            out.push(Tuple {
                time: e.time,
                value: e.value,
                name: e.name,
            });
        }
        self.core.drained.fetch_add(popped, Ordering::Relaxed);
    }

    /// Number of samples waiting in the buffer (lock-free).
    pub fn len(&self) -> usize {
        let inserted = self.core.seq.load(Ordering::Relaxed);
        let drained = self.core.drained.load(Ordering::Relaxed);
        inserted.saturating_sub(drained) as usize
    }

    /// Returns true if no samples are waiting.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Samples rejected because they arrived after their deadline.
    pub fn late_drops(&self) -> u64 {
        self.core.late_drops.load(Ordering::Relaxed)
    }

    /// Samples accepted over the buffer's lifetime.
    pub fn total_inserted(&self) -> u64 {
        self.core.seq.load(Ordering::Relaxed)
    }

    /// Discards everything queued.
    pub fn clear(&self) {
        let mut removed = 0u64;
        for shard in &self.core.shards {
            let mut pending = shard.lock();
            removed += pending.len() as u64;
            pending.clear();
        }
        let mut staged = self.core.staged.lock();
        removed += staged.len() as u64;
        staged.clear();
        self.core.drained.fetch_add(removed, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gel::VirtualClock;

    fn buffer_at(delay_ms: u64) -> (ScopeBuffer, VirtualClock) {
        let clock = VirtualClock::new();
        let buf = ScopeBuffer::new(Arc::new(clock.clone()), TimeDelta::from_millis(delay_ms));
        (buf, clock)
    }

    #[test]
    fn drain_returns_time_ordered() {
        let (buf, _clock) = buffer_at(1_000);
        assert!(buf.push_sample("a", TimeStamp::from_millis(30), 3.0));
        assert!(buf.push_sample("a", TimeStamp::from_millis(10), 1.0));
        assert!(buf.push_sample("b", TimeStamp::from_millis(20), 2.0));
        let got = buf.drain_until(TimeStamp::from_millis(25));
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].value, 1.0);
        assert_eq!(got[1].value, 2.0);
        assert_eq!(buf.len(), 1, "the 30 ms sample stays queued");
    }

    #[test]
    fn equal_times_keep_insertion_order() {
        let (buf, _clock) = buffer_at(1_000);
        for i in 0..5 {
            buf.push_sample("s", TimeStamp::from_millis(10), i as f64);
        }
        let got = buf.drain_until(TimeStamp::from_millis(10));
        let values: Vec<f64> = got.iter().map(|t| t.value).collect();
        assert_eq!(values, vec![0.0, 1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn late_sample_is_dropped_and_counted() {
        let (buf, clock) = buffer_at(50);
        clock.advance(TimeDelta::from_millis(200));
        // Sample from t=100 with 50 ms delay: deadline 150 < now 200.
        assert!(!buf.push_sample("a", TimeStamp::from_millis(100), 1.0));
        assert_eq!(buf.late_drops(), 1);
        assert_eq!(buf.len(), 0);
        // Sample from t=160: deadline 210 >= 200, accepted.
        assert!(buf.push_sample("a", TimeStamp::from_millis(160), 2.0));
        assert_eq!(buf.total_inserted(), 1);
    }

    #[test]
    fn raising_delay_rescues_stragglers() {
        let (buf, clock) = buffer_at(10);
        clock.advance(TimeDelta::from_millis(100));
        assert!(!buf.push_sample("a", TimeStamp::from_millis(50), 1.0));
        buf.set_delay(TimeDelta::from_millis(500));
        assert!(buf.push_sample("a", TimeStamp::from_millis(50), 1.0));
        assert_eq!(buf.delay(), TimeDelta::from_millis(500));
    }

    #[test]
    fn clones_share_state() {
        let (buf, _clock) = buffer_at(1_000);
        let other = buf.clone();
        other.push_sample("x", TimeStamp::from_millis(1), 9.0);
        assert_eq!(buf.len(), 1);
        buf.clear();
        assert!(other.is_empty());
    }

    #[test]
    fn partial_drain_keeps_future_samples_ordered() {
        // Samples swept into the staging heap but past the cutoff must
        // merge correctly with samples pushed after the drain.
        let (buf, _clock) = buffer_at(10_000);
        buf.push_sample("s", TimeStamp::from_millis(40), 4.0);
        buf.push_sample("s", TimeStamp::from_millis(10), 1.0);
        assert_eq!(buf.drain_until(TimeStamp::from_millis(20)).len(), 1);
        buf.push_sample("s", TimeStamp::from_millis(30), 3.0);
        let rest = buf.drain_until(TimeStamp::from_millis(100));
        let values: Vec<f64> = rest.iter().map(|t| t.value).collect();
        assert_eq!(values, vec![3.0, 4.0]);
    }

    #[test]
    fn drain_into_appends_and_reuses_capacity() {
        let (buf, _clock) = buffer_at(1_000);
        buf.push_sample("s", TimeStamp::from_millis(1), 1.0);
        let mut out = Vec::new();
        buf.drain_until_into(TimeStamp::from_millis(5), &mut out);
        assert_eq!(out.len(), 1);
        buf.push_sample("s", TimeStamp::from_millis(2), 2.0);
        buf.drain_until_into(TimeStamp::from_millis(5), &mut out);
        assert_eq!(out.len(), 2, "appends without clearing");
    }

    #[test]
    fn concurrent_producers() {
        let (buf, _clock) = buffer_at(10_000);
        let mut handles = Vec::new();
        for t in 0..4 {
            let b = buf.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..250 {
                    b.push_sample(format!("s{t}"), TimeStamp::from_millis(i), i as f64);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(buf.len(), 1000);
        let drained = buf.drain_until(TimeStamp::from_millis(300));
        assert_eq!(drained.len(), 1000);
        // Verify global time ordering of the drain.
        for w in drained.windows(2) {
            assert!(w[0].time <= w[1].time);
        }
    }

    #[test]
    fn per_thread_push_order_survives_sharding() {
        // A single producer's equal-time samples must still drain in its
        // push order even though shards are merged at drain time.
        let (buf, _clock) = buffer_at(10_000);
        let b = buf.clone();
        std::thread::spawn(move || {
            for i in 0..100 {
                b.push_sample("t", TimeStamp::from_millis(7), i as f64);
            }
        })
        .join()
        .unwrap();
        let got = buf.drain_until(TimeStamp::from_millis(7));
        let values: Vec<f64> = got.iter().map(|t| t.value).collect();
        let expect: Vec<f64> = (0..100).map(|i| i as f64).collect();
        assert_eq!(values, expect);
    }
}
