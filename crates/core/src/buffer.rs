//! The scope-wide buffer behind `BUFFER` signals (§3.1, §4.4).
//!
//! Applications (or remote clients) *push* timestamped samples into the
//! buffer from any thread; the scope *polls* the buffer each tick and
//! displays samples "with a user-specified delay". The delay gives
//! in-flight data time to arrive; a sample that shows up after its
//! display deadline has already passed "is not buffered but dropped
//! immediately" (§4.4) and counted.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use gel::{Clock, TimeDelta, TimeStamp};
use parking_lot::Mutex;

use crate::tuple::Tuple;

#[derive(Debug)]
struct Entry {
    time: TimeStamp,
    seq: u64,
    value: f64,
    name: Option<String>,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        (self.time, self.seq) == (other.time, other.seq)
    }
}

impl Eq for Entry {}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

#[derive(Default)]
struct Inner {
    heap: BinaryHeap<Reverse<Entry>>,
    seq: u64,
    late_drops: u64,
    inserted: u64,
}

/// Thread-safe timestamped sample queue shared by a scope and its data
/// producers.
///
/// Clones share the same queue, so a clone can be handed to producer
/// threads, device drivers (§4.2 "Buffering"), or the network server
/// (§4.4) while the scope keeps draining it.
#[derive(Clone)]
pub struct ScopeBuffer {
    inner: Arc<Mutex<Inner>>,
    delay_us: Arc<AtomicU64>,
    clock: Arc<dyn Clock>,
}

impl ScopeBuffer {
    /// Creates an empty buffer with the given display delay.
    pub fn new(clock: Arc<dyn Clock>, delay: TimeDelta) -> Self {
        ScopeBuffer {
            inner: Arc::new(Mutex::new(Inner::default())),
            delay_us: Arc::new(AtomicU64::new(delay.as_micros())),
            clock,
        }
    }

    /// Returns the display delay.
    pub fn delay(&self) -> TimeDelta {
        TimeDelta::from_micros(self.delay_us.load(Ordering::Relaxed))
    }

    /// Changes the display delay (the GUI's delay widget).
    pub fn set_delay(&self, delay: TimeDelta) {
        self.delay_us.store(delay.as_micros(), Ordering::Relaxed);
    }

    /// Enqueues one sample.
    ///
    /// Returns false (and counts a late drop) if the sample's display
    /// deadline `time + delay` has already passed.
    ///
    /// # Examples
    ///
    /// ```
    /// use std::sync::Arc;
    /// use gel::{TimeDelta, TimeStamp, VirtualClock};
    /// use gscope::{ScopeBuffer, Tuple};
    ///
    /// let clock = Arc::new(VirtualClock::new());
    /// let buf = ScopeBuffer::new(clock, TimeDelta::from_millis(500));
    /// assert!(buf.push(Tuple::new(TimeStamp::from_millis(10), 1.0, "rtt")));
    /// assert_eq!(buf.drain_until(TimeStamp::from_millis(10)).len(), 1);
    /// ```
    pub fn push(&self, tuple: Tuple) -> bool {
        let deadline = tuple.time.saturating_add(self.delay());
        let mut inner = self.inner.lock();
        if deadline < self.clock.now() {
            inner.late_drops += 1;
            return false;
        }
        let seq = inner.seq;
        inner.seq += 1;
        inner.inserted += 1;
        inner.heap.push(Reverse(Entry {
            time: tuple.time,
            seq,
            value: tuple.value,
            name: tuple.name,
        }));
        true
    }

    /// Convenience: enqueue a named sample.
    pub fn push_sample(&self, name: impl Into<String>, time: TimeStamp, value: f64) -> bool {
        self.push(Tuple::new(time, value, name))
    }

    /// Removes and returns all samples with `time ≤ cutoff`, in time
    /// order (ties in insertion order).
    ///
    /// The scope calls this each tick with `cutoff = now − delay`.
    pub fn drain_until(&self, cutoff: TimeStamp) -> Vec<Tuple> {
        let mut inner = self.inner.lock();
        let mut out = Vec::new();
        while let Some(Reverse(head)) = inner.heap.peek() {
            if head.time > cutoff {
                break;
            }
            let Reverse(e) = inner.heap.pop().expect("peeked entry exists");
            out.push(Tuple {
                time: e.time,
                value: e.value,
                name: e.name,
            });
        }
        out
    }

    /// Number of samples waiting in the buffer.
    pub fn len(&self) -> usize {
        self.inner.lock().heap.len()
    }

    /// Returns true if no samples are waiting.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Samples rejected because they arrived after their deadline.
    pub fn late_drops(&self) -> u64 {
        self.inner.lock().late_drops
    }

    /// Samples accepted over the buffer's lifetime.
    pub fn total_inserted(&self) -> u64 {
        self.inner.lock().inserted
    }

    /// Discards everything queued.
    pub fn clear(&self) {
        self.inner.lock().heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gel::VirtualClock;

    fn buffer_at(delay_ms: u64) -> (ScopeBuffer, VirtualClock) {
        let clock = VirtualClock::new();
        let buf = ScopeBuffer::new(Arc::new(clock.clone()), TimeDelta::from_millis(delay_ms));
        (buf, clock)
    }

    #[test]
    fn drain_returns_time_ordered() {
        let (buf, _clock) = buffer_at(1_000);
        assert!(buf.push_sample("a", TimeStamp::from_millis(30), 3.0));
        assert!(buf.push_sample("a", TimeStamp::from_millis(10), 1.0));
        assert!(buf.push_sample("b", TimeStamp::from_millis(20), 2.0));
        let got = buf.drain_until(TimeStamp::from_millis(25));
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].value, 1.0);
        assert_eq!(got[1].value, 2.0);
        assert_eq!(buf.len(), 1, "the 30 ms sample stays queued");
    }

    #[test]
    fn equal_times_keep_insertion_order() {
        let (buf, _clock) = buffer_at(1_000);
        for i in 0..5 {
            buf.push_sample("s", TimeStamp::from_millis(10), i as f64);
        }
        let got = buf.drain_until(TimeStamp::from_millis(10));
        let values: Vec<f64> = got.iter().map(|t| t.value).collect();
        assert_eq!(values, vec![0.0, 1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn late_sample_is_dropped_and_counted() {
        let (buf, clock) = buffer_at(50);
        clock.advance(TimeDelta::from_millis(200));
        // Sample from t=100 with 50 ms delay: deadline 150 < now 200.
        assert!(!buf.push_sample("a", TimeStamp::from_millis(100), 1.0));
        assert_eq!(buf.late_drops(), 1);
        assert_eq!(buf.len(), 0);
        // Sample from t=160: deadline 210 >= 200, accepted.
        assert!(buf.push_sample("a", TimeStamp::from_millis(160), 2.0));
        assert_eq!(buf.total_inserted(), 1);
    }

    #[test]
    fn raising_delay_rescues_stragglers() {
        let (buf, clock) = buffer_at(10);
        clock.advance(TimeDelta::from_millis(100));
        assert!(!buf.push_sample("a", TimeStamp::from_millis(50), 1.0));
        buf.set_delay(TimeDelta::from_millis(500));
        assert!(buf.push_sample("a", TimeStamp::from_millis(50), 1.0));
        assert_eq!(buf.delay(), TimeDelta::from_millis(500));
    }

    #[test]
    fn clones_share_state() {
        let (buf, _clock) = buffer_at(1_000);
        let other = buf.clone();
        other.push_sample("x", TimeStamp::from_millis(1), 9.0);
        assert_eq!(buf.len(), 1);
        buf.clear();
        assert!(other.is_empty());
    }

    #[test]
    fn concurrent_producers() {
        let (buf, _clock) = buffer_at(10_000);
        let mut handles = Vec::new();
        for t in 0..4 {
            let b = buf.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..250 {
                    b.push_sample(format!("s{t}"), TimeStamp::from_millis(i), i as f64);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(buf.len(), 1000);
        let drained = buf.drain_until(TimeStamp::from_millis(300));
        assert_eq!(drained.len(), 1000);
        // Verify global time ordering of the drain.
        for w in drained.windows(2) {
            assert!(w[0].time <= w[1].time);
        }
    }
}
