//! `gscope` — an oscilloscope-like visualization library for
//! time-sensitive software.
//!
//! A from-scratch Rust reproduction of *"Gscope: A Visualization Tool
//! for Time-Sensitive Software"* (Ashvin Goel and Jonathan Walpole,
//! USENIX FREENIX Track, 2002). Gscope gives time-sensitive programs —
//! media players, schedulers, network stacks, control loops — an
//! embedded oscilloscope: signals are polled from live program state (or
//! pushed with timestamps), filtered, aggregated, displayed, recorded,
//! replayed, and streamed across machines, while control parameters let
//! the observer modify program behaviour in real time.
//!
//! # Crate map
//!
//! * [`Scope`] — the scope engine: signals, acquisition modes
//!   (polling/playback), period/delay/zoom/bias, recording, triggers.
//! * [`SigSource`] / [`IntVar`]-style shared variables — the paper's
//!   `INTEGER`/`BOOLEAN`/`SHORT`/`FLOAT`/`FUNC`/`BUFFER` signal types.
//! * [`SigConfig`] — per-signal color/range/line/hidden/α parameters.
//! * [`Aggregation`] — per-interval event aggregation (§4.2).
//! * [`ScopeBuffer`] — the scope-wide timestamped buffer with display
//!   delay and late-drop accounting (§3.1, §4.4).
//! * [`Parameter`] / [`ParamSet`] — read/write control parameters
//!   (§3.2).
//! * [`Tuple`] / [`TupleReader`] / [`TupleWriter`] — the textual
//!   `time value name` format (§3.3).
//! * [`Trigger`] / [`Envelope`] — the §6 future-work oscilloscope
//!   features, implemented.
//! * [`attach_scope`] — wire a scope to a `gel` main loop, the
//!   `gtk_timeout`-driven polling of the original.
//! * [`metric_signal`] / [`StatsExport`] — self-scoping: expose the
//!   stack's own `gtel` telemetry (tick jitter, buffer depth, poll
//!   latency) as signals a second scope can visualize live.
//!
//! # Example: the paper's Figure 6 program
//!
//! ```
//! use std::sync::Arc;
//! use gel::{MainLoop, TimeDelta, TimeStamp, VirtualClock};
//! use gscope::{attach_scope, IntVar, Scope, SigConfig};
//!
//! // int elephants;
//! let elephants = IntVar::new(8);
//!
//! // scope = gtk_scope_new(name, width, height);
//! let clock = VirtualClock::new();
//! let mut scope = Scope::new("mxtraf", 640, 480, Arc::new(clock.clone()));
//!
//! // gtk_scope_signal_new(scope, elephants_sig);  (min 0, max 40)
//! scope.add_signal(
//!     "elephants",
//!     elephants.clone().into(),
//!     SigConfig::default().with_range(0.0, 40.0),
//! ).unwrap();
//!
//! // gtk_scope_set_polling_mode(scope, 50); gtk_scope_start_polling(scope);
//! scope.set_polling_mode(TimeDelta::from_millis(50)).unwrap();
//! scope.start();
//!
//! // gtk_main();
//! let shared = scope.into_shared();
//! let mut ml = MainLoop::new(Arc::new(clock.clone()));
//! attach_scope(&shared, &mut ml);
//! ml.run_until(TimeStamp::from_millis(500));
//!
//! assert_eq!(shared.lock().value_readout("elephants").unwrap(), Some(8.0));
//! ```

mod aggregate;
mod buffer;
mod config;
mod error;
mod history;
mod intern;
mod param;
mod scope;
mod signal;
mod source;
mod telemetry;
mod trigger;
mod tuple;
mod value;

pub use aggregate::{decimate_minmax, Aggregation, EventAccumulator};
pub use buffer::ScopeBuffer;
pub use config::{Color, LineMode, SigConfig};
pub use error::{Result, ScopeError};
pub use history::{Cols, History};
pub use intern::{intern, interned_count};
pub use param::{ParamBinding, ParamSet, ParamValue, Parameter};
pub use scope::{
    attach_scope, Measurement, Scope, ScopeStats, SharedScope, DEFAULT_PERIOD, UNNAMED_SIGNAL,
};
pub use signal::{EventSink, Signal};
pub use source::SigSource;
pub use telemetry::{export_stats, metric_signal, ScopeTelemetry, StatsExport};
pub use trigger::{Envelope, Trigger, TriggerEdge, TriggerMode};
pub use tuple::{
    write_tuple_line, RawTuple, Tuple, TupleReader, TupleSink, TupleSource, TupleWriter,
};
pub use value::{BoolVar, FloatVar, IntVar, ShortVar};
