//! The runtime signal object — the library's `GtkScopeSignal` (§2).
//!
//! A [`Signal`] owns its data source, per-interval event accumulator,
//! low-pass filter, and per-pixel display history. The scope drives it
//! once per polling period via [`Signal::tick`].

use std::sync::Arc;

use gdsp::{power_spectrum, Bin, LowPass, SpectrumConfig};
use gel::TimeDelta;
use parking_lot::Mutex;

use crate::aggregate::EventAccumulator;
use crate::config::{Color, SigConfig};
use crate::error::Result;
use crate::history::History;
use crate::intern::intern;
use crate::source::SigSource;

/// A cloneable handle applications use to push event samples into a
/// signal from any thread (§4.2 "Event Aggregation").
///
/// Events are reduced to one display sample per polling interval by the
/// signal's [`Aggregation`](crate::aggregate::Aggregation).
#[derive(Clone)]
pub struct EventSink {
    acc: Arc<Mutex<EventAccumulator>>,
}

impl EventSink {
    /// Records one event value.
    pub fn push(&self, value: f64) {
        self.acc.lock().push(value);
    }

    /// Records an event with value 1 (pure occurrence counting, for
    /// `Events` / `AnyEvent` aggregations).
    pub fn mark(&self) {
        self.push(1.0);
    }
}

/// One displayed signal: source, config, filter, and pixel history.
pub struct Signal {
    name: Arc<str>,
    source: SigSource,
    config: SigConfig,
    /// Resolved trace color (config color or assigned palette entry).
    color: Color,
    filter: LowPass,
    acc: Arc<Mutex<EventAccumulator>>,
    history: History,
    /// Most recent raw (pre-filter) sample, for the Value button.
    last_raw: Option<f64>,
    /// Ticks processed.
    ticks: u64,
}

impl Signal {
    /// Creates a signal.
    ///
    /// `palette_index` picks the automatic color when the config does
    /// not specify one; `width` is the display history capacity in
    /// pixels.
    ///
    /// # Errors
    ///
    /// Returns a config validation error (bad α or range).
    pub fn new(
        name: impl AsRef<str>,
        source: SigSource,
        config: SigConfig,
        palette_index: usize,
        width: usize,
    ) -> Result<Self> {
        config.validate()?;
        let color = config
            .color
            .unwrap_or_else(|| Color::palette(palette_index));
        let filter = LowPass::new(config.filter_alpha).expect("alpha validated");
        let acc = Arc::new(Mutex::new(EventAccumulator::new(config.aggregation)));
        Ok(Signal {
            name: intern(name.as_ref()),
            source,
            config,
            color,
            filter,
            acc,
            history: History::new(width),
            last_raw: None,
            ticks: 0,
        })
    }

    /// Returns the signal name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Returns the interned name handle (cloning it is a refcount bump;
    /// the scope uses it to key its routing table).
    pub fn interned_name(&self) -> &Arc<str> {
        &self.name
    }

    /// Returns the resolved trace color.
    pub fn color(&self) -> Color {
        self.color
    }

    /// Returns the display configuration.
    pub fn config(&self) -> &SigConfig {
        &self.config
    }

    /// Replaces the display configuration (the Figure 2 parameter
    /// window's OK button).
    ///
    /// Changing α re-seeds the filter; changing aggregation clears held
    /// event state.
    ///
    /// # Errors
    ///
    /// Returns a config validation error; the old config stays in
    /// effect.
    pub fn set_config(&mut self, config: SigConfig) -> Result<()> {
        config.validate()?;
        if config.filter_alpha != self.config.filter_alpha {
            self.filter = LowPass::new(config.filter_alpha).expect("alpha validated");
        }
        if config.aggregation != self.config.aggregation {
            self.acc.lock().set_aggregation(config.aggregation);
        }
        if let Some(c) = config.color {
            self.color = c;
        }
        self.config = config;
        Ok(())
    }

    /// Toggles visibility (left-click on the signal name, §2).
    pub fn toggle_hidden(&mut self) -> bool {
        self.config.hidden = !self.config.hidden;
        self.config.hidden
    }

    /// Toggles the Value readout (the Value button, §2).
    pub fn toggle_show_value(&mut self) -> bool {
        self.config.show_value = !self.config.show_value;
        self.config.show_value
    }

    /// Returns the event sink for this signal.
    ///
    /// Pushing events switches a polled signal to event-driven display
    /// (the source is no longer sampled).
    pub fn event_sink(&self) -> EventSink {
        EventSink {
            acc: Arc::clone(&self.acc),
        }
    }

    /// Returns the source type tag (`INTEGER`, `FUNC`, `BUFFER`, ...).
    pub fn source_type(&self) -> &'static str {
        self.source.type_name()
    }

    /// True if this signal's data comes from the scope-wide buffer.
    pub fn is_buffered(&self) -> bool {
        self.source.is_buffered()
    }

    /// Advances the signal by one polling period.
    ///
    /// `buffered` carries the values drained from the scope buffer for
    /// this signal this interval (empty for non-buffer signals). The
    /// sample passes through aggregation (event paths) and the low-pass
    /// filter before landing in the history.
    pub fn tick(&mut self, period: TimeDelta, buffered: &[f64]) {
        self.ticks += 1;
        let raw: Option<f64> = if self.source.is_buffered() {
            let mut acc = self.acc.lock();
            for &v in buffered {
                acc.push(v);
            }
            acc.finish_interval(period)
        } else {
            let mut acc = self.acc.lock();
            if acc.total_events() > 0 {
                // The application is pushing events: aggregate them.
                acc.finish_interval(period)
            } else {
                drop(acc);
                self.source.sample()
            }
        };
        if let Some(v) = raw {
            self.last_raw = Some(v);
            let filtered = self.filter.feed(v);
            self.history.push(Some(filtered));
        } else {
            self.history.push(None);
        }
    }

    /// Repeats the last column `n` times — how the scope "advances the
    /// scope refresh appropriately" after lost timeouts (§4.5).
    pub fn advance_held(&mut self, n: u64) {
        let held = self.history.latest().unwrap_or(None);
        for _ in 0..n {
            self.history.push(held);
        }
    }

    /// The most recent raw sample (the Value button readout).
    pub fn value_readout(&self) -> Option<f64> {
        self.last_raw
    }

    /// The display history (one column per pixel).
    pub fn history(&self) -> &History {
        &self.history
    }

    /// Ticks processed so far.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Resizes the history to a new canvas width.
    pub fn set_width(&mut self, width: usize) {
        self.history.set_capacity(width);
    }

    /// Clears history, filter, and readout state.
    pub fn reset(&mut self) {
        self.history.clear();
        self.filter.reset();
        self.last_raw = None;
        self.ticks = 0;
    }

    /// Computes the frequency-domain view over the last `n` samples
    /// (§3.1: signals "can be displayed in the time or frequency
    /// domain").
    ///
    /// `n` must be a power of two; fewer stored samples than `n` are
    /// zero-padded at the front so early spectra are still available.
    ///
    /// # Errors
    ///
    /// Returns an [`gdsp::FftError`] for invalid `n`.
    pub fn spectrum(
        &self,
        n: usize,
        config: SpectrumConfig,
    ) -> std::result::Result<Vec<Bin>, gdsp::FftError> {
        let mut vals = self.history.last_values(n);
        if vals.len() < n {
            let mut padded = vec![0.0; n - vals.len()];
            padded.append(&mut vals);
            vals = padded;
        }
        power_spectrum(&vals, config)
    }

    /// Directly pushes a display sample, bypassing source and filter —
    /// used by playback mode (§3.1), which replays already-recorded
    /// values.
    pub(crate) fn push_playback(&mut self, v: Option<f64>) {
        if let Some(x) = v {
            self.last_raw = Some(x);
        }
        self.history.push(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::Aggregation;
    use crate::value::IntVar;

    const P: TimeDelta = TimeDelta::from_millis(50);

    fn sig(source: SigSource, config: SigConfig) -> Signal {
        Signal::new("s", source, config, 0, 16).unwrap()
    }

    #[test]
    fn polled_signal_samples_each_tick() {
        let v = IntVar::new(1);
        let mut s = sig(v.clone().into(), SigConfig::default());
        s.tick(P, &[]);
        v.set(2);
        s.tick(P, &[]);
        assert_eq!(s.history().to_vec(), vec![Some(1.0), Some(2.0)]);
        assert_eq!(s.value_readout(), Some(2.0));
        assert_eq!(s.ticks(), 2);
    }

    #[test]
    fn filter_applies_to_display_not_readout() {
        let v = IntVar::new(0);
        let mut s = sig(v.clone().into(), SigConfig::default().with_filter(0.5));
        s.tick(P, &[]);
        v.set(10);
        s.tick(P, &[]);
        // y1 = 0.5*0 + 0.5*10 = 5, but the raw readout shows 10.
        assert_eq!(s.history().latest(), Some(Some(5.0)));
        assert_eq!(s.value_readout(), Some(10.0));
    }

    #[test]
    fn event_sink_overrides_polling() {
        let v = IntVar::new(99);
        let mut s = sig(
            v.into(),
            SigConfig::default().with_aggregation(Aggregation::Sum),
        );
        let sink = s.event_sink();
        sink.push(2.0);
        sink.push(3.0);
        s.tick(P, &[]);
        assert_eq!(s.history().latest(), Some(Some(5.0)), "sum of events");
        // Quiet interval: Sum reports 0, not the polled 99.
        s.tick(P, &[]);
        assert_eq!(s.history().latest(), Some(Some(0.0)));
    }

    #[test]
    fn pure_event_signal_gaps_before_first_event() {
        let mut s = sig(
            SigSource::Events,
            SigConfig::default().with_aggregation(Aggregation::Maximum),
        );
        s.tick(P, &[]);
        assert_eq!(s.history().latest(), Some(None), "no events yet: gap");
        let sink = s.event_sink();
        sink.push(7.0);
        sink.push(4.0);
        s.tick(P, &[]);
        assert_eq!(s.history().latest(), Some(Some(7.0)));
        // Hold across the quiet interval.
        s.tick(P, &[]);
        assert_eq!(s.history().latest(), Some(Some(7.0)));
    }

    #[test]
    fn buffered_signal_consumes_drained_values() {
        let mut s = sig(SigSource::Buffer, SigConfig::default());
        s.tick(P, &[1.0, 2.0, 3.0]);
        // Default SampleHold aggregation: last value in the interval.
        assert_eq!(s.history().latest(), Some(Some(3.0)));
        s.tick(P, &[]);
        assert_eq!(s.history().latest(), Some(Some(3.0)), "held");
    }

    #[test]
    fn advance_held_repeats_last_column() {
        let v = IntVar::new(4);
        let mut s = sig(v.into(), SigConfig::default());
        s.tick(P, &[]);
        s.advance_held(3);
        assert_eq!(s.history().len(), 4);
        assert_eq!(s.history().to_vec(), vec![Some(4.0); 4]);
    }

    #[test]
    fn set_config_revalidates_and_reseeds() {
        let v = IntVar::new(1);
        let mut s = sig(v.into(), SigConfig::default());
        s.tick(P, &[]);
        assert!(s.set_config(SigConfig::default().with_filter(2.0)).is_err());
        s.set_config(SigConfig::default().with_filter(0.9).with_color(Color::RED))
            .unwrap();
        assert_eq!(s.color(), Color::RED);
        assert_eq!(s.config().filter_alpha, 0.9);
    }

    #[test]
    fn toggles() {
        let mut s = sig(IntVar::new(0).into(), SigConfig::default());
        assert!(s.toggle_hidden());
        assert!(!s.toggle_hidden());
        assert!(s.toggle_show_value());
    }

    #[test]
    fn spectrum_zero_pads_short_history() {
        let v = IntVar::new(3);
        let mut s = sig(v.into(), SigConfig::default());
        s.tick(P, &[]);
        let bins = s.spectrum(16, SpectrumConfig::default()).unwrap();
        assert_eq!(bins.len(), 9);
        assert!(s.spectrum(15, SpectrumConfig::default()).is_err());
    }

    #[test]
    fn reset_clears_state() {
        let v = IntVar::new(5);
        let mut s = sig(v.into(), SigConfig::default().with_filter(0.5));
        s.tick(P, &[]);
        s.reset();
        assert!(s.history().is_empty());
        assert_eq!(s.value_readout(), None);
        assert_eq!(s.ticks(), 0);
    }

    #[test]
    fn palette_assignment_when_no_color() {
        let s = Signal::new("a", IntVar::new(0).into(), SigConfig::default(), 2, 8).unwrap();
        assert_eq!(s.color(), Color::palette(2));
    }
}
