//! Shared observable variables — the Rust equivalent of "a word of
//! memory whose value is polled" (§1).
//!
//! The C gscope takes a raw pointer to an `int` (or `short`, `gboolean`,
//! `float`) living in the application and reads it every polling period.
//! In safe Rust the application and the scope instead share an atomic
//! cell: the application stores into it from any thread, the scope loads
//! from it on each tick. The cost stays a single relaxed atomic access,
//! preserving the paper's "polling a word of memory" overhead profile.

use std::sync::atomic::{AtomicBool, AtomicI16, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// A shared `i64` observable, the `INTEGER` signal type (§3.1).
#[derive(Clone, Debug, Default)]
pub struct IntVar(Arc<AtomicI64>);

impl IntVar {
    /// Creates a variable with an initial value.
    pub fn new(v: i64) -> Self {
        IntVar(Arc::new(AtomicI64::new(v)))
    }

    /// Stores a new value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Loads the current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Adds `delta` and returns the new value.
    pub fn add(&self, delta: i64) -> i64 {
        self.0.fetch_add(delta, Ordering::Relaxed) + delta
    }
}

/// A shared `i16` observable, the `SHORT` signal type (§3.1).
#[derive(Clone, Debug, Default)]
pub struct ShortVar(Arc<AtomicI16>);

impl ShortVar {
    /// Creates a variable with an initial value.
    pub fn new(v: i16) -> Self {
        ShortVar(Arc::new(AtomicI16::new(v)))
    }

    /// Stores a new value.
    pub fn set(&self, v: i16) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Loads the current value.
    pub fn get(&self) -> i16 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A shared `bool` observable, the `BOOLEAN` signal type (§3.1).
///
/// Displays as 0.0 / 1.0.
#[derive(Clone, Debug, Default)]
pub struct BoolVar(Arc<AtomicBool>);

impl BoolVar {
    /// Creates a variable with an initial value.
    pub fn new(v: bool) -> Self {
        BoolVar(Arc::new(AtomicBool::new(v)))
    }

    /// Stores a new value.
    pub fn set(&self, v: bool) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Loads the current value.
    pub fn get(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }

    /// Flips the value, returning the new state.
    pub fn toggle(&self) -> bool {
        !self.0.fetch_xor(true, Ordering::Relaxed)
    }
}

/// A shared `f64` observable, the `FLOAT` signal type (§3.1).
///
/// Stored as the bit pattern in an `AtomicU64`, so reads and writes stay
/// lock-free.
#[derive(Clone, Debug)]
pub struct FloatVar(Arc<AtomicU64>);

impl FloatVar {
    /// Creates a variable with an initial value.
    pub fn new(v: f64) -> Self {
        FloatVar(Arc::new(AtomicU64::new(v.to_bits())))
    }

    /// Stores a new value.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Loads the current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

impl Default for FloatVar {
    fn default() -> Self {
        FloatVar::new(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_var_set_get_add() {
        let v = IntVar::new(5);
        assert_eq!(v.get(), 5);
        v.set(-3);
        assert_eq!(v.get(), -3);
        assert_eq!(v.add(10), 7);
        assert_eq!(v.get(), 7);
    }

    #[test]
    fn clones_share_storage() {
        let a = IntVar::new(0);
        let b = a.clone();
        b.set(99);
        assert_eq!(a.get(), 99);
        let f = FloatVar::new(0.0);
        let g = f.clone();
        g.set(2.5);
        assert_eq!(f.get(), 2.5);
    }

    #[test]
    fn bool_var_toggles() {
        let v = BoolVar::new(false);
        assert!(v.toggle());
        assert!(v.get());
        assert!(!v.toggle());
    }

    #[test]
    fn float_var_preserves_exact_bits() {
        let v = FloatVar::new(0.1 + 0.2);
        assert_eq!(v.get(), 0.1 + 0.2);
        v.set(f64::MIN_POSITIVE);
        assert_eq!(v.get(), f64::MIN_POSITIVE);
    }

    #[test]
    fn short_var_wraps_range() {
        let v = ShortVar::new(i16::MAX);
        assert_eq!(v.get(), i16::MAX);
        v.set(i16::MIN);
        assert_eq!(v.get(), i16::MIN);
    }

    #[test]
    fn cross_thread_visibility() {
        let v = IntVar::new(0);
        let v2 = v.clone();
        let h = std::thread::spawn(move || {
            for i in 1..=1000 {
                v2.set(i);
            }
        });
        h.join().unwrap();
        assert_eq!(v.get(), 1000);
    }
}
