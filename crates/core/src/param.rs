//! Application/control parameters (§3.2, Figure 3).
//!
//! Signals can only be read; control parameters "can be read and written
//! also" — they let the person at the scope *modify system behaviour in
//! real time* (one of the paper's design goals). A [`Parameter`] binds a
//! name and legal range to a shared variable the application reads; a
//! [`ParamSet`] is the application-wide registry shown in the control
//! parameters window.

use std::sync::Arc;

use parking_lot::Mutex;

use crate::error::{Result, ScopeError};
use crate::value::{BoolVar, FloatVar, IntVar};

/// A typed parameter value.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ParamValue {
    /// Integer parameter value.
    Int(i64),
    /// Floating-point parameter value.
    Float(f64),
    /// Boolean parameter value.
    Bool(bool),
}

impl ParamValue {
    /// Converts to `f64` (booleans become 0/1).
    pub fn as_f64(self) -> f64 {
        match self {
            ParamValue::Int(v) => v as f64,
            ParamValue::Float(v) => v,
            ParamValue::Bool(v) => {
                if v {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }

    /// The type name, for error messages and UIs.
    pub fn type_name(self) -> &'static str {
        match self {
            ParamValue::Int(_) => "int",
            ParamValue::Float(_) => "float",
            ParamValue::Bool(_) => "bool",
        }
    }
}

/// The shared variable a parameter reads and writes.
#[derive(Clone, Debug)]
pub enum ParamBinding {
    /// Bound to an [`IntVar`].
    Int(IntVar),
    /// Bound to a [`FloatVar`].
    Float(FloatVar),
    /// Bound to a [`BoolVar`].
    Bool(BoolVar),
}

impl ParamBinding {
    fn type_name(&self) -> &'static str {
        match self {
            ParamBinding::Int(_) => "int",
            ParamBinding::Float(_) => "float",
            ParamBinding::Bool(_) => "bool",
        }
    }
}

/// One named, range-checked, read/write control parameter.
///
/// # Examples
///
/// ```
/// use gscope::{IntVar, Parameter, ParamValue};
///
/// // The paper's elephants knob: writable from the scope window,
/// // readable by the application.
/// let elephants = IntVar::new(8);
/// let p = Parameter::int("elephants", elephants.clone(), 0, 40);
/// p.set(ParamValue::Int(16)).unwrap();
/// assert_eq!(elephants.get(), 16);
/// assert!(p.set(ParamValue::Int(99)).is_err(), "out of range");
/// ```
#[derive(Clone, Debug)]
pub struct Parameter {
    name: String,
    binding: ParamBinding,
    min: f64,
    max: f64,
    /// GUI spinner increment.
    step: f64,
}

impl Parameter {
    /// Creates an integer parameter bound to `var`, legal in
    /// `[min, max]`.
    ///
    /// # Panics
    ///
    /// Panics if `min > max`.
    pub fn int(name: impl Into<String>, var: IntVar, min: i64, max: i64) -> Self {
        assert!(min <= max, "parameter range inverted");
        Parameter {
            name: name.into(),
            binding: ParamBinding::Int(var),
            min: min as f64,
            max: max as f64,
            step: 1.0,
        }
    }

    /// Creates a float parameter bound to `var`, legal in `[min, max]`.
    ///
    /// # Panics
    ///
    /// Panics if `min > max` or the bounds are not finite.
    pub fn float(name: impl Into<String>, var: FloatVar, min: f64, max: f64) -> Self {
        assert!(
            min.is_finite() && max.is_finite() && min <= max,
            "parameter range invalid"
        );
        Parameter {
            name: name.into(),
            binding: ParamBinding::Float(var),
            min,
            max,
            step: (max - min) / 100.0,
        }
    }

    /// Creates a boolean parameter bound to `var`.
    pub fn bool(name: impl Into<String>, var: BoolVar) -> Self {
        Parameter {
            name: name.into(),
            binding: ParamBinding::Bool(var),
            min: 0.0,
            max: 1.0,
            step: 1.0,
        }
    }

    /// Sets the GUI spinner increment.
    pub fn with_step(mut self, step: f64) -> Self {
        self.step = step;
        self
    }

    /// Returns the parameter name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Returns `(min, max)` as floats.
    pub fn range(&self) -> (f64, f64) {
        (self.min, self.max)
    }

    /// Returns the spinner increment.
    pub fn step(&self) -> f64 {
        self.step
    }

    /// Reads the current value.
    pub fn get(&self) -> ParamValue {
        match &self.binding {
            ParamBinding::Int(v) => ParamValue::Int(v.get()),
            ParamBinding::Float(v) => ParamValue::Float(v.get()),
            ParamBinding::Bool(v) => ParamValue::Bool(v.get()),
        }
    }

    /// Writes a new value.
    ///
    /// # Errors
    ///
    /// Returns [`ScopeError::TypeMismatch`] if the value's type does not
    /// match the binding, or [`ScopeError::OutOfRange`] if it is outside
    /// the parameter's range.
    pub fn set(&self, value: ParamValue) -> Result<()> {
        let f = value.as_f64();
        if !(self.min..=self.max).contains(&f) {
            return Err(ScopeError::OutOfRange {
                what: "parameter",
                value: f,
            });
        }
        match (&self.binding, value) {
            (ParamBinding::Int(var), ParamValue::Int(v)) => var.set(v),
            (ParamBinding::Float(var), ParamValue::Float(v)) => var.set(v),
            (ParamBinding::Bool(var), ParamValue::Bool(v)) => var.set(v),
            (binding, _) => {
                return Err(ScopeError::TypeMismatch {
                    name: self.name.clone(),
                    expected: binding.type_name(),
                })
            }
        }
        Ok(())
    }

    /// Writes from an `f64`, coercing to the bound type (rounding for
    /// ints, `>= 0.5` for bools) — how a GUI slider would set it.
    ///
    /// # Errors
    ///
    /// Returns [`ScopeError::OutOfRange`] if outside the range.
    pub fn set_f64(&self, value: f64) -> Result<()> {
        if !value.is_finite() || !(self.min..=self.max).contains(&value) {
            return Err(ScopeError::OutOfRange {
                what: "parameter",
                value,
            });
        }
        match &self.binding {
            ParamBinding::Int(var) => var.set(value.round() as i64),
            ParamBinding::Float(var) => var.set(value),
            ParamBinding::Bool(var) => var.set(value >= 0.5),
        }
        Ok(())
    }
}

type ChangeListener = Box<dyn FnMut(&str, ParamValue) + Send>;

/// The application-wide registry of control parameters (Figure 3).
///
/// Cloneable and thread-safe; the scope GUI and the application share
/// one set.
#[derive(Clone, Default)]
pub struct ParamSet {
    inner: Arc<Mutex<ParamSetInner>>,
}

#[derive(Default)]
struct ParamSetInner {
    params: Vec<Parameter>,
    listeners: Vec<ChangeListener>,
}

impl ParamSet {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a parameter.
    ///
    /// # Errors
    ///
    /// Returns [`ScopeError::DuplicateParameter`] if the name is taken.
    pub fn add(&self, param: Parameter) -> Result<()> {
        let mut inner = self.inner.lock();
        if inner.params.iter().any(|p| p.name() == param.name()) {
            return Err(ScopeError::DuplicateParameter(param.name().into()));
        }
        inner.params.push(param);
        Ok(())
    }

    /// Removes a parameter by name.
    ///
    /// # Errors
    ///
    /// Returns [`ScopeError::UnknownParameter`] if absent.
    pub fn remove(&self, name: &str) -> Result<()> {
        let mut inner = self.inner.lock();
        let before = inner.params.len();
        inner.params.retain(|p| p.name() != name);
        if inner.params.len() == before {
            return Err(ScopeError::UnknownParameter(name.into()));
        }
        Ok(())
    }

    /// Returns the number of registered parameters.
    pub fn len(&self) -> usize {
        self.inner.lock().params.len()
    }

    /// Returns true if no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reads a parameter by name.
    ///
    /// # Errors
    ///
    /// Returns [`ScopeError::UnknownParameter`] if absent.
    pub fn get(&self, name: &str) -> Result<ParamValue> {
        let inner = self.inner.lock();
        inner
            .params
            .iter()
            .find(|p| p.name() == name)
            .map(|p| p.get())
            .ok_or_else(|| ScopeError::UnknownParameter(name.into()))
    }

    /// Writes a parameter by name, notifying change listeners.
    ///
    /// # Errors
    ///
    /// Returns [`ScopeError::UnknownParameter`] if absent, or the errors
    /// of [`Parameter::set`].
    pub fn set(&self, name: &str, value: ParamValue) -> Result<()> {
        let mut inner = self.inner.lock();
        let param = inner
            .params
            .iter()
            .find(|p| p.name() == name)
            .ok_or_else(|| ScopeError::UnknownParameter(name.into()))?
            .clone();
        param.set(value)?;
        for l in &mut inner.listeners {
            l(name, value);
        }
        Ok(())
    }

    /// Registers a callback invoked after every successful
    /// [`ParamSet::set`].
    pub fn on_change<F>(&self, f: F)
    where
        F: FnMut(&str, ParamValue) + Send + 'static,
    {
        self.inner.lock().listeners.push(Box::new(f));
    }

    /// Snapshot of `(name, value, (min, max), step)` rows for display
    /// (the Figure 3 window contents).
    pub fn snapshot(&self) -> Vec<(String, ParamValue, (f64, f64), f64)> {
        self.inner
            .lock()
            .params
            .iter()
            .map(|p| (p.name().to_owned(), p.get(), p.range(), p.step()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_parameter_read_write() {
        let elephants = IntVar::new(8);
        let p = Parameter::int("elephants", elephants.clone(), 0, 40);
        assert_eq!(p.get(), ParamValue::Int(8));
        p.set(ParamValue::Int(16)).unwrap();
        assert_eq!(elephants.get(), 16, "write reaches the application");
        elephants.set(20);
        assert_eq!(p.get(), ParamValue::Int(20), "application writes visible");
    }

    #[test]
    fn range_is_enforced() {
        let p = Parameter::int("n", IntVar::new(0), 0, 10);
        assert!(p.set(ParamValue::Int(11)).is_err());
        assert!(p.set(ParamValue::Int(-1)).is_err());
        assert!(p.set_f64(9.6).is_ok(), "rounds to 10, inside range");
        assert!(p.set_f64(f64::NAN).is_err());
    }

    #[test]
    fn type_mismatch_is_rejected() {
        let p = Parameter::float("gain", FloatVar::new(1.0), 0.0, 2.0);
        let err = p.set(ParamValue::Int(1)).unwrap_err();
        assert!(matches!(err, ScopeError::TypeMismatch { .. }));
    }

    #[test]
    fn set_f64_coerces() {
        let iv = IntVar::new(0);
        Parameter::int("i", iv.clone(), 0, 100)
            .set_f64(41.7)
            .unwrap();
        assert_eq!(iv.get(), 42);
        let bv = BoolVar::new(false);
        Parameter::bool("b", bv.clone()).set_f64(0.9).unwrap();
        assert!(bv.get());
    }

    #[test]
    fn param_set_registry() {
        let set = ParamSet::new();
        set.add(Parameter::int("elephants", IntVar::new(8), 0, 40))
            .unwrap();
        set.add(Parameter::bool("ecn", BoolVar::new(false)))
            .unwrap();
        assert_eq!(set.len(), 2);
        assert!(set
            .add(Parameter::int("elephants", IntVar::new(0), 0, 1))
            .is_err());
        assert_eq!(set.get("elephants").unwrap(), ParamValue::Int(8));
        set.set("elephants", ParamValue::Int(16)).unwrap();
        assert_eq!(set.get("elephants").unwrap(), ParamValue::Int(16));
        assert!(set.get("nope").is_err());
        set.remove("ecn").unwrap();
        assert!(set.remove("ecn").is_err());
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn change_listener_fires_on_set() {
        let set = ParamSet::new();
        set.add(Parameter::int("n", IntVar::new(0), 0, 9)).unwrap();
        let seen = Arc::new(Mutex::new(Vec::new()));
        let seen2 = Arc::clone(&seen);
        set.on_change(move |name, v| {
            seen2.lock().push((name.to_owned(), v.as_f64()));
        });
        set.set("n", ParamValue::Int(3)).unwrap();
        set.set("n", ParamValue::Int(5)).unwrap();
        let _ = set.set("n", ParamValue::Int(99)); // out of range, no event
        assert_eq!(
            *seen.lock(),
            vec![("n".to_owned(), 3.0), ("n".to_owned(), 5.0)]
        );
    }

    #[test]
    fn snapshot_rows_match_figure3_shape() {
        let set = ParamSet::new();
        set.add(Parameter::int("elephants", IntVar::new(8), 0, 40))
            .unwrap();
        set.add(Parameter::float("alpha", FloatVar::new(0.5), 0.0, 1.0).with_step(0.05))
            .unwrap();
        let rows = set.snapshot();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].0, "elephants");
        assert_eq!(rows[1].2, (0.0, 1.0));
        assert_eq!(rows[1].3, 0.05);
    }
}
