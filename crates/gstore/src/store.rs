//! The append side: a directory of segments with rotation, retention,
//! and min/max downsampling into a coarser tier.
//!
//! A store directory holds `seg-NNNNNNNN-tT.gseg` files. Tier 0 is the
//! full-rate log; tier 1 holds min/max pairs per `(signal, bucket)`
//! produced when tier-0 segments are evicted by the retention policy,
//! mirroring the renderer's `decimate_minmax` semantics: an evicted
//! stretch of history keeps its envelope (two frames per bucket, equal
//! timestamps — legal under §3.3's non-decreasing rule) instead of
//! vanishing.

use std::collections::BTreeMap;
use std::fs::File;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use gel::{TimeDelta, TimeStamp};
use gscope::{Result, ScopeError, TupleSink};
use gtel::{Counter, Gauge, Registry};

use crate::segment::{
    parse_segment_file_name, read_block_payload, read_seg_header, recover_segment, scan_headers,
    segment_file_name, SegmentWriter,
};

/// Compaction scratch: `(bucket_start_us, signal)` → running
/// `(min, max)` over the frames that fell in the bucket.
type EnvelopeBuckets = BTreeMap<(u64, Option<Arc<str>>), (f64, f64)>;

/// Tuning knobs for a [`Store`]. The defaults favor scope recording:
/// ~16 KiB blocks (about a thousand frames of index granularity, one
/// write syscall each) and 1 MiB segments (the retention / compaction
/// unit).
#[derive(Clone, Debug)]
pub struct StoreConfig {
    /// Flush the open block once its payload reaches this many bytes.
    pub block_bytes: usize,
    /// ... or once it holds this many frames, whichever comes first.
    /// This bounds both seek granularity and torn-tail loss.
    pub block_frames: u32,
    /// Roll to a new segment once the current one reaches this size.
    pub segment_bytes: u64,
    /// Evict the oldest tier-0 segments once their total size exceeds
    /// this budget (`None` = unbounded).
    pub retain_bytes: Option<u64>,
    /// Evict tier-0 segments whose newest frame is older than this,
    /// measured against the newest data time in the store — data time,
    /// not wall time, so replayed recordings behave deterministically.
    pub retain_age: Option<TimeDelta>,
    /// Bucket width for tier-1 min/max downsampling of evicted data.
    pub compact_bucket: TimeDelta,
    /// `fsync` after every block write (durable against power loss,
    /// not just process crash). Off by default: the paper's tool is a
    /// debugging aid, and a torn tail already loses at most one frame.
    pub fsync: bool,
    /// Maintain `.gidx` search sidecars: per-name envelope stats on
    /// the append path, posting lists written once per segment seal.
    /// On by default; turning it off shaves the last few percent off
    /// ingest and costs nothing but a deferred rebuild — queries
    /// reconstruct any missing sidecar from the segment on first use.
    pub index_sidecars: bool,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            block_bytes: 16 * 1024,
            block_frames: 1024,
            segment_bytes: 1 << 20,
            retain_bytes: None,
            retain_age: None,
            compact_bucket: TimeDelta::from_secs(1),
            fsync: false,
            index_sidecars: true,
        }
    }
}

/// Catalog entry for one sealed segment.
#[derive(Clone, Debug)]
pub struct SegmentInfo {
    /// Path of the segment file.
    pub path: PathBuf,
    /// Monotonic sequence number (file-name order == time order).
    pub seq: u64,
    /// Downsampling tier (0 = full rate, 1 = min/max buckets).
    pub tier: u16,
    /// File size in bytes.
    pub bytes: u64,
    /// Time of the first frame, if the segment has any.
    pub first_us: Option<u64>,
    /// Time of the last frame, if known (sealed segments only).
    pub last_us: Option<u64>,
    /// Frame count from block headers.
    pub frames: u64,
}

/// Running totals for one [`Store`], mirrored into gtel.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Frames accepted by [`Store::append`].
    pub frames_appended: u64,
    /// Bytes written to segment files (headers + blocks).
    pub bytes_written: u64,
    /// Blocks flushed to disk.
    pub blocks_flushed: u64,
    /// Segments sealed and rolled.
    pub segments_rolled: u64,
    /// Opens that had to truncate a torn or corrupt tail.
    pub recovery_truncations: u64,
    /// Frames salvaged out of torn tail blocks on open.
    pub salvaged_frames: u64,
    /// Complete blocks dropped for CRC mismatch on open.
    pub dropped_blocks: u64,
    /// Retention passes that downsampled at least one segment.
    pub compaction_runs: u64,
    /// Tier-0 segments evicted by retention.
    pub segments_evicted: u64,
}

/// Cached gtel handles for one [`Store`].
#[derive(Debug)]
pub struct StoreTelemetry {
    registry: Arc<Registry>,
    /// `store.frames` — frames appended.
    pub frames: Arc<Counter>,
    /// `store.bytes` — bytes written to segment files.
    pub bytes: Arc<Counter>,
    /// `store.segments.rolled` — segments sealed and rolled.
    pub segments_rolled: Arc<Counter>,
    /// `store.segments.live` — sealed tier-0 segments on disk.
    pub segments_live: Arc<Gauge>,
    /// `store.recovery.truncations` — torn/corrupt tails cut on open.
    pub recovery_truncations: Arc<Counter>,
    /// `store.compaction.runs` — retention passes that downsampled.
    pub compaction_runs: Arc<Counter>,
}

impl StoreTelemetry {
    /// Resolves the store's metric handles from `registry`.
    pub fn new(registry: Arc<Registry>) -> Self {
        StoreTelemetry {
            frames: registry.counter("store.frames"),
            bytes: registry.counter("store.bytes"),
            segments_rolled: registry.counter("store.segments.rolled"),
            segments_live: registry.gauge("store.segments.live"),
            recovery_truncations: registry.counter("store.recovery.truncations"),
            compaction_runs: registry.counter("store.compaction.runs"),
            registry,
        }
    }

    /// The registry the handles live in.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }
}

impl Default for StoreTelemetry {
    fn default() -> Self {
        StoreTelemetry::new(Registry::shared())
    }
}

/// Summary of one retention pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RetentionReport {
    /// Tier-0 segments evicted.
    pub evicted: u64,
    /// Tier-0 frames folded into tier-1 buckets.
    pub frames_compacted: u64,
    /// `(signal, bucket)` envelopes written to tier 1.
    pub buckets_written: u64,
}

/// Scans `dir` and catalogs its segment files, newest last.
///
/// Sealed segments get exact `first_us`/`last_us`/`frames` by reading
/// block headers (sparse) and decoding only the final block.
///
/// # Errors
///
/// Propagates directory / file I/O errors; unreadable or foreign files
/// are skipped, not fatal (the store must always open).
pub fn catalog_segments(dir: &Path) -> std::io::Result<Vec<SegmentInfo>> {
    let mut found = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some((seq, tier)) = parse_segment_file_name(name) else {
            continue;
        };
        let path = entry.path();
        let bytes = entry.metadata()?.len();
        let mut info = SegmentInfo {
            path,
            seq,
            tier,
            bytes,
            first_us: None,
            last_us: None,
            frames: 0,
        };
        if let Ok(mut file) = File::open(&info.path) {
            if read_seg_header(&mut file).is_ok() {
                if let Ok(scan) = scan_headers(&mut file) {
                    info.first_us = scan.blocks.first().map(|b| b.first_us);
                    info.frames = scan.blocks.iter().map(|b| u64::from(b.frames)).sum();
                    if let Some(last) = scan.blocks.last() {
                        if let Ok(Some(payload)) = read_block_payload(&mut file, last) {
                            let (frames, _) =
                                crate::segment::decode_records(&payload, last.first_us);
                            info.last_us = frames.last().map(|f| f.time_us);
                        }
                    }
                }
            }
        }
        found.push(info);
    }
    found.sort_by_key(|s| (s.tier, s.seq));
    Ok(found)
}

/// A writable tuple store rooted at one directory.
///
/// `Store` implements [`TupleSink`], so it plugs in anywhere a text
/// recorder does — `Scope::start_recording_sink`, the network server's
/// tee, or `gtool record`. Appends are buffered into blocks; call
/// [`Store::flush`] to make everything written so far visible to
/// readers (and durable against process crash).
#[derive(Debug)]
pub struct Store {
    dir: PathBuf,
    cfg: StoreConfig,
    writer: Option<SegmentWriter>,
    /// Sequence number for the *next* segment created.
    next_seq: u64,
    /// Sealed tier-0 segments, oldest first.
    sealed: Vec<SegmentInfo>,
    /// Open tier-1 writer for compacted envelopes, created lazily.
    tier1: Option<SegmentWriter>,
    tier1_last_us: Option<u64>,
    /// Time of the last accepted frame (monotonicity gate).
    last_us: Option<u64>,
    /// First frame time of the active segment.
    active_first_us: Option<u64>,
    /// Frames in the active segment.
    active_frames: u64,
    /// Frames already published to the telemetry counter (telemetry is
    /// batched to block boundaries; see `publish_frames`).
    frames_reported: u64,
    stats: StoreStats,
    telemetry: StoreTelemetry,
}

impl Store {
    /// Opens (or creates) the store at `dir` and recovers its tail:
    /// the newest tier-0 segment is verified block-by-block, truncated
    /// past the last trustworthy frame, and any complete frames
    /// decoded from a torn tail block are re-appended. This never
    /// refuses to open a damaged directory — damage only shrinks it.
    ///
    /// # Errors
    ///
    /// [`ScopeError::Io`] on directory or file I/O failure.
    pub fn open(dir: impl Into<PathBuf>, cfg: StoreConfig) -> Result<Store> {
        let dir = dir.into();
        // Rolls happen at block boundaries, so a block larger than the
        // segment budget would make `segment_bytes` unreachable: clamp
        // it (a 1 KiB-segment config must not buffer 16 KiB blocks).
        let mut cfg = cfg;
        cfg.block_bytes = cfg.block_bytes.min(cfg.segment_bytes.max(1) as usize);
        std::fs::create_dir_all(&dir).map_err(ScopeError::Io)?;
        let mut catalog = catalog_segments(&dir).map_err(ScopeError::Io)?;
        let next_seq = catalog.iter().map(|s| s.seq + 1).max().unwrap_or(0);
        let tier1_last_us = catalog
            .iter()
            .filter(|s| s.tier == 1)
            .filter_map(|s| s.last_us)
            .max();
        let mut store = Store {
            dir,
            cfg,
            writer: None,
            next_seq,
            sealed: Vec::new(),
            tier1: None,
            tier1_last_us,
            last_us: None,
            active_first_us: None,
            active_frames: 0,
            frames_reported: 0,
            stats: StoreStats::default(),
            telemetry: StoreTelemetry::default(),
        };
        // Newest tier-0 segment is the append point: recover + resume
        // — unless the glod pyramid already folded it. A
        // watermark-covered segment is immutable (its envelope bands
        // are on disk at tier 1+), so growing it would silently
        // diverge from the pyramid; roll to a fresh seq instead.
        let wm = crate::lod::watermark(&store.dir, 1);
        let active = catalog
            .iter()
            .rposition(|s| s.tier == 0 && wm < Some(s.seq))
            .map(|i| catalog.remove(i));
        store.sealed = catalog.into_iter().filter(|s| s.tier == 0).collect();
        store.last_us = store.sealed.iter().filter_map(|s| s.last_us).max();
        if let Some(active) = active {
            let rec = recover_segment(&active.path).map_err(ScopeError::Io)?;
            if rec.truncated {
                store.stats.recovery_truncations += 1;
                store.stats.dropped_blocks += u64::from(rec.dropped_blocks);
                store.telemetry.recovery_truncations.inc();
            }
            if rec.valid_len == 0 {
                // Not even the header survived; start the file over.
                std::fs::remove_file(&active.path).map_err(ScopeError::Io)?;
                let _ = std::fs::remove_file(crate::index::index_path(&active.path));
                store.next_seq = store.next_seq.max(active.seq);
            } else {
                let mut w =
                    SegmentWriter::resume(active.path.clone(), rec.valid_len, store.cfg.fsync)
                        .map_err(ScopeError::Io)?;
                w.set_index_enabled(store.cfg.index_sidecars);
                store.active_first_us = active.first_us;
                store.active_frames = rec.frames;
                store.last_us = store
                    .last_us
                    .max(rec.last_us)
                    .max(rec.salvaged.last().map(|f| f.time_us));
                store.stats.salvaged_frames += rec.salvaged.len() as u64;
                for f in &rec.salvaged {
                    if store.active_first_us.is_none() {
                        store.active_first_us = Some(f.time_us);
                    }
                    w.append(f.time_us, f.value, f.name.as_deref());
                    store.active_frames += 1;
                }
                store.writer = Some(w);
            }
        }
        store.telemetry.segments_live.set_count(store.sealed.len());
        Ok(store)
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Running totals (frames, bytes, rolls, recoveries, compactions).
    /// `bytes_written` counts flushed bytes; the open block is not
    /// included until it flushes.
    pub fn stats(&self) -> StoreStats {
        self.stats
    }

    /// Cached telemetry handles.
    pub fn telemetry(&self) -> &StoreTelemetry {
        &self.telemetry
    }

    /// Re-homes the store's metrics in `registry`.
    pub fn set_telemetry(&mut self, registry: Arc<Registry>) {
        self.telemetry = StoreTelemetry::new(registry);
        self.telemetry.segments_live.set_count(self.sealed.len());
    }

    /// Sealed tier-0 segments, oldest first (the active segment is not
    /// listed until it rolls).
    pub fn sealed_segments(&self) -> &[SegmentInfo] {
        &self.sealed
    }

    /// Time of the newest accepted frame.
    pub fn last_time(&self) -> Option<TimeStamp> {
        self.last_us.map(TimeStamp::from_micros)
    }

    /// Appends one frame. Times must be non-decreasing across the
    /// whole store (§3.3); equal times are legal.
    ///
    /// # Errors
    ///
    /// [`ScopeError::TupleOrder`] when `time` goes backwards,
    /// [`ScopeError::Io`] when a block or segment write fails.
    #[inline]
    pub fn append(&mut self, time: TimeStamp, value: f64, name: Option<&str>) -> Result<()> {
        let time_us = time.as_micros();
        if let Some(last) = self.last_us {
            if time_us < last {
                return Err(ScopeError::TupleOrder {
                    line: (self.stats.frames_appended + 1) as usize,
                    previous_ms: last as f64 / 1_000.0,
                    found_ms: time_us as f64 / 1_000.0,
                });
            }
        }
        if self.writer.is_none() {
            self.writer = Some(self.new_segment(0)?);
            self.active_first_us = None;
            self.active_frames = 0;
        }
        let w = self.writer.as_mut().expect("writer just ensured");
        if self.active_first_us.is_none() {
            self.active_first_us = Some(time_us);
        }
        w.append(time_us, value, name);
        self.active_frames += 1;
        self.last_us = Some(time_us);
        self.stats.frames_appended += 1;
        // Telemetry counters are atomics; publish at block granularity
        // (see `flush_block`) to keep the append path free of them.
        if w.block_payload_len() >= self.cfg.block_bytes
            || w.block_frames() >= self.cfg.block_frames
        {
            self.flush_block()?;
        }
        Ok(())
    }

    /// Appends one tuple (convenience over [`Store::append`]).
    ///
    /// # Errors
    ///
    /// Same as [`Store::append`].
    pub fn append_tuple(&mut self, t: &gscope::Tuple) -> Result<()> {
        self.append(t.time, t.value, t.name.as_deref())
    }

    fn new_segment(&mut self, tier: u16) -> Result<SegmentWriter> {
        let seq = self.next_seq;
        self.next_seq += 1;
        let created_us = self.last_us.unwrap_or(0);
        let path = self.dir.join(segment_file_name(seq, tier));
        let mut w = SegmentWriter::create(path, tier, created_us, self.cfg.fsync)
            .map_err(ScopeError::Io)?;
        w.set_index_enabled(self.cfg.index_sidecars);
        Ok(w)
    }

    fn flush_block(&mut self) -> Result<()> {
        let Some(w) = self.writer.as_mut() else {
            return Ok(());
        };
        let begin_ns = gtel::fast_now_ns();
        let written = w.flush_block().map_err(ScopeError::Io)?;
        let pending = w.pending_bytes();
        if written > 0 {
            self.stats.bytes_written += written;
            self.stats.blocks_flushed += 1;
            self.telemetry.bytes.add(written);
            // Span only for blocks that hit the file; empty flushes
            // are no-ops and would pollute the ring.
            gtel::complete_span("store.block", written, begin_ns);
        }
        self.publish_frames();
        if pending >= self.cfg.segment_bytes {
            self.roll_segment()?;
        }
        Ok(())
    }

    /// Publishes appended-frame telemetry since the last publish. The
    /// counter is an atomic, so the append hot path defers it to block
    /// boundaries (the gauge-accurate source is [`Store::stats`]).
    fn publish_frames(&mut self) {
        let n = self.stats.frames_appended - self.frames_reported;
        if n > 0 {
            self.telemetry.frames.add(n);
            self.frames_reported = self.stats.frames_appended;
        }
    }

    /// Seals the active segment and starts a new one, then applies the
    /// retention policy and returns what it evicted. Called
    /// automatically at the size threshold; callable explicitly (the
    /// CLI does, before compacting).
    ///
    /// # Errors
    ///
    /// [`ScopeError::Io`] on seal failure.
    pub fn roll_segment(&mut self) -> Result<RetentionReport> {
        let Some(w) = self.writer.take() else {
            return Ok(RetentionReport::default());
        };
        let path = w.path().to_path_buf();
        let pending = pending_block_bytes(&w);
        let bytes = w.seal().map_err(ScopeError::Io)?;
        self.stats.bytes_written += pending;
        if pending > 0 {
            self.stats.blocks_flushed += 1;
        }
        self.telemetry.bytes.add(pending);
        self.publish_frames();
        let seq = parse_segment_file_name(path.file_name().and_then(|n| n.to_str()).unwrap_or(""))
            .map(|(s, _)| s)
            .unwrap_or(self.next_seq.saturating_sub(1));
        self.sealed.push(SegmentInfo {
            path,
            seq,
            tier: 0,
            bytes,
            first_us: self.active_first_us,
            last_us: self.last_us,
            frames: self.active_frames,
        });
        self.active_first_us = None;
        self.active_frames = 0;
        self.stats.segments_rolled += 1;
        self.telemetry.segments_rolled.inc();
        self.telemetry.segments_live.set_count(self.sealed.len());
        self.enforce_retention()
    }

    /// Applies the retention policy: evicts the oldest sealed tier-0
    /// segments over the byte budget or past the age horizon, folding
    /// each into tier-1 min/max buckets before deleting it.
    ///
    /// # Errors
    ///
    /// [`ScopeError::Io`] on compaction or delete failure.
    pub fn enforce_retention(&mut self) -> Result<RetentionReport> {
        let mut report = RetentionReport::default();
        if self.cfg.retain_bytes.is_none() && self.cfg.retain_age.is_none() {
            return Ok(report);
        }
        let newest = self.last_us.unwrap_or(0);
        loop {
            let total: u64 = self.sealed.iter().map(|s| s.bytes).sum();
            let over_bytes = self
                .cfg
                .retain_bytes
                .is_some_and(|budget| total > budget && self.sealed.len() > 1);
            let over_age = self.cfg.retain_age.is_some_and(|age| {
                self.sealed
                    .first()
                    .and_then(|s| s.last_us)
                    .is_some_and(|last| newest.saturating_sub(last) > age.as_micros())
            });
            if !(over_bytes || over_age) {
                break;
            }
            let victim = self.sealed.remove(0);
            report.evicted += 1;
            // When the glod pyramid already folded this segment (its
            // seq is at or under the tier-1 watermark) the envelope is
            // preserved on disk — folding it again into the bucketed
            // tier-1 log would double-count it. Just delete.
            let pyramid_covered =
                crate::lod::watermark(&self.dir, 1).is_some_and(|wm| victim.seq <= wm);
            if !pyramid_covered {
                let (frames, buckets) = self.compact_segment(&victim)?;
                report.frames_compacted += frames;
                report.buckets_written += buckets;
            }
            std::fs::remove_file(&victim.path).map_err(ScopeError::Io)?;
            // The index sidecar goes with its segment.
            let _ = std::fs::remove_file(crate::index::index_path(&victim.path));
            self.stats.segments_evicted += 1;
        }
        if report.evicted > 0 {
            self.stats.compaction_runs += 1;
            self.telemetry.compaction_runs.inc();
            self.telemetry.segments_live.set_count(self.sealed.len());
            if let Some(t1) = self.tier1.as_mut() {
                t1.flush_block().map_err(ScopeError::Io)?;
            }
        }
        Ok(report)
    }

    /// Downsamples one tier-0 segment into the tier-1 log: per
    /// `(signal, bucket)` the envelope survives as two frames at the
    /// bucket start — `(t, min)` then `(t, max)` — the same reduction
    /// `decimate_minmax` applies on screen.
    ///
    /// Buckets are keyed `(bucket_start_us, signal)` so the fold emits
    /// tier-1 frames in time order; the value is the running
    /// `(min, max)`.
    fn compact_segment(&mut self, seg: &SegmentInfo) -> Result<(u64, u64)> {
        let mut file = File::open(&seg.path).map_err(ScopeError::Io)?;
        if read_seg_header(&mut file).is_err() {
            return Ok((0, 0)); // unreadable: nothing to preserve
        }
        let scan = scan_headers(&mut file).map_err(ScopeError::Io)?;
        let bucket_us = self.cfg.compact_bucket.as_micros().max(1);
        let mut buckets: EnvelopeBuckets = BTreeMap::new();
        let mut frames = 0u64;
        for meta in &scan.blocks {
            let Some(payload) = read_block_payload(&mut file, meta).map_err(ScopeError::Io)? else {
                continue; // corrupt block: skip, keep the rest
            };
            let (decoded, _) = crate::segment::decode_records(&payload, meta.first_us);
            for f in decoded {
                let b = f.time_us / bucket_us * bucket_us;
                let e = buckets.entry((b, f.name)).or_insert((f.value, f.value));
                e.0 = e.0.min(f.value);
                e.1 = e.1.max(f.value);
                frames += 1;
            }
        }
        if buckets.is_empty() {
            return Ok((0, 0));
        }
        if self.tier1.is_none() {
            let w = self.new_segment(1)?;
            self.tier1 = Some(w);
        }
        let written = buckets.len() as u64;
        let t1 = self.tier1.as_mut().expect("tier1 just ensured");
        for ((bucket, name), (lo, hi)) in buckets {
            // Buckets straddling an eviction boundary may repeat with
            // an equal timestamp; §3.3 permits that, readers merge.
            let t = bucket.max(self.tier1_last_us.unwrap_or(0));
            t1.append(t, lo, name.as_deref());
            t1.append(t, hi, name.as_deref());
            self.tier1_last_us = Some(t);
        }
        Ok((frames, written * 2))
    }

    /// Flushes the open block so readers (and a crash) see everything
    /// appended so far.
    ///
    /// # Errors
    ///
    /// [`ScopeError::Io`] on write failure.
    pub fn flush(&mut self) -> Result<()> {
        self.flush_block()?;
        if let Some(t1) = self.tier1.as_mut() {
            t1.flush_block().map_err(ScopeError::Io)?;
        }
        Ok(())
    }

    /// Level-of-detail query over everything recorded so far: folds
    /// `signal`'s history in `[t0, t1]` into `px_width` min/max
    /// columns, reading the coarsest glod pyramid tier that still
    /// yields one column per pixel (see [`crate::lod::query`]). The
    /// open block is flushed first so the newest frames are visible.
    ///
    /// # Errors
    ///
    /// [`ScopeError::Io`] on flush or directory I/O failure.
    pub fn query(
        &mut self,
        signal: Option<&str>,
        t0: TimeStamp,
        t1: TimeStamp,
        px_width: usize,
    ) -> Result<crate::lod::LodResult> {
        self.flush()?;
        crate::lod::query(&self.dir, signal, t0, t1, px_width)
    }

    /// Flushes and seals everything, consuming the store. [`Drop`]
    /// does this best-effort; call `close` to observe errors.
    ///
    /// # Errors
    ///
    /// [`ScopeError::Io`] on seal failure.
    pub fn close(mut self) -> Result<StoreStats> {
        self.close_inner()?;
        Ok(self.stats)
    }

    fn close_inner(&mut self) -> Result<()> {
        if let Some(w) = self.writer.take() {
            let pending = pending_block_bytes(&w);
            w.seal().map_err(ScopeError::Io)?;
            self.stats.bytes_written += pending;
            self.telemetry.bytes.add(pending);
        }
        self.publish_frames();
        if let Some(t1) = self.tier1.take() {
            t1.seal().map_err(ScopeError::Io)?;
        }
        Ok(())
    }
}

/// Bytes the open block would add when flushed (header + payload).
fn pending_block_bytes(w: &SegmentWriter) -> u64 {
    if w.block_frames() > 0 {
        crate::segment::BLOCK_HEADER_LEN + w.block_payload_len() as u64
    } else {
        0
    }
}

impl Drop for Store {
    fn drop(&mut self) {
        let _ = self.close_inner();
    }
}

impl TupleSink for Store {
    fn write_parts(&mut self, time: TimeStamp, value: f64, name: Option<&str>) -> Result<()> {
        Store::append(self, time, value, name)
    }

    fn flush(&mut self) -> Result<()> {
        Store::flush(self)
    }

    fn bytes_written(&self) -> u64 {
        self.stats.bytes_written
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("gstore-store-tests").join(name);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn small_cfg() -> StoreConfig {
        StoreConfig {
            block_bytes: 256,
            block_frames: 16,
            segment_bytes: 2048,
            ..StoreConfig::default()
        }
    }

    #[test]
    fn append_rolls_segments_at_size() {
        let dir = tmp_dir("roll");
        let mut store = Store::open(&dir, small_cfg()).unwrap();
        for i in 0..2_000u64 {
            store
                .append(
                    TimeStamp::from_micros(i * 500),
                    (i % 97) as f64,
                    Some("sig"),
                )
                .unwrap();
        }
        let stats = store.close().unwrap();
        assert!(
            stats.segments_rolled >= 2,
            "rolled {}",
            stats.segments_rolled
        );
        assert_eq!(stats.frames_appended, 2_000);
        let cat = catalog_segments(&dir).unwrap();
        assert!(cat.len() >= 3);
        let total_frames: u64 = cat.iter().map(|s| s.frames).sum();
        assert_eq!(total_frames, 2_000);
    }

    #[test]
    fn small_segment_budget_clamps_block_size() {
        // With default (16 KiB) blocks, a 1 KiB segment budget would
        // never see a block flush, so rolls could never trigger; open
        // must clamp the block size to the segment budget.
        let dir = tmp_dir("clamp");
        let cfg = StoreConfig {
            segment_bytes: 1024,
            ..StoreConfig::default()
        };
        let mut store = Store::open(&dir, cfg).unwrap();
        for i in 0..300u64 {
            store
                .append(TimeStamp::from_micros(i * 500), i as f64, Some("sig"))
                .unwrap();
        }
        let stats = store.close().unwrap();
        assert!(
            stats.segments_rolled >= 2,
            "a ~3.8 KiB recording must roll 1 KiB segments (rolled {})",
            stats.segments_rolled
        );
    }

    #[test]
    fn append_rejects_time_regression() {
        let dir = tmp_dir("order");
        let mut store = Store::open(&dir, small_cfg()).unwrap();
        store.append(TimeStamp::from_millis(10), 1.0, None).unwrap();
        // Equal time is legal.
        store.append(TimeStamp::from_millis(10), 2.0, None).unwrap();
        let err = store
            .append(TimeStamp::from_millis(9), 3.0, None)
            .unwrap_err();
        assert!(matches!(err, ScopeError::TupleOrder { .. }), "{err}");
    }

    #[test]
    fn reopen_resumes_where_append_left_off() {
        let dir = tmp_dir("reopen");
        {
            let mut store = Store::open(&dir, small_cfg()).unwrap();
            for i in 0..100u64 {
                store
                    .append(TimeStamp::from_micros(i * 1_000), i as f64, Some("a"))
                    .unwrap();
            }
            store.close().unwrap();
        }
        let mut store = Store::open(&dir, small_cfg()).unwrap();
        assert_eq!(store.last_time(), Some(TimeStamp::from_micros(99_000)));
        // Appending before the recovered watermark is rejected.
        assert!(store
            .append(TimeStamp::from_micros(50_000), 0.0, Some("a"))
            .is_err());
        store
            .append(TimeStamp::from_micros(99_000), 1.0, Some("a"))
            .unwrap();
        store.close().unwrap();
    }

    #[test]
    fn torn_tail_recovery_salvages_and_truncates() {
        let dir = tmp_dir("torn");
        {
            let mut store = Store::open(&dir, small_cfg()).unwrap();
            for i in 0..40u64 {
                store
                    .append(TimeStamp::from_micros(i * 1_000), i as f64, Some("a"))
                    .unwrap();
            }
            // Flush blocks but do NOT seal cleanly: simulate a crash by
            // forgetting the store after a manual flush, then tearing
            // the file below.
            store.flush().unwrap();
            std::mem::forget(store);
        }
        // Tear 3 bytes off the active segment's last block.
        let cat = catalog_segments(&dir).unwrap();
        let active = cat.last().unwrap();
        let len = std::fs::metadata(&active.path).unwrap().len();
        std::fs::OpenOptions::new()
            .write(true)
            .open(&active.path)
            .unwrap()
            .set_len(len - 3)
            .unwrap();
        let store = Store::open(&dir, small_cfg()).unwrap();
        let stats = store.stats();
        assert_eq!(stats.recovery_truncations, 1);
        assert!(stats.salvaged_frames > 0);
        // At most one frame lost: 40 appended, ≥39 survive.
        let survived = store.last_time().unwrap().as_micros();
        assert!(survived >= 38_000, "survived to {survived}");
    }

    #[test]
    fn retention_compacts_into_minmax_tier() {
        let dir = tmp_dir("retain");
        let cfg = StoreConfig {
            block_bytes: 256,
            block_frames: 16,
            segment_bytes: 1024,
            retain_bytes: Some(2048),
            compact_bucket: TimeDelta::from_millis(10),
            ..StoreConfig::default()
        };
        let mut store = Store::open(&dir, cfg).unwrap();
        for i in 0..3_000u64 {
            let v = (i as f64 * 0.1).sin() * 100.0;
            store
                .append(TimeStamp::from_micros(i * 500), v, Some("wave"))
                .unwrap();
        }
        let stats = store.close().unwrap();
        assert!(stats.segments_evicted > 0, "nothing evicted");
        assert!(stats.compaction_runs > 0);
        let cat = catalog_segments(&dir).unwrap();
        let tier0_bytes: u64 = cat.iter().filter(|s| s.tier == 0).map(|s| s.bytes).sum();
        assert!(
            tier0_bytes <= 2048 + 1024 + 64,
            "tier0 {tier0_bytes}B over budget"
        );
        let tier1: Vec<_> = cat.iter().filter(|s| s.tier == 1).collect();
        assert!(!tier1.is_empty(), "no tier-1 segment written");
        // Tier-1 frames come in (t, min) / (t, max) pairs.
        let t1_frames: u64 = tier1.iter().map(|s| s.frames).sum();
        assert_eq!(t1_frames % 2, 0);
        assert!(t1_frames > 0);
    }

    #[test]
    fn sink_trait_object_records_frames() {
        let dir = tmp_dir("sink");
        let store = Store::open(&dir, small_cfg()).unwrap();
        let mut sink: Box<dyn TupleSink> = Box::new(store);
        sink.write_parts(TimeStamp::from_millis(1), 0.5, Some("s"))
            .unwrap();
        sink.write_tuple(&gscope::Tuple::new(TimeStamp::from_millis(2), 1.5, "s"))
            .unwrap();
        sink.flush().unwrap();
        drop(sink);
        let cat = catalog_segments(&dir).unwrap();
        let frames: u64 = cat.iter().map(|s| s.frames).sum();
        assert_eq!(frames, 2);
    }

    #[test]
    fn salvaged_frames_replay_through_reopen_chain() {
        // Repeatedly tear the tail and reopen; every reopen must
        // succeed and the watermark must never move backwards.
        let dir = tmp_dir("chain");
        let mut last_watermark = 0u64;
        {
            let mut store = Store::open(&dir, small_cfg()).unwrap();
            for i in 0..200u64 {
                store
                    .append(TimeStamp::from_micros(i * 1_000), i as f64, Some("x"))
                    .unwrap();
            }
            store.flush().unwrap();
            std::mem::forget(store);
        }
        for cut in [1u64, 2, 7, 13] {
            let cat = catalog_segments(&dir).unwrap();
            let active = cat.iter().rfind(|s| s.tier == 0).unwrap();
            let len = std::fs::metadata(&active.path).unwrap().len();
            if len > cut + crate::segment::SEG_HEADER_LEN {
                std::fs::OpenOptions::new()
                    .write(true)
                    .open(&active.path)
                    .unwrap()
                    .set_len(len - cut)
                    .unwrap();
            }
            let store = Store::open(&dir, small_cfg()).unwrap();
            if let Some(t) = store.last_time() {
                assert!(t.as_micros() + 20_000 >= last_watermark);
                last_watermark = t.as_micros();
            }
            store.close().unwrap();
        }
    }
}
