//! The read side: a seekable, streaming reader over a store directory.
//!
//! Seek cost is the acceptance-critical property: `seek(T)` does a
//! binary search over per-segment first-frame times (gathered from one
//! 24-byte header read per segment at open), builds the block index
//! for the **one** target segment, binary-searches it, and decodes the
//! **one** landing block. Earlier segments are never scanned, earlier
//! blocks never decoded — [`ReaderStats`] counts every probe, index
//! build, and decoded block so tests can assert exactly that.

use std::fs::File;
use std::io::{Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};

use gel::TimeStamp;
use gscope::{Result, ScopeError, Tuple, TupleSource};

use crate::segment::{
    decode_records, frame_to_tuple, parse_segment_file_name, read_block_payload, read_seg_header,
    scan_headers, BlockMeta, SalvagedFrame, BLOCK_HEADER_LEN, SEG_HEADER_LEN,
};

/// Work counters for one [`StoreReader`] — the observable evidence
/// that seeks are O(log n) and never touch prior segments.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReaderStats {
    /// Segments whose full block index was built (header scan).
    pub segments_indexed: u64,
    /// Blocks whose payload was read and decoded.
    pub blocks_decoded: u64,
    /// Frames decoded out of those blocks.
    pub frames_decoded: u64,
    /// Binary-search probes across segment and block indexes.
    pub index_probes: u64,
    /// Blocks skipped because their CRC did not match.
    pub crc_skipped_blocks: u64,
}

/// One segment as the reader sees it.
#[derive(Debug)]
struct SegSlot {
    path: PathBuf,
    file: File,
    /// Time of the segment's first frame (from its first block header).
    first_us: u64,
    /// Block index, built lazily — only for segments actually read.
    blocks: Option<Vec<BlockMeta>>,
    /// Next block to decode within `blocks`.
    next_block: usize,
}

/// Streaming, seekable reader over the segments of one tier.
///
/// Implements [`TupleSource`], so replay paths consume it exactly like
/// a text [`TupleReader`](gscope::TupleReader).
#[derive(Debug)]
pub struct StoreReader {
    dir: PathBuf,
    tier: u16,
    segments: Vec<SegSlot>,
    cur_seg: usize,
    cur_frames: Vec<SalvagedFrame>,
    cur_idx: usize,
    from_us: Option<u64>,
    to_us: Option<u64>,
    finished: bool,
    stats: ReaderStats,
}

impl StoreReader {
    /// Opens the tier-0 (full-rate) log under `dir`.
    ///
    /// # Errors
    ///
    /// [`ScopeError::Io`] when the directory cannot be listed. Damaged
    /// or empty segment files are skipped, never fatal.
    pub fn open(dir: impl AsRef<Path>) -> Result<StoreReader> {
        StoreReader::open_tier(dir, 0)
    }

    /// Opens one downsampling tier under `dir` (0 = full rate,
    /// 1 = min/max envelopes).
    ///
    /// # Errors
    ///
    /// Same as [`StoreReader::open`].
    pub fn open_tier(dir: impl AsRef<Path>, tier: u16) -> Result<StoreReader> {
        let mut reader = StoreReader {
            dir: dir.as_ref().to_path_buf(),
            tier,
            segments: Vec::new(),
            cur_seg: 0,
            cur_frames: Vec::new(),
            cur_idx: 0,
            from_us: None,
            to_us: None,
            finished: false,
            stats: ReaderStats::default(),
        };
        reader.discover_segments(None)?;
        Ok(reader)
    }

    /// Scans the directory for segment files of this tier with
    /// `seq > after` (all of them when `after` is `None`) and appends
    /// readable ones as slots.
    fn discover_segments(&mut self, after: Option<u64>) -> Result<()> {
        let mut named: Vec<(u64, PathBuf)> = Vec::new();
        for entry in std::fs::read_dir(&self.dir).map_err(ScopeError::Io)? {
            let entry = entry.map_err(ScopeError::Io)?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some((seq, t)) = parse_segment_file_name(name) {
                if t == self.tier && after.is_none_or(|a| seq > a) {
                    named.push((seq, entry.path()));
                }
            }
        }
        named.sort_by_key(|(seq, _)| *seq);
        for (_, path) in named {
            let Ok(mut file) = File::open(&path) else {
                continue;
            };
            if read_seg_header(&mut file).is_err() {
                continue; // torn header: nothing readable
            }
            // One header read gives the segment's first frame time —
            // the segment-level index is O(1) per segment, no scan.
            let Some(first_us) = first_block_time(&mut file) else {
                continue; // no complete blocks yet
            };
            self.segments.push(SegSlot {
                path,
                file,
                first_us,
                blocks: None,
                next_block: 0,
            });
        }
        Ok(())
    }

    /// Tail-follow: picks up blocks appended to the newest segment and
    /// segment files created since open (or the last refresh), without
    /// disturbing the current stream position. Returns `true` when
    /// unread data now lies at or ahead of the position — after a
    /// `refresh()` that returns `true`, `next_tuple` resumes yielding
    /// even if the reader had previously finished.
    ///
    /// This is the live catch-up contract used by the `gnet` hub: a
    /// backpressured client replays from the store while the store is
    /// still being appended to, alternating `next_tuple` drains with
    /// store flushes and `refresh()` calls until it reaches the head.
    ///
    /// # Errors
    ///
    /// [`ScopeError::Io`] on directory or header read failure.
    pub fn refresh(&mut self) -> Result<bool> {
        // Only the newest segment can grow; rebuild its block index if
        // one was already built (an unbuilt index is never stale —
        // `ensure_index` scans the file as it is at that moment).
        if let Some(last) = self.segments.last_mut() {
            if last.blocks.is_some() {
                let scan = scan_headers(&mut last.file).map_err(ScopeError::Io)?;
                last.blocks = Some(scan.blocks);
            }
        }
        let last_seq = self.segments.last().and_then(|s| {
            s.path
                .file_name()
                .and_then(|n| n.to_str())
                .and_then(parse_segment_file_name)
                .map(|(seq, _)| seq)
        });
        self.discover_segments(last_seq)?;
        // Anything unread at/ahead of the position? Segments behind a
        // seek target carry `next_block == usize::MAX`; consumed ones
        // have `next_block == blocks.len()`.
        let mut resume = None;
        for (i, seg) in self.segments.iter().enumerate() {
            if seg.next_block == usize::MAX {
                continue;
            }
            let has_unread = match &seg.blocks {
                Some(blocks) => seg.next_block < blocks.len(),
                // Unindexed slots always hold at least one block.
                None => true,
            };
            if has_unread {
                resume = Some(i);
                break;
            }
        }
        let pending = resume.is_some() || self.cur_idx < self.cur_frames.len();
        if let Some(i) = resume {
            self.finished = false;
            if self.cur_seg > i {
                self.cur_seg = i;
            }
        }
        Ok(pending)
    }

    /// Number of readable segments in this tier.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Paths of the readable segments, oldest first.
    pub fn segment_paths(&self) -> Vec<&Path> {
        self.segments.iter().map(|s| s.path.as_path()).collect()
    }

    /// Work counters accumulated so far.
    pub fn stats(&self) -> ReaderStats {
        self.stats
    }

    /// Stops the stream after `to` (inclusive).
    pub fn set_end(&mut self, to: TimeStamp) {
        self.to_us = Some(to.as_micros());
    }

    /// Positions the stream at the first frame with `time >= from`.
    ///
    /// Does a binary search over segment first-times, builds the block
    /// index for the one target segment, binary-searches its blocks,
    /// and decodes only the landing block — O(log segments +
    /// log blocks) probes, no prior-segment I/O.
    ///
    /// # Errors
    ///
    /// [`ScopeError::Io`] on read failure.
    pub fn seek(&mut self, from: TimeStamp) -> Result<()> {
        let from_us = from.as_micros();
        self.from_us = Some(from_us);
        self.cur_frames.clear();
        self.cur_idx = 0;
        self.finished = false;
        if self.segments.is_empty() {
            self.cur_seg = 0;
            return Ok(());
        }
        // Last segment whose first frame is <= from (frames before
        // `from` inside it are skipped after the block lands).
        let mut lo = 0usize;
        let mut hi = self.segments.len();
        while lo < hi {
            self.stats.index_probes += 1;
            let mid = (lo + hi) / 2;
            if self.segments[mid].first_us <= from_us {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        let seg_idx = lo.saturating_sub(1);
        self.cur_seg = seg_idx;
        // Rewind any segment state a previous scan/seek left behind.
        for (i, seg) in self.segments.iter_mut().enumerate() {
            seg.next_block = if i < seg_idx { usize::MAX } else { 0 };
        }
        self.ensure_index(seg_idx)?;
        let blocks = self.segments[seg_idx]
            .blocks
            .as_ref()
            .expect("index just built");
        let mut lo = 0usize;
        let mut hi = blocks.len();
        while lo < hi {
            self.stats.index_probes += 1;
            let mid = (lo + hi) / 2;
            if blocks[mid].first_us <= from_us {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        self.segments[seg_idx].next_block = lo.saturating_sub(1);
        Ok(())
    }

    /// Builds the block index for segment `i` if not already built.
    fn ensure_index(&mut self, i: usize) -> Result<()> {
        let seg = &mut self.segments[i];
        if seg.blocks.is_none() {
            let scan = scan_headers(&mut seg.file).map_err(ScopeError::Io)?;
            seg.blocks = Some(scan.blocks);
            self.stats.segments_indexed += 1;
        }
        Ok(())
    }

    /// Decodes the next block into `cur_frames`; returns false at end
    /// of data (or past `to`).
    fn advance_block(&mut self) -> Result<bool> {
        while self.cur_seg < self.segments.len() {
            self.ensure_index(self.cur_seg)?;
            let seg = &mut self.segments[self.cur_seg];
            let blocks = seg.blocks.as_ref().expect("index ensured");
            if seg.next_block >= blocks.len() {
                self.cur_seg += 1;
                continue;
            }
            let meta = blocks[seg.next_block];
            if let Some(to) = self.to_us {
                if meta.first_us > to {
                    // Blocks (and segments) only move forward in time:
                    // nothing later can be in range. The block is left
                    // unconsumed so a later `set_end` + `refresh` can
                    // still reach it.
                    self.finished = true;
                    return Ok(false);
                }
            }
            seg.next_block += 1;
            match read_block_payload(&mut seg.file, &meta).map_err(ScopeError::Io)? {
                None => {
                    self.stats.crc_skipped_blocks += 1;
                    continue;
                }
                Some(payload) => {
                    let (frames, _) = decode_records(&payload, meta.first_us);
                    self.stats.blocks_decoded += 1;
                    self.stats.frames_decoded += frames.len() as u64;
                    self.cur_frames = frames;
                    self.cur_idx = 0;
                    if self.cur_frames.is_empty() {
                        continue;
                    }
                    return Ok(true);
                }
            }
        }
        self.finished = true;
        Ok(false)
    }
}

impl TupleSource for StoreReader {
    fn next_tuple(&mut self) -> Result<Option<Tuple>> {
        loop {
            if self.cur_idx < self.cur_frames.len() {
                let f = &self.cur_frames[self.cur_idx];
                self.cur_idx += 1;
                if let Some(to) = self.to_us {
                    if f.time_us > to {
                        self.finished = true;
                        return Ok(None);
                    }
                }
                if let Some(from) = self.from_us {
                    if f.time_us < from {
                        continue;
                    }
                }
                return Ok(Some(frame_to_tuple(f)));
            }
            if self.finished {
                return Ok(None);
            }
            if !self.advance_block()? {
                return Ok(None);
            }
        }
    }
}

/// Reads the first block header of a segment and returns its
/// `first_us`, or `None` when the file has no complete block header.
fn first_block_time(file: &mut File) -> Option<u64> {
    let len = file.seek(SeekFrom::End(0)).ok()?;
    if len < SEG_HEADER_LEN + BLOCK_HEADER_LEN {
        return None;
    }
    let mut header = [0u8; BLOCK_HEADER_LEN as usize];
    file.seek(SeekFrom::Start(SEG_HEADER_LEN)).ok()?;
    file.read_exact(&mut header).ok()?;
    let payload_len = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes"));
    if payload_len == 0 || payload_len > crate::segment::MAX_PAYLOAD_LEN {
        return None;
    }
    Some(u64::from_le_bytes(
        header[8..16].try_into().expect("8 bytes"),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{Store, StoreConfig};

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("gstore-reader-tests").join(name);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// 10k frames, 1ms apart, small blocks/segments → many segments.
    fn build_store(dir: &PathBuf) -> (u64, u64) {
        let cfg = StoreConfig {
            block_bytes: 512,
            block_frames: 32,
            segment_bytes: 4096,
            ..StoreConfig::default()
        };
        let mut store = Store::open(dir, cfg).unwrap();
        for i in 0..10_000u64 {
            store
                .append(
                    TimeStamp::from_micros(i * 1_000),
                    i as f64,
                    Some(if i % 3 == 0 { "a" } else { "b" }),
                )
                .unwrap();
        }
        let stats = store.close().unwrap();
        (stats.segments_rolled, stats.blocks_flushed)
    }

    #[test]
    fn full_scan_returns_everything_in_order() {
        let dir = tmp_dir("scan");
        build_store(&dir);
        let mut r = StoreReader::open(&dir).unwrap();
        let tuples = r.collect_tuples().unwrap();
        assert_eq!(tuples.len(), 10_000);
        for (i, t) in tuples.iter().enumerate() {
            assert_eq!(t.time.as_micros(), i as u64 * 1_000);
            assert_eq!(t.value, i as f64);
        }
    }

    #[test]
    fn seek_lands_on_first_frame_at_or_after_target() {
        let dir = tmp_dir("seek");
        build_store(&dir);
        let mut r = StoreReader::open(&dir).unwrap();
        r.seek(TimeStamp::from_micros(7_654_321)).unwrap();
        let t = r.next_tuple().unwrap().unwrap();
        assert_eq!(t.time.as_micros(), 7_655_000);
        // Stream continues in order from there.
        let t2 = r.next_tuple().unwrap().unwrap();
        assert_eq!(t2.time.as_micros(), 7_656_000);
    }

    #[test]
    fn seek_before_start_and_past_end() {
        let dir = tmp_dir("seek-edges");
        build_store(&dir);
        let mut r = StoreReader::open(&dir).unwrap();
        r.seek(TimeStamp::ZERO).unwrap();
        assert_eq!(r.next_tuple().unwrap().unwrap().time.as_micros(), 0);
        let mut r = StoreReader::open(&dir).unwrap();
        r.seek(TimeStamp::from_secs(100)).unwrap();
        assert!(r.next_tuple().unwrap().is_none());
    }

    #[test]
    fn seek_skips_prior_segments_entirely() {
        let dir = tmp_dir("seek-cost");
        build_store(&dir);
        let mut r = StoreReader::open(&dir).unwrap();
        let n_segs = r.segment_count() as u64;
        assert!(n_segs >= 8, "need many segments, got {n_segs}");
        r.seek(TimeStamp::from_micros(8_000_000)).unwrap();
        let t = r.next_tuple().unwrap().unwrap();
        assert_eq!(t.time.as_micros(), 8_000_000);
        let s = r.stats();
        // The O(log n) contract, observed: exactly one segment's block
        // index was built, one block decoded, and the probe count is
        // logarithmic, not linear, in segments + blocks.
        assert_eq!(s.segments_indexed, 1, "{s:?}");
        assert_eq!(s.blocks_decoded, 1, "{s:?}");
        let blocks_per_seg = 16u64; // 4096B segment / ~256B block, upper bound
        let log_bound = n_segs.ilog2() as u64 + blocks_per_seg.ilog2() as u64 + 4;
        assert!(s.index_probes <= log_bound, "{s:?} vs bound {log_bound}");
        assert!(s.frames_decoded <= 64, "{s:?}");
    }

    #[test]
    fn range_replay_respects_from_and_to() {
        let dir = tmp_dir("range");
        build_store(&dir);
        let mut r = StoreReader::open(&dir).unwrap();
        r.seek(TimeStamp::from_micros(2_000_000)).unwrap();
        r.set_end(TimeStamp::from_micros(2_010_000));
        let tuples = r.collect_tuples().unwrap();
        assert_eq!(tuples.len(), 11); // inclusive on both ends
        assert_eq!(tuples[0].time.as_micros(), 2_000_000);
        assert_eq!(tuples[10].time.as_micros(), 2_010_000);
        // Early-stop: far fewer frames decoded than the store holds.
        assert!(r.stats().frames_decoded < 200, "{:?}", r.stats());
    }

    #[test]
    fn corrupt_block_is_skipped_not_fatal() {
        let dir = tmp_dir("skip-crc");
        build_store(&dir);
        // Flip a byte in the middle of the first segment's second block.
        let r = StoreReader::open(&dir).unwrap();
        let path = r.segment_paths()[0].to_path_buf();
        drop(r);
        let mut file = File::open(&path).unwrap();
        read_seg_header(&mut file).unwrap();
        let scan = scan_headers(&mut file).unwrap();
        assert!(scan.blocks.len() >= 2);
        let mut bytes = std::fs::read(&path).unwrap();
        let off = scan.blocks[1].offset as usize + BLOCK_HEADER_LEN as usize + 2;
        bytes[off] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        let mut r = StoreReader::open(&dir).unwrap();
        let tuples = r.collect_tuples().unwrap();
        assert_eq!(r.stats().crc_skipped_blocks, 1);
        // Exactly one block's frames are missing; order still holds.
        assert_eq!(
            tuples.len() as u64,
            10_000 - u64::from(scan.blocks[1].frames)
        );
        for w in tuples.windows(2) {
            assert!(w[0].time <= w[1].time);
        }
    }

    #[test]
    fn refresh_follows_a_live_store() {
        let dir = tmp_dir("refresh");
        let cfg = StoreConfig {
            block_bytes: 512,
            block_frames: 32,
            segment_bytes: 4096,
            ..StoreConfig::default()
        };
        let mut store = Store::open(&dir, cfg).unwrap();
        for i in 0..500u64 {
            store
                .append(TimeStamp::from_micros(i * 1_000), i as f64, Some("live"))
                .unwrap();
        }
        store.flush().unwrap();
        // Reader drains everything flushed so far and finishes.
        let mut r = StoreReader::open(&dir).unwrap();
        let first = r.collect_tuples().unwrap();
        assert_eq!(first.len(), 500);
        assert!(r.next_tuple().unwrap().is_none());
        // No new data: refresh reports nothing pending.
        assert!(!r.refresh().unwrap());
        // Append enough to grow the current segment AND roll new ones.
        for i in 500..2_500u64 {
            store
                .append(TimeStamp::from_micros(i * 1_000), i as f64, Some("live"))
                .unwrap();
        }
        store.flush().unwrap();
        assert!(r.refresh().unwrap(), "new blocks and segments visible");
        let more = r.collect_tuples().unwrap();
        assert_eq!(more.len(), 2_000, "exactly the new frames, no replays");
        assert_eq!(more[0].time.as_micros(), 500_000);
        assert_eq!(more.last().unwrap().time.as_micros(), 2_499_000);
        // A second round while seeked mid-stream also works.
        for i in 2_500..2_600u64 {
            store
                .append(TimeStamp::from_micros(i * 1_000), i as f64, Some("live"))
                .unwrap();
        }
        store.flush().unwrap();
        assert!(r.refresh().unwrap());
        let tail = r.collect_tuples().unwrap();
        assert_eq!(tail.len(), 100);
        store.close().unwrap();
    }

    #[test]
    fn tier1_reader_sees_minmax_envelopes() {
        let dir = tmp_dir("tier1");
        let cfg = StoreConfig {
            block_bytes: 256,
            block_frames: 16,
            segment_bytes: 1024,
            retain_bytes: Some(2048),
            compact_bucket: gel::TimeDelta::from_millis(50),
            ..StoreConfig::default()
        };
        let mut store = Store::open(&dir, cfg).unwrap();
        for i in 0..3_000u64 {
            store
                .append(
                    TimeStamp::from_micros(i * 500),
                    (i as f64 * 0.01).sin(),
                    Some("w"),
                )
                .unwrap();
        }
        store.close().unwrap();
        let mut r = StoreReader::open_tier(&dir, 1).unwrap();
        let tuples = r.collect_tuples().unwrap();
        assert!(!tuples.is_empty());
        assert_eq!(tuples.len() % 2, 0, "min/max pairs");
        for pair in tuples.chunks(2) {
            assert_eq!(pair[0].time, pair[1].time);
            assert!(pair[0].value <= pair[1].value, "min first, then max");
        }
        for w in tuples.windows(2) {
            assert!(w[0].time <= w[1].time);
        }
    }
}
