//! The [`FlightRecorder`]: deadline-triggered post-mortem bundles.
//!
//! An aircraft flight recorder is cheap to carry and only read after
//! something went wrong; this is the same idea for a missed tick
//! deadline. While the pipeline runs, the recorder keeps the last K
//! registry snapshots in memory (a few KiB). When a deadline miss —
//! or an explicit trigger — fires, it freezes the span ring and the
//! snapshot window into an on-disk bundle:
//!
//! ```text
//! postmortem-0000/
//!   meta.txt     reason, trigger time, span/snapshot counts
//!   trace.json   Chrome trace-event JSON (Perfetto-loadable)
//!   trace.txt    causality tree + slowest-span table
//!   stats/       a gstore holding the snapshot window as tuples
//!   spans/       a gstore holding completed spans (`label#tN`,
//!                value = duration ms) and deadline breaches
//!                (`breach.<label>`)
//! ```
//!
//! Both embedded stores seal with `.gidx` sidecars, so a fresh bundle
//! is immediately searchable by `gquery` — `gtool query
//! 'name=scope.tick dur>2ms within=postmortem-*'` plans over the
//! index without replaying the bundle.
//!
//! The bundle is built in a dot-prefixed temp directory and published
//! with one `rename`, so a crash mid-write never leaves a bundle that
//! half-parses. Numbering continues from the highest bundle already
//! on disk, so a restarted process never overwrites the previous
//! run's evidence. Bundle count is capped per run: a persistently
//! late loop produces a few bundles, not a full disk.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use gel::TimeStamp;
use gscope::{Result, ScopeError, TupleSource};
use gtel::{
    chrome_trace_json, slowest_spans, span_tree, MetricValue, Registry, Snapshot, TraceLog,
};

use crate::reader::StoreReader;
use crate::store::{Store, StoreConfig};

/// Where and what a trigger wrote.
#[derive(Debug, Clone)]
pub struct BundleInfo {
    /// Bundle directory (`<dir>/postmortem-NNNN`).
    pub path: PathBuf,
    /// Complete span records frozen into `trace.json`.
    pub spans: usize,
    /// Registry snapshots frozen into `stats/`.
    pub snapshots: usize,
    /// Deadline breaches frozen into `spans/` as `breach.<label>`.
    pub breaches: usize,
}

/// One peer's wire-clock model at bundle-freeze time, written into
/// `clock.txt`. The offsets recorded here are what `gtool trace merge`
/// uses to rebase other processes' span rings onto this bundle's
/// timeline (the offset shares the span timebase by construction).
#[derive(Debug, Clone, PartialEq)]
pub struct ClockRow {
    /// Peer identity (socket address or sim label).
    pub peer: String,
    /// Peer's node id, when its batches were origin-stamped.
    pub node_id: Option<u64>,
    /// Peer − local clock offset, µs.
    pub offset_us: f64,
    /// Smoothed sync round-trip, µs.
    pub rtt_us: f64,
    /// Estimated relative drift, ppm.
    pub drift_ppm: f64,
    /// Offset error bound, µs.
    pub error_us: f64,
    /// Completed sync exchanges behind the estimate.
    pub samples: u64,
}

/// Keeps the last K telemetry snapshots and freezes them plus the
/// span ring into a post-mortem bundle on demand.
#[derive(Debug)]
pub struct FlightRecorder {
    dir: PathBuf,
    k: usize,
    snapshots: VecDeque<(TimeStamp, Snapshot)>,
    breaches: VecDeque<(u64, &'static str, u64)>,
    node_id: Option<u64>,
    clocks: Vec<ClockRow>,
    bundles: u64,
    max_bundles: u64,
}

/// How many recent deadline breaches ride along into a bundle.
const BREACH_WINDOW: usize = 64;

impl FlightRecorder {
    /// Recorder writing bundles under `dir`, keeping the last `k`
    /// snapshots (at most 4 bundles by default).
    pub fn new(dir: impl Into<PathBuf>, k: usize) -> Self {
        FlightRecorder {
            dir: dir.into(),
            k: k.max(1),
            snapshots: VecDeque::new(),
            breaches: VecDeque::new(),
            node_id: None,
            clocks: Vec::new(),
            bundles: 0,
            max_bundles: 4,
        }
    }

    /// Stamps this process's node identity into every future bundle
    /// (`node: <id>` in `meta.txt`), letting `gtool trace merge` name
    /// the timeline it contributes.
    pub fn set_node_id(&mut self, id: u64) {
        self.node_id = Some(id);
    }

    /// Notes a peer's current clock model; the latest row per peer
    /// rides into the next bundle's `clock.txt`. Call whenever stats
    /// are sampled so a post-mortem freezes fresh offsets.
    pub fn note_clock(&mut self, row: ClockRow) {
        match self.clocks.iter_mut().find(|c| c.peer == row.peer) {
            Some(slot) => *slot = row,
            None => self.clocks.push(row),
        }
    }

    /// Caps how many bundles one recorder may write (0 disables).
    pub fn set_max_bundles(&mut self, n: u64) {
        self.max_bundles = n;
    }

    /// Bundles written so far.
    pub fn bundles(&self) -> u64 {
        self.bundles
    }

    /// Notes the registry's current state, stamped `now` (loop time).
    /// Call once per tick; only the newest K survive.
    pub fn note_stats(&mut self, now: TimeStamp, registry: &Registry) {
        self.note_snapshot(now, registry.snapshot());
    }

    /// Notes a pre-taken snapshot (single-timestamp exports).
    pub fn note_snapshot(&mut self, now: TimeStamp, snapshot: Snapshot) {
        if self.snapshots.len() == self.k {
            self.snapshots.pop_front();
        }
        self.snapshots.push_back((now, snapshot));
    }

    /// Notes a deadline breach so the next bundle carries it as a
    /// `breach.<label>` tuple in `spans/`. Call for every
    /// `DeadlineMonitor` miss; only the newest [`BREACH_WINDOW`]
    /// survive.
    pub fn note_breach(&mut self, miss: &gtel::DeadlineMiss) {
        if self.breaches.len() == BREACH_WINDOW {
            self.breaches.pop_front();
        }
        self.breaches
            .push_back((miss.t_ns, miss.label, miss.duration_ns));
    }

    /// Freezes the span ring and the snapshot window into a bundle.
    ///
    /// Returns `Ok(None)` once the bundle cap is reached (triggering
    /// is expected to be wired to every deadline miss, and a loop
    /// that misses every tick must not fill the disk).
    ///
    /// # Errors
    ///
    /// I/O errors creating or publishing the bundle.
    pub fn trigger(&mut self, reason: &str, log: &TraceLog) -> Result<Option<BundleInfo>> {
        if self.bundles >= self.max_bundles {
            return Ok(None);
        }
        let records = log.records();
        // Number from the highest bundle already on disk, not the
        // in-memory counter: a restarted process must never overwrite
        // the previous run's post-mortem — that bundle is exactly the
        // evidence for why the last run died.
        let name = format!("postmortem-{:04}", next_bundle_index(&self.dir));
        let tmp = self.dir.join(format!(".tmp-{name}"));
        let finale = self.dir.join(&name);
        if tmp.exists() {
            std::fs::remove_dir_all(&tmp).map_err(ScopeError::Io)?;
        }
        std::fs::create_dir_all(&tmp).map_err(ScopeError::Io)?;

        let spans = records
            .iter()
            .filter(|r| r.kind == gtel::SpanKind::End)
            .count();
        std::fs::write(tmp.join("trace.json"), chrome_trace_json(&records))
            .map_err(ScopeError::Io)?;
        let mut tree = span_tree(&records);
        tree.push('\n');
        tree.push_str(&slowest_spans(&records, 16));
        std::fs::write(tmp.join("trace.txt"), tree).map_err(ScopeError::Io)?;

        let mut meta = String::new();
        let _ = writeln!(meta, "reason: {reason}");
        let _ = writeln!(meta, "spans: {spans}");
        let _ = writeln!(meta, "records: {}", records.len());
        let _ = writeln!(meta, "records_dropped: {}", log.dropped());
        let _ = writeln!(meta, "snapshots: {}", self.snapshots.len());
        let _ = writeln!(meta, "breaches: {}", self.breaches.len());
        if let Some((t, _)) = self.snapshots.back() {
            let _ = writeln!(meta, "last_snapshot_ms: {:.3}", t.as_millis_f64());
        }
        if let Some(id) = self.node_id {
            let _ = writeln!(meta, "node: {id}");
        }
        std::fs::write(tmp.join("meta.txt"), meta).map_err(ScopeError::Io)?;

        if !self.clocks.is_empty() {
            let mut clock = String::new();
            for row in &self.clocks {
                let node = row
                    .node_id
                    .map_or_else(|| "-".to_string(), |n| n.to_string());
                let _ = writeln!(
                    clock,
                    "peer={} node={} offset_us={:.3} rtt_us={:.3} \
                     drift_ppm={:.3} error_us={:.3} samples={}",
                    row.peer,
                    node,
                    row.offset_us,
                    row.rtt_us,
                    row.drift_ppm,
                    row.error_us,
                    row.samples
                );
            }
            std::fs::write(tmp.join("clock.txt"), clock).map_err(ScopeError::Io)?;
        }

        // The snapshot window rides in a real gstore, so every tool
        // that decodes recordings (gtool info/replay, StoreReader)
        // decodes post-mortems too.
        let cfg = StoreConfig {
            block_bytes: 4 * 1024,
            block_frames: 256,
            ..StoreConfig::default()
        };
        let mut store = Store::open(tmp.join("stats"), cfg.clone())?;
        for (t, snap) in &self.snapshots {
            append_snapshot(&mut store, *t, snap)?;
        }
        store.close()?;

        // Completed spans and deadline breaches ride in a second
        // store under `spans/` — span end time in microseconds,
        // value = duration in milliseconds, names `label#tN` and
        // `breach.<label>` so the sealed `.gidx` sidecar grows span,
        // thread, and severity terms for free.
        let mut rows = gtel::span_tuple_rows(&records);
        for &(t_ns, label, duration_ns) in &self.breaches {
            rows.push((
                t_ns / 1_000,
                duration_ns as f64 / 1e6,
                format!("breach.{label}"),
            ));
        }
        rows.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.2.cmp(&b.2)));
        let mut spans_store = Store::open(tmp.join("spans"), cfg)?;
        for (t_us, value, name) in &rows {
            spans_store.append(TimeStamp::from_micros(*t_us), *value, Some(name))?;
        }
        spans_store.close()?;

        std::fs::rename(&tmp, &finale).map_err(ScopeError::Io)?;
        self.bundles += 1;
        Ok(Some(BundleInfo {
            path: finale,
            spans,
            snapshots: self.snapshots.len(),
            breaches: self.breaches.len(),
        }))
    }
}

/// First free bundle number under `dir`: one past the highest
/// existing `postmortem-NNNN`, 0 for a missing or empty directory.
fn next_bundle_index(dir: &Path) -> u64 {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return 0;
    };
    entries
        .flatten()
        .filter_map(|e| {
            e.file_name()
                .to_str()?
                .strip_prefix("postmortem-")?
                .parse::<u64>()
                .ok()
        })
        .map(|i| i + 1)
        .max()
        .unwrap_or(0)
}

/// Writes one registry snapshot into `store` as tuples stamped `now`
/// (histograms expand exactly like `gtel::tuple_lines`: `.count` plus
/// millisecond-scaled percentiles).
fn append_snapshot(store: &mut Store, now: TimeStamp, snapshot: &Snapshot) -> Result<()> {
    for (name, value) in snapshot {
        match value {
            MetricValue::Counter(n) => store.append(now, *n as f64, Some(name))?,
            MetricValue::Gauge(v) => store.append(now, *v, Some(name))?,
            MetricValue::Histogram(h) => {
                store.append(now, h.count as f64, Some(&format!("{name}.count")))?;
                store.append(now, h.p50 as f64 / 1e6, Some(&format!("{name}.p50_ms")))?;
                store.append(now, h.p90 as f64 / 1e6, Some(&format!("{name}.p90_ms")))?;
                store.append(now, h.p99 as f64 / 1e6, Some(&format!("{name}.p99_ms")))?;
                store.append(now, h.max as f64 / 1e6, Some(&format!("{name}.max_ms")))?;
            }
        }
    }
    Ok(())
}

/// A decoded bundle (see [`read_bundle`]).
#[derive(Debug, Clone)]
pub struct BundleSummary {
    /// `meta.txt`, verbatim.
    pub meta: String,
    /// `trace.json`, verbatim.
    pub trace_json: String,
    /// `trace.txt`, verbatim.
    pub tree: String,
    /// Tuples decoded from the `stats/` store.
    pub stats_tuples: usize,
    /// Tuples decoded from the `spans/` store (0 for bundles written
    /// before spans were recorded).
    pub span_tuples: usize,
    /// The writing process's node id (`node:` in `meta.txt`), when
    /// the recorder was stamped with one.
    pub node_id: Option<u64>,
    /// Per-peer clock rows parsed from `clock.txt` (empty for bundles
    /// from processes with no wire peers).
    pub clock: Vec<ClockRow>,
}

/// Parses one `clock.txt` line back into a [`ClockRow`]; `None` for
/// malformed lines so a hand-edited file degrades row-by-row.
fn parse_clock_line(line: &str) -> Option<ClockRow> {
    let mut row = ClockRow {
        peer: String::new(),
        node_id: None,
        offset_us: 0.0,
        rtt_us: 0.0,
        drift_ppm: 0.0,
        error_us: 0.0,
        samples: 0,
    };
    for field in line.split_whitespace() {
        let (key, value) = field.split_once('=')?;
        match key {
            "peer" => row.peer = value.to_string(),
            "node" => {
                row.node_id = if value == "-" {
                    None
                } else {
                    value.parse().ok()
                }
            }
            "offset_us" => row.offset_us = value.parse().ok()?,
            "rtt_us" => row.rtt_us = value.parse().ok()?,
            "drift_ppm" => row.drift_ppm = value.parse().ok()?,
            "error_us" => row.error_us = value.parse().ok()?,
            "samples" => row.samples = value.parse().ok()?,
            _ => {}
        }
    }
    if row.peer.is_empty() {
        return None;
    }
    Some(row)
}

/// Reads a bundle back, decoding the stats store end to end — the
/// "is this bundle intact?" check used by tests and `gtool trace`.
///
/// # Errors
///
/// I/O errors, or decode errors from the stats store.
pub fn read_bundle(path: impl AsRef<Path>) -> Result<BundleSummary> {
    let path = path.as_ref();
    let meta = std::fs::read_to_string(path.join("meta.txt")).map_err(ScopeError::Io)?;
    let trace_json = std::fs::read_to_string(path.join("trace.json")).map_err(ScopeError::Io)?;
    let tree = std::fs::read_to_string(path.join("trace.txt")).map_err(ScopeError::Io)?;
    if !trace_json.contains("\"traceEvents\"") {
        return Err(ScopeError::Io(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("{}: trace.json has no traceEvents", path.display()),
        )));
    }
    let mut reader = StoreReader::open(path.join("stats"))?;
    let mut stats_tuples = 0;
    while reader.next_tuple()?.is_some() {
        stats_tuples += 1;
    }
    let mut span_tuples = 0;
    if path.join("spans").is_dir() {
        let mut reader = StoreReader::open(path.join("spans"))?;
        while reader.next_tuple()?.is_some() {
            span_tuples += 1;
        }
    }
    let node_id = meta
        .lines()
        .find_map(|l| l.strip_prefix("node: "))
        .and_then(|v| v.trim().parse().ok());
    let clock = match std::fs::read_to_string(path.join("clock.txt")) {
        Ok(text) => text.lines().filter_map(parse_clock_line).collect(),
        Err(_) => Vec::new(),
    };
    Ok(BundleSummary {
        meta,
        trace_json,
        tree,
        stats_tuples,
        span_tuples,
        node_id,
        clock,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn tmp() -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "gstore-flight-{}-{:x}",
            std::process::id(),
            gtel::monotonic_ns()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn demo_log() -> Arc<TraceLog> {
        let log = Arc::new(TraceLog::new(64));
        {
            let _root = log.span_with("gel.iteration", 1);
            let _tick = log.span_with("scope.tick", 1);
        }
        log.record_span_at("scope.tick", 2, 1_000, 9_000);
        log
    }

    fn demo_registry() -> Arc<Registry> {
        let r = Registry::shared();
        r.counter("scope.ticks").add(3);
        r.gauge("scope.buffer.depth").set(1.0);
        r.histogram("scope.tick.poll_ns").record(2_000);
        r
    }

    #[test]
    fn trigger_writes_decodable_bundle() {
        let dir = tmp();
        let mut fr = FlightRecorder::new(&dir, 4);
        let reg = demo_registry();
        fr.note_stats(TimeStamp::from_millis(100), &reg);
        fr.note_stats(TimeStamp::from_millis(200), &reg);
        let info = fr
            .trigger("deadline miss: scope.tick", &demo_log())
            .unwrap()
            .expect("bundle written");
        assert_eq!(info.snapshots, 2);
        assert!(info.spans >= 3);
        assert!(info.path.ends_with("postmortem-0000"));

        let bundle = read_bundle(&info.path).unwrap();
        assert!(bundle.meta.contains("reason: deadline miss: scope.tick"));
        assert!(bundle.trace_json.contains("\"name\":\"gel.iteration\""));
        assert!(bundle.tree.contains("scope.tick"));
        // 2 snapshots x (counter + gauge + 5 histogram expansions).
        assert_eq!(bundle.stats_tuples, 14);
        // One span tuple per completed (End) span.
        assert_eq!(bundle.span_tuples, info.spans);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn clock_rows_round_trip_through_bundle() {
        let dir = tmp();
        let mut fr = FlightRecorder::new(&dir, 2);
        fr.set_node_id(3);
        fr.note_clock(ClockRow {
            peer: "127.0.0.1:5000".into(),
            node_id: Some(7),
            offset_us: -142.5,
            rtt_us: 380.25,
            drift_ppm: 11.0,
            error_us: 210.125,
            samples: 25,
        });
        fr.note_clock(ClockRow {
            peer: "sim:b".into(),
            node_id: None,
            offset_us: 9.0,
            rtt_us: 100.0,
            drift_ppm: 0.0,
            error_us: 50.0,
            samples: 4,
        });
        // A second note for the same peer overwrites, not appends.
        fr.note_clock(ClockRow {
            peer: "sim:b".into(),
            node_id: Some(9),
            offset_us: 10.0,
            rtt_us: 90.0,
            drift_ppm: 1.0,
            error_us: 45.0,
            samples: 5,
        });
        let info = fr.trigger("clock", &demo_log()).unwrap().unwrap();
        let bundle = read_bundle(&info.path).unwrap();
        assert_eq!(bundle.node_id, Some(3));
        assert!(bundle.meta.contains("node: 3"));
        assert_eq!(bundle.clock.len(), 2);
        assert_eq!(bundle.clock[0].peer, "127.0.0.1:5000");
        assert_eq!(bundle.clock[0].node_id, Some(7));
        assert!((bundle.clock[0].offset_us - -142.5).abs() < 1e-3);
        assert_eq!(bundle.clock[0].samples, 25);
        assert_eq!(bundle.clock[1].node_id, Some(9));
        assert!((bundle.clock[1].offset_us - 10.0).abs() < 1e-3);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn bundles_without_clock_read_back_empty() {
        let dir = tmp();
        let mut fr = FlightRecorder::new(&dir, 2);
        let info = fr.trigger("plain", &demo_log()).unwrap().unwrap();
        assert!(!info.path.join("clock.txt").exists());
        let bundle = read_bundle(&info.path).unwrap();
        assert_eq!(bundle.node_id, None);
        assert!(bundle.clock.is_empty());
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn breaches_ride_in_spans_store() {
        let dir = tmp();
        let mut fr = FlightRecorder::new(&dir, 2);
        fr.note_breach(&gtel::DeadlineMiss {
            label: "scope.tick",
            t_ns: 9_000,
            duration_ns: 8_000,
            budget_ns: 4_000,
        });
        let info = fr.trigger("breach", &demo_log()).unwrap().unwrap();
        assert_eq!(info.breaches, 1);
        let bundle = read_bundle(&info.path).unwrap();
        assert!(bundle.meta.contains("breaches: 1"));
        assert_eq!(bundle.span_tuples, info.spans + 1);
        // The spans store sealed with a queryable sidecar holding the
        // breach severity term.
        let mut reader = StoreReader::open(info.path.join("spans")).unwrap();
        let mut saw_breach = false;
        while let Some(t) = reader.next_tuple().unwrap() {
            if t.name.as_deref() == Some("breach.scope.tick") {
                saw_breach = true;
            }
        }
        assert!(saw_breach);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn snapshot_window_keeps_newest_k() {
        let mut fr = FlightRecorder::new(tmp(), 2);
        let reg = demo_registry();
        for ms in [10, 20, 30] {
            fr.note_stats(TimeStamp::from_millis(ms), &reg);
        }
        assert_eq!(fr.snapshots.len(), 2);
        assert_eq!(fr.snapshots[0].0, TimeStamp::from_millis(20));
    }

    #[test]
    fn bundle_cap_holds() {
        let dir = tmp();
        let mut fr = FlightRecorder::new(&dir, 2);
        fr.set_max_bundles(1);
        let log = demo_log();
        assert!(fr.trigger("first", &log).unwrap().is_some());
        assert!(fr.trigger("second", &log).unwrap().is_none());
        assert_eq!(fr.bundles(), 1);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn restart_preserves_previous_runs_bundles() {
        let dir = tmp();
        let log = demo_log();
        let first = {
            let mut fr = FlightRecorder::new(&dir, 2);
            fr.trigger("first run", &log).unwrap().unwrap()
        };
        // A fresh recorder (process restart) numbers past the
        // existing bundle instead of deleting it.
        let mut fr = FlightRecorder::new(&dir, 2);
        let second = fr.trigger("second run", &log).unwrap().unwrap();
        assert!(first.path.ends_with("postmortem-0000"));
        assert!(second.path.ends_with("postmortem-0001"));
        let old = read_bundle(&first.path).unwrap();
        assert!(old.meta.contains("reason: first run"));
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn no_partial_bundle_is_published() {
        let dir = tmp();
        let mut fr = FlightRecorder::new(&dir, 1);
        fr.note_stats(TimeStamp::from_millis(5), &demo_registry());
        fr.trigger("x", &demo_log()).unwrap().unwrap();
        // Only the renamed bundle remains; the temp dir is gone.
        let names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, ["postmortem-0000"]);
        std::fs::remove_dir_all(dir).unwrap();
    }
}
