//! gstore — a segmented, indexed, crash-safe tuple store.
//!
//! The paper's gscope records and replays §3.3 text tuples; that works
//! at demo scale but burns bytes (decimal floats), CPU (`f64` Display
//! on the record path), and offers no way to start replay at time *T*
//! without reading everything before it. `gstore` is the storage
//! subsystem that fixes all three:
//!
//! * **Segmented binary log** — a store is a directory of fixed-size
//!   segment files of CRC-protected blocks; frames carry delta-encoded
//!   microsecond times, block-scoped interned name ids, and raw `f64`
//!   bits (see [`segment`] for the byte layout).
//! * **Indexed** — block headers double as a sparse time index:
//!   [`StoreReader::seek`] binary-searches segment first-times, then
//!   one segment's block headers, and decodes a single landing block —
//!   O(log n), never scanning prior segments ([`ReaderStats`] proves
//!   it).
//! * **Searchable** — every sealed segment carries a `.gidx` inverted
//!   index sidecar ([`index`]) keyed by signal name, span label,
//!   thread id, and breach class; the `gquery` crate plans queries
//!   over it so a search opens only matching segments and decodes
//!   only matching blocks.
//! * **Crash-safe** — [`Store::open`] verifies the newest segment,
//!   truncates torn or corrupt tails, and salvages every complete
//!   frame from a torn block; loss is bounded to the frame being
//!   written at the crash, and open never refuses.
//! * **Retention with graceful degradation** — size/age budgets evict
//!   the oldest tier-0 segments into tier-1 min/max envelopes (the
//!   on-disk analogue of the renderer's `decimate_minmax`), so old
//!   history coarsens instead of disappearing.
//!
//! * **Zoomable** — the [`lod`] pyramid ("glod") folds sealed tier-K
//!   segments into tier-K+1 min/max envelopes in the background and
//!   answers [`Store::query`]`(signal, t0, t1, px_width)` off the
//!   coarsest tier with one column per pixel, so zooming over a year
//!   of history costs the same as a minute.
//!
//! [`Store`] implements gscope's `TupleSink` and [`StoreReader`]
//! implements `TupleSource`, so the scope recorder, the network
//! server's catch-up tee, and `gtool record`/`replay` all plug in
//! without special cases.

pub mod codec;
pub mod flight;
pub mod index;
pub mod lod;
pub mod reader;
pub mod segment;
pub mod store;

pub use flight::{read_bundle, BundleInfo, BundleSummary, ClockRow, FlightRecorder};
pub use index::{
    build_index, index_path, load_or_rebuild_index, probe_index, read_index, split_thread,
    write_index, IndexProbe, Posting, SegIndex, TermClass, TermEntry,
};
pub use lod::{
    CompactReport, Compactor, CompactorConfig, CompactorHandle, LodResult, LodSlice, LodStats,
};
pub use reader::{ReaderStats, StoreReader};
pub use segment::{recover_segment, Recovery, SalvagedFrame};
pub use store::{
    catalog_segments, RetentionReport, SegmentInfo, Store, StoreConfig, StoreStats, StoreTelemetry,
};
