//! The `.gidx` sidecar: a compact per-segment inverted index.
//!
//! Every sealed segment gets a sibling `seg-NNNNNNNN-tT.gidx` mapping
//! *terms* to posting lists. A term is a `(class, text)` pair derived
//! from tuple names at block-flush time; a posting points at one block
//! (by byte offset) and carries the term's per-block frame count, time
//! span, and value envelope — enough for a query planner to decide,
//! without opening the `.gseg` at all, whether a segment can match and
//! which blocks to decode.
//!
//! # On-disk layout
//!
//! ```text
//! gidx    := header body
//! header (32 B) := magic "GIX1" | version u16 | tier u16
//!                | term_count u32 | seg_len u64
//!                | body_len u32 | body_crc u32 | reserved u32
//! body    := term*
//! term    := class u8 | name_len uvarint | name bytes
//!          | count uvarint | first_us uvarint | span_us uvarint
//!          | vmin f64le | vmax f64le | n_postings uvarint | posting*
//! posting := offset_delta uvarint | first_us uvarint | span_us uvarint
//!          | count uvarint | vmin f64le | vmax f64le
//! ```
//!
//! `seg_len` binds the index to the exact segment length it describes:
//! a reader that finds `seg_len != len(.gseg)` must treat the sidecar
//! as stale and rebuild it from the segment (see
//! [`load_or_rebuild_index`]); `body_crc` (CRC32C over the body)
//! catches torn or bit-flipped sidecars the same way block CRCs do for
//! data. The sidecar is always derivable from the segment, so damage
//! here never loses data — only speed.
//!
//! # Term classes
//!
//! * [`TermClass::Signal`] — the full tuple name; every frame lands in
//!   exactly one signal term (the empty string stands for unnamed
//!   frames). Summing signal counts reproduces the segment frame count.
//! * [`TermClass::Span`] — for names following the `label#tN` span
//!   convention (the flight recorder writes span durations this way),
//!   the base label without the thread suffix.
//! * [`TermClass::Thread`] — the decimal `N` from a `#tN` suffix.
//! * [`TermClass::Severity`] — the literal term `breach` for names
//!   under the `breach.` prefix (deadline-miss tuples).
//!
//! Derivation happens once per distinct name per block, never on the
//! per-frame append path: the writer keeps one [`TermStat`] slot per
//! block-scoped name id and folds the slots into an [`IndexBuilder`]
//! at flush time.

use std::collections::BTreeMap;
use std::fs::File;
use std::io::{Seek, SeekFrom};
use std::path::{Path, PathBuf};

use crate::codec::{crc32, get_uvarint, put_uvarint};
use crate::segment::{read_block_payload, read_seg_header, scan_headers, BLOCK_HEADER_LEN};

/// Sidecar file magic.
pub const GIDX_MAGIC: [u8; 4] = *b"GIX1";
/// Sidecar format version written by this crate.
pub const GIDX_VERSION: u16 = 1;
/// Sidecar header length in bytes.
pub const GIDX_HEADER_LEN: usize = 32;

/// What a term's text names; see the module docs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum TermClass {
    /// Full tuple name (empty string = unnamed frames).
    Signal = 0,
    /// Span base label (`label#tN` minus the `#tN`).
    Span = 1,
    /// Thread id from a `#tN` suffix, as decimal text.
    Thread = 2,
    /// Severity class; only `breach` exists today.
    Severity = 3,
}

impl TermClass {
    fn from_u8(b: u8) -> Option<TermClass> {
        match b {
            0 => Some(TermClass::Signal),
            1 => Some(TermClass::Span),
            2 => Some(TermClass::Thread),
            3 => Some(TermClass::Severity),
            _ => None,
        }
    }
}

/// One term's presence in one block.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Posting {
    /// Byte offset of the block header in the `.gseg` — a resolver
    /// seeks straight there, no header scan needed.
    pub offset: u64,
    /// Time of the term's first frame in the block.
    pub first_us: u64,
    /// Time of the term's last frame in the block.
    pub last_us: u64,
    /// Frames of this term in the block.
    pub count: u64,
    /// Smallest value the term took in the block.
    pub min_value: f64,
    /// Largest value the term took in the block.
    pub max_value: f64,
}

/// One term: segment-wide aggregate plus its posting list.
#[derive(Clone, Debug, PartialEq)]
pub struct TermEntry {
    /// Term class.
    pub class: TermClass,
    /// Term text.
    pub name: String,
    /// Total frames across the segment.
    pub count: u64,
    /// Time of the first frame.
    pub first_us: u64,
    /// Time of the last frame.
    pub last_us: u64,
    /// Segment-wide value minimum.
    pub min_value: f64,
    /// Segment-wide value maximum.
    pub max_value: f64,
    /// Per-block postings, ascending by offset.
    pub postings: Vec<Posting>,
}

/// A decoded sidecar.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SegIndex {
    /// Downsampling tier of the segment (copied from its header).
    pub tier: u16,
    /// Length of the `.gseg` this index describes; a mismatch with the
    /// file on disk marks the index stale.
    pub seg_len: u64,
    /// Terms, sorted by `(class, name)`.
    pub terms: Vec<TermEntry>,
}

impl SegIndex {
    /// Looks a term up by class and exact text.
    pub fn find(&self, class: TermClass, name: &str) -> Option<&TermEntry> {
        self.terms
            .binary_search_by(|t| (t.class, t.name.as_str()).cmp(&(class, name)))
            .ok()
            .map(|i| &self.terms[i])
    }

    /// Terms of one class, in name order.
    pub fn terms_of(&self, class: TermClass) -> impl Iterator<Item = &TermEntry> {
        self.terms.iter().filter(move |t| t.class == class)
    }

    /// Total frames in the segment (sum of signal-class counts; every
    /// frame belongs to exactly one signal term).
    pub fn frames(&self) -> u64 {
        self.terms_of(TermClass::Signal).map(|t| t.count).sum()
    }

    /// Time of the segment's first frame, if it has any.
    pub fn first_us(&self) -> Option<u64> {
        self.terms_of(TermClass::Signal).map(|t| t.first_us).min()
    }

    /// Time of the segment's last frame, if it has any.
    pub fn last_us(&self) -> Option<u64> {
        self.terms_of(TermClass::Signal).map(|t| t.last_us).max()
    }
}

/// Per-block running stats for one name, maintained on the append
/// path: a handful of compares and stores per frame.
#[derive(Clone, Copy, Debug)]
pub struct TermStat {
    /// Frames seen.
    pub count: u64,
    /// First frame time.
    pub first_us: u64,
    /// Last frame time.
    pub last_us: u64,
    /// Value minimum (`f64::min`, so NaNs never poison the bound).
    pub min_value: f64,
    /// Value maximum.
    pub max_value: f64,
}

impl Default for TermStat {
    fn default() -> Self {
        TermStat {
            count: 0,
            first_us: 0,
            last_us: 0,
            min_value: f64::INFINITY,
            max_value: f64::NEG_INFINITY,
        }
    }
}

impl TermStat {
    /// Folds one frame in. This sits on the store's append hot path,
    /// so the envelope uses plain comparisons instead of
    /// `f64::min`/`max`: same result (a NaN fails both compares and
    /// changes nothing, exactly like `min`/`max` ignoring the NaN
    /// operand), but the compiler emits two predictable branches that
    /// are almost never taken once the envelope has settled.
    #[inline]
    pub fn note(&mut self, time_us: u64, value: f64) {
        if self.count == 0 {
            self.first_us = time_us;
        }
        self.count += 1;
        self.last_us = time_us;
        if value < self.min_value {
            self.min_value = value;
        }
        if value > self.max_value {
            self.max_value = value;
        }
    }
}

/// Splits a `label#tN` name into `(label, N)`; `None` when the name
/// does not follow the span convention.
pub fn split_thread(name: &str) -> Option<(&str, u32)> {
    let (base, tid) = name.rsplit_once("#t")?;
    if base.is_empty() || tid.is_empty() || !tid.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    Some((base, tid.parse().ok()?))
}

/// Accumulates per-block term stats into a [`SegIndex`].
#[derive(Debug, Default)]
pub struct IndexBuilder {
    terms: BTreeMap<(TermClass, Box<str>), TermEntry>,
}

impl IndexBuilder {
    /// Folds one name's per-block stats in, deriving span / thread /
    /// severity terms from the name text. `offset` is the block's byte
    /// offset; calls must come in ascending offset order.
    pub fn add_block(&mut self, offset: u64, name: Option<&str>, s: &TermStat) {
        if s.count == 0 {
            return;
        }
        self.add_term(TermClass::Signal, name.unwrap_or(""), offset, s);
        if let Some(n) = name {
            if let Some((base, tid)) = split_thread(n) {
                self.add_term(TermClass::Span, base, offset, s);
                let mut buf = [0u8; 10];
                self.add_term(TermClass::Thread, format_u32(tid, &mut buf), offset, s);
            }
            if n.starts_with("breach.") {
                self.add_term(TermClass::Severity, "breach", offset, s);
            }
        }
    }

    fn add_term(&mut self, class: TermClass, name: &str, offset: u64, s: &TermStat) {
        let e = self
            .terms
            .entry((class, name.into()))
            .or_insert_with(|| TermEntry {
                class,
                name: name.to_owned(),
                count: 0,
                first_us: s.first_us,
                last_us: s.last_us,
                min_value: f64::INFINITY,
                max_value: f64::NEG_INFINITY,
                postings: Vec::new(),
            });
        e.count += s.count;
        e.first_us = e.first_us.min(s.first_us);
        e.last_us = e.last_us.max(s.last_us);
        e.min_value = e.min_value.min(s.min_value);
        e.max_value = e.max_value.max(s.max_value);
        // Two names can derive the same term in one block (two span
        // labels on the same thread, say): merge into one posting.
        match e.postings.last_mut() {
            Some(p) if p.offset == offset => {
                p.count += s.count;
                p.first_us = p.first_us.min(s.first_us);
                p.last_us = p.last_us.max(s.last_us);
                p.min_value = p.min_value.min(s.min_value);
                p.max_value = p.max_value.max(s.max_value);
            }
            _ => e.postings.push(Posting {
                offset,
                first_us: s.first_us,
                last_us: s.last_us,
                count: s.count,
                min_value: s.min_value,
                max_value: s.max_value,
            }),
        }
    }

    /// Finishes the index for a segment of `seg_len` bytes.
    pub fn finish(self, tier: u16, seg_len: u64) -> SegIndex {
        SegIndex {
            tier,
            seg_len,
            terms: self.terms.into_values().collect(),
        }
    }
}

/// Formats a u32 into a stack buffer (the thread-term text) without
/// allocating.
fn format_u32(mut v: u32, buf: &mut [u8; 10]) -> &str {
    let mut i = buf.len();
    loop {
        i -= 1;
        buf[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    std::str::from_utf8(&buf[i..]).expect("ascii digits")
}

/// The sidecar path for a segment path (`.gseg` → `.gidx`).
pub fn index_path(seg_path: &Path) -> PathBuf {
    seg_path.with_extension("gidx")
}

/// Serializes and writes a sidecar.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_index(path: &Path, idx: &SegIndex) -> std::io::Result<()> {
    let mut body = Vec::with_capacity(idx.terms.len() * 64);
    for t in &idx.terms {
        body.push(t.class as u8);
        put_uvarint(&mut body, t.name.len() as u64);
        body.extend_from_slice(t.name.as_bytes());
        put_uvarint(&mut body, t.count);
        put_uvarint(&mut body, t.first_us);
        put_uvarint(&mut body, t.last_us - t.first_us);
        body.extend_from_slice(&t.min_value.to_le_bytes());
        body.extend_from_slice(&t.max_value.to_le_bytes());
        put_uvarint(&mut body, t.postings.len() as u64);
        let mut prev_off = 0u64;
        for p in &t.postings {
            put_uvarint(&mut body, p.offset - prev_off);
            prev_off = p.offset;
            put_uvarint(&mut body, p.first_us);
            put_uvarint(&mut body, p.last_us - p.first_us);
            put_uvarint(&mut body, p.count);
            body.extend_from_slice(&p.min_value.to_le_bytes());
            body.extend_from_slice(&p.max_value.to_le_bytes());
        }
    }
    let mut out = Vec::with_capacity(GIDX_HEADER_LEN + body.len());
    out.extend_from_slice(&GIDX_MAGIC);
    out.extend_from_slice(&GIDX_VERSION.to_le_bytes());
    out.extend_from_slice(&idx.tier.to_le_bytes());
    out.extend_from_slice(&(idx.terms.len() as u32).to_le_bytes());
    out.extend_from_slice(&idx.seg_len.to_le_bytes());
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    // The CRC covers every meaningful header byte before it plus the
    // body, so a flipped tier / seg_len / count bit is caught, not
    // silently served as wrong postings.
    let crc = crc32(crc32(0, &out[..24]), &body);
    out.extend_from_slice(&crc.to_le_bytes());
    out.extend_from_slice(&[0u8; 4]);
    out.extend_from_slice(&body);
    std::fs::write(path, out)
}

/// Parses sidecar bytes; `None` on any structural damage (bad magic,
/// version, CRC, or truncation).
fn parse_index(bytes: &[u8]) -> Option<SegIndex> {
    if bytes.len() < GIDX_HEADER_LEN || bytes[..4] != GIDX_MAGIC {
        return None;
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if version != GIDX_VERSION {
        return None;
    }
    let tier = u16::from_le_bytes([bytes[6], bytes[7]]);
    let term_count = u32::from_le_bytes(bytes[8..12].try_into().ok()?) as usize;
    let seg_len = u64::from_le_bytes(bytes[12..20].try_into().ok()?);
    let body_len = u32::from_le_bytes(bytes[20..24].try_into().ok()?) as usize;
    let body_crc = u32::from_le_bytes(bytes[24..28].try_into().ok()?);
    let body = bytes.get(GIDX_HEADER_LEN..GIDX_HEADER_LEN + body_len)?;
    if bytes.len() != GIDX_HEADER_LEN + body_len || crc32(crc32(0, &bytes[..24]), body) != body_crc
    {
        return None;
    }
    let mut terms = Vec::with_capacity(term_count.min(4096));
    let mut pos = 0usize;
    for _ in 0..term_count {
        let class = TermClass::from_u8(*body.get(pos)?)?;
        pos += 1;
        let name_len = get_uvarint(body, &mut pos)? as usize;
        let name = std::str::from_utf8(body.get(pos..pos + name_len)?).ok()?;
        pos += name_len;
        let count = get_uvarint(body, &mut pos)?;
        let first_us = get_uvarint(body, &mut pos)?;
        let last_us = first_us.checked_add(get_uvarint(body, &mut pos)?)?;
        let min_value = read_f64(body, &mut pos)?;
        let max_value = read_f64(body, &mut pos)?;
        let n_postings = get_uvarint(body, &mut pos)? as usize;
        let mut postings = Vec::with_capacity(n_postings.min(4096));
        let mut prev_off = 0u64;
        for _ in 0..n_postings {
            let offset = prev_off.checked_add(get_uvarint(body, &mut pos)?)?;
            prev_off = offset;
            let p_first = get_uvarint(body, &mut pos)?;
            let p_last = p_first.checked_add(get_uvarint(body, &mut pos)?)?;
            let p_count = get_uvarint(body, &mut pos)?;
            let p_min = read_f64(body, &mut pos)?;
            let p_max = read_f64(body, &mut pos)?;
            postings.push(Posting {
                offset,
                first_us: p_first,
                last_us: p_last,
                count: p_count,
                min_value: p_min,
                max_value: p_max,
            });
        }
        terms.push(TermEntry {
            class,
            name: name.to_owned(),
            count,
            first_us,
            last_us,
            min_value,
            max_value,
            postings,
        });
    }
    (pos == body.len()).then_some(SegIndex {
        tier,
        seg_len,
        terms,
    })
}

fn read_f64(body: &[u8], pos: &mut usize) -> Option<f64> {
    let b = body.get(*pos..*pos + 8)?;
    *pos += 8;
    Some(f64::from_le_bytes(b.try_into().ok()?))
}

/// Reads a sidecar file.
///
/// # Errors
///
/// `InvalidData` on structural damage, I/O errors otherwise.
pub fn read_index(path: &Path) -> std::io::Result<SegIndex> {
    let bytes = std::fs::read(path)?;
    parse_index(&bytes).ok_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("{}: corrupt index sidecar", path.display()),
        )
    })
}

/// Outcome of probing a segment's sidecar without touching the
/// segment's data blocks.
#[derive(Debug)]
pub enum IndexProbe {
    /// Sidecar present, intact, and bound to the segment's exact
    /// current length.
    Valid(SegIndex),
    /// No sidecar on disk (unsealed segment, or pre-index store).
    Missing,
    /// Sidecar parses but describes a different segment length.
    Stale,
    /// Sidecar bytes are damaged (magic / version / CRC / truncation).
    Corrupt,
}

/// Probes the sidecar for `seg_path`. Only the sidecar and the
/// segment's file length are read — never segment data.
///
/// # Errors
///
/// Propagates I/O errors other than a missing sidecar.
pub fn probe_index(seg_path: &Path) -> std::io::Result<IndexProbe> {
    let bytes = match std::fs::read(index_path(seg_path)) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(IndexProbe::Missing),
        Err(e) => return Err(e),
    };
    let Some(idx) = parse_index(&bytes) else {
        return Ok(IndexProbe::Corrupt);
    };
    if idx.seg_len != std::fs::metadata(seg_path)?.len() {
        return Ok(IndexProbe::Stale);
    }
    Ok(IndexProbe::Valid(idx))
}

/// Rebuilds a segment's index by decoding its blocks. CRC-failing
/// blocks contribute no postings (matching the reader, which skips
/// them). `limit` restricts the build to the first `limit` bytes —
/// recovery passes the trusted prefix length.
///
/// # Errors
///
/// Propagates I/O errors; `InvalidData` when even the segment header
/// is unreadable.
pub fn build_index(seg_path: &Path, limit: Option<u64>) -> std::io::Result<SegIndex> {
    let mut file = File::open(seg_path)?;
    let file_len = file.seek(SeekFrom::End(0))?;
    let limit = limit.unwrap_or(file_len).min(file_len);
    let (tier, _) = read_seg_header(&mut file)?;
    let scan = scan_headers(&mut file)?;
    let mut builder = IndexBuilder::default();
    // Small per-block scratch: distinct names per block are few, so a
    // linear-probe Vec beats hashing (same reasoning as the writer's
    // name table).
    let mut acc: Vec<(Option<std::sync::Arc<str>>, TermStat)> = Vec::new();
    for meta in &scan.blocks {
        if meta.offset + BLOCK_HEADER_LEN + u64::from(meta.payload_len) > limit {
            break;
        }
        let Some(payload) = read_block_payload(&mut file, meta)? else {
            continue;
        };
        let (frames, _) = crate::segment::decode_records(&payload, meta.first_us);
        acc.clear();
        for f in &frames {
            let key = f.name.as_deref();
            match acc.iter_mut().find(|(k, _)| k.as_deref() == key) {
                Some((_, s)) => s.note(f.time_us, f.value),
                None => {
                    let mut s = TermStat::default();
                    s.note(f.time_us, f.value);
                    acc.push((f.name.clone(), s));
                }
            }
        }
        for (name, s) in &acc {
            builder.add_block(meta.offset, name.as_deref(), s);
        }
    }
    Ok(builder.finish(tier, limit))
}

/// Loads a segment's sidecar, rebuilding (and best-effort persisting)
/// it when missing, stale, or corrupt. Returns the index and whether a
/// rebuild happened — a rebuild reads the whole segment, so planners
/// count it as having opened the file.
///
/// # Errors
///
/// Propagates I/O errors from the rebuild path.
pub fn load_or_rebuild_index(seg_path: &Path) -> std::io::Result<(SegIndex, bool)> {
    match probe_index(seg_path)? {
        IndexProbe::Valid(idx) => Ok((idx, false)),
        IndexProbe::Missing | IndexProbe::Stale | IndexProbe::Corrupt => {
            let idx = build_index(seg_path, None)?;
            // Persistence is an optimization; a read-only store dir
            // still answers queries from the in-memory rebuild.
            let _ = write_index(&index_path(seg_path), &idx);
            Ok((idx, true))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::SegmentWriter;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("gstore-index-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn sample_index() -> SegIndex {
        let mut b = IndexBuilder::default();
        let s = TermStat {
            count: 3,
            first_us: 1_000,
            last_us: 3_000,
            min_value: -1.5,
            max_value: 7.25,
        };
        b.add_block(16, Some("scope.tick#t0"), &s);
        b.add_block(16, Some("breach.gel.iteration"), &s);
        b.add_block(900, Some("scope.tick#t0"), &s);
        b.add_block(900, None, &s);
        b.finish(0, 2_048)
    }

    #[test]
    fn split_thread_parses_span_names() {
        assert_eq!(split_thread("scope.tick#t3"), Some(("scope.tick", 3)));
        assert_eq!(split_thread("a#t12"), Some(("a", 12)));
        assert_eq!(split_thread("no.suffix"), None);
        assert_eq!(split_thread("#t1"), None);
        assert_eq!(split_thread("x#tnope"), None);
        assert_eq!(split_thread("x#t"), None);
    }

    #[test]
    fn builder_derives_all_term_classes() {
        let idx = sample_index();
        let sig = idx.find(TermClass::Signal, "scope.tick#t0").unwrap();
        assert_eq!(sig.count, 6);
        assert_eq!(sig.postings.len(), 2);
        assert_eq!(sig.postings[0].offset, 16);
        assert_eq!(sig.postings[1].offset, 900);
        assert!(idx.find(TermClass::Span, "scope.tick").is_some());
        assert!(idx.find(TermClass::Thread, "0").is_some());
        let sev = idx.find(TermClass::Severity, "breach").unwrap();
        assert_eq!(sev.count, 3);
        // Unnamed frames index under the empty signal term.
        assert_eq!(idx.find(TermClass::Signal, "").unwrap().count, 3);
        assert_eq!(idx.frames(), 3 * 4);
        assert_eq!(idx.first_us(), Some(1_000));
        assert_eq!(idx.last_us(), Some(3_000));
    }

    #[test]
    fn sidecar_round_trips() {
        let path = tmp("roundtrip.gidx");
        let idx = sample_index();
        write_index(&path, &idx).unwrap();
        assert_eq!(read_index(&path).unwrap(), idx);
    }

    #[test]
    fn corrupt_and_truncated_sidecars_are_rejected() {
        let path = tmp("damage.gidx");
        let idx = sample_index();
        write_index(&path, &idx).unwrap();
        let good = std::fs::read(&path).unwrap();
        // Flip one body byte: CRC must catch it.
        let mut bad = good.clone();
        *bad.last_mut().unwrap() ^= 0x01;
        std::fs::write(&path, &bad).unwrap();
        assert!(read_index(&path).is_err());
        // Truncate mid-body.
        std::fs::write(&path, &good[..good.len() - 3]).unwrap();
        assert!(read_index(&path).is_err());
        // Bad magic.
        let mut bad = good.clone();
        bad[0] = b'X';
        std::fs::write(&path, &bad).unwrap();
        assert!(read_index(&path).is_err());
    }

    #[test]
    fn probe_distinguishes_missing_stale_corrupt() {
        let seg = tmp("probe.gseg");
        let mut w = SegmentWriter::create(seg.clone(), 0, 0, false).unwrap();
        w.append(1_000, 1.0, Some("sig"));
        w.flush_block().unwrap();
        w.seal().unwrap();
        assert!(matches!(probe_index(&seg).unwrap(), IndexProbe::Valid(_)));
        // Stale: sidecar describes a different segment length.
        let mut idx = read_index(&index_path(&seg)).unwrap();
        idx.seg_len += 1;
        write_index(&index_path(&seg), &idx).unwrap();
        assert!(matches!(probe_index(&seg).unwrap(), IndexProbe::Stale));
        // Corrupt: flipped byte.
        let mut bytes = std::fs::read(index_path(&seg)).unwrap();
        *bytes.last_mut().unwrap() ^= 0x80;
        std::fs::write(index_path(&seg), &bytes).unwrap();
        assert!(matches!(probe_index(&seg).unwrap(), IndexProbe::Corrupt));
        // Missing.
        std::fs::remove_file(index_path(&seg)).unwrap();
        assert!(matches!(probe_index(&seg).unwrap(), IndexProbe::Missing));
        // load_or_rebuild recovers from all three and persists.
        let (rebuilt, was_rebuilt) = load_or_rebuild_index(&seg).unwrap();
        assert!(was_rebuilt);
        assert_eq!(rebuilt.find(TermClass::Signal, "sig").unwrap().count, 1);
        assert!(matches!(probe_index(&seg).unwrap(), IndexProbe::Valid(_)));
    }

    #[test]
    fn built_index_matches_writer_index() {
        // The index the writer accumulates block-by-block must be
        // byte-identical to one rebuilt from the sealed file.
        let seg = tmp("writer-vs-rebuild.gseg");
        let mut w = SegmentWriter::create(seg.clone(), 0, 0, false).unwrap();
        for i in 0..200u64 {
            let name = match i % 3 {
                0 => Some("gel.iteration#t0"),
                1 => Some("breach.scope.tick"),
                _ => None,
            };
            w.append(i * 500, (i as f64 * 0.37).sin() * 10.0, name);
            if i % 40 == 39 {
                w.flush_block().unwrap();
            }
        }
        w.flush_block().unwrap();
        w.seal().unwrap();
        let written = read_index(&index_path(&seg)).unwrap();
        let rebuilt = build_index(&seg, None).unwrap();
        assert_eq!(written, rebuilt);
        assert_eq!(written.frames(), 200);
    }

    #[test]
    fn nan_values_do_not_poison_bounds() {
        let mut s = TermStat::default();
        s.note(1, f64::NAN);
        s.note(2, 5.0);
        s.note(3, f64::NAN);
        assert_eq!(s.min_value, 5.0);
        assert_eq!(s.max_value, 5.0);
    }
}
