//! glod — the zoom-pyramid: tiered level-of-detail compaction and a
//! constant-cost `query(signal, t0, t1, px_width)` engine.
//!
//! Zooming out over recorded history must not cost O(stored frames).
//! The pyramid makes resolution follow the viewport instead of the
//! archive:
//!
//! * **Compaction** — a [`Compactor`] folds *sealed* tier-K segments
//!   into tier-K+1 min/max envelope segments at a power-of-two
//!   decimation `group`: per signal, every window of source frames is
//!   reduced with the exact renderer reduction
//!   [`gscope::decimate_minmax`], and each band survives as two frames
//!   at the band's first timestamp — `(t, min)` then `(t, max)`, equal
//!   times being legal under §3.3. Tier K+1 therefore holds ~`2/group`
//!   of tier K's frames, and a `.gidx` sidecar is sealed with every
//!   output.
//! * **Crash safety** — an output is built in a `lod-tmp-*` scratch
//!   file and renamed into place only after it is sealed, so a kill at
//!   any instant leaves either no output (the scratch is swept and the
//!   fold re-runs bit-identically) or a complete one. The output's
//!   file name carries the *last source sequence number it covers*, so
//!   the largest tier-K+1 sequence is the tier's watermark: sources at
//!   or below it are done, sources above it are pending. Nothing is
//!   ever folded twice. Externally damaged tier segments go through
//!   the same [`recover_segment`] path the store's tier-0 tail does.
//! * **Query** — [`query`] picks the coarsest tier that still yields
//!   at least one envelope column per pixel, prunes segments and
//!   blocks wholesale off `.gidx` time envelopes, scans the survivors
//!   in parallel (scoped threads, one reader per segment) and merges
//!   by time into `px_width` columns. Where the pyramid lags behind
//!   the append head, the plan stitches finer tiers over the
//!   uncovered tail, down to tier 0.
//!
//! [`LodStats`] counts what was *not* done — pruned segments and
//! blocks are the proof that a year of history costs the same as a
//! minute.

use std::collections::{BTreeMap, HashMap};
use std::fs::File;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

use gel::TimeStamp;
use gscope::{decimate_minmax, Cols, Envelope, Result, Scope, ScopeError};
use gtel::{Counter, Gauge, Registry};

use crate::index::{index_path, load_or_rebuild_index, probe_index, IndexProbe, TermClass};
use crate::segment::{
    decode_filtered, decode_records, parse_segment_file_name, read_block_header_at,
    read_block_payload, read_seg_header, recover_segment, scan_headers, segment_file_name,
    SegmentWriter,
};

/// Prefix of in-progress compaction outputs. Never parsed as a
/// segment, swept on [`Compactor::recover`].
const TMP_PREFIX: &str = "lod-tmp-";

/// Tuning knobs for a [`Compactor`].
#[derive(Clone, Debug)]
pub struct CompactorConfig {
    /// Source frames folded into one min/max band (power of two,
    /// >= 2). Each tier holds `2/group` of the tier below.
    pub group: u64,
    /// Highest tier the pyramid builds.
    pub max_tier: u16,
    /// A tier is folded only once this many source frames are
    /// pending — keeps the pyramid from sprouting trivial tiers.
    /// [`Compactor::drain`] lowers the bar to one full `group`.
    pub min_fold_frames: u64,
    /// Upper bound on source frames folded into a single output
    /// segment (bounds fold memory).
    pub batch_frames: u64,
    /// Per-tier byte budget for *folded* segments: once a tier-K
    /// segment is covered by the tier-K+1 watermark it may be deleted,
    /// oldest first, to keep the tier under budget. `None` keeps
    /// everything. Do not combine with the store's own
    /// `retain_bytes`/`retain_age` eviction — one owner per directory.
    pub evict_folded: Option<u64>,
    /// Frames per block in output segments — block headers are the
    /// query's pruning unit, so this bounds wasted decode per slice.
    pub block_frames: u64,
    /// Poll period of the background thread ([`Compactor::start`]).
    pub interval: Duration,
}

impl Default for CompactorConfig {
    fn default() -> Self {
        CompactorConfig {
            group: 16,
            max_tier: 8,
            min_fold_frames: 64 * 1024,
            batch_frames: 2 * 1024 * 1024,
            evict_folded: None,
            block_frames: 1024,
            interval: Duration::from_millis(500),
        }
    }
}

/// What one [`Compactor::pass`] did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CompactReport {
    /// Output segments written (one per source batch per tier).
    pub folds: u64,
    /// Source frames read and folded.
    pub frames_in: u64,
    /// Envelope frames written (two per band).
    pub frames_out: u64,
    /// Folded source segments deleted under `evict_folded`.
    pub segments_evicted: u64,
    /// Scratch files swept plus damaged tier segments re-recovered.
    pub recovered: u64,
    /// Highest tier present after the pass.
    pub top_tier: u16,
}

impl CompactReport {
    fn absorb(&mut self, other: CompactReport) {
        self.folds += other.folds;
        self.frames_in += other.frames_in;
        self.frames_out += other.frames_out;
        self.segments_evicted += other.segments_evicted;
        self.recovered += other.recovered;
        self.top_tier = self.top_tier.max(other.top_tier);
    }
}

/// Cached gtel handles for the compactor.
#[derive(Debug)]
pub struct LodTelemetry {
    /// `store.lod.folds` — output segments written.
    pub folds: Arc<Counter>,
    /// `store.lod.frames_in` — source frames folded.
    pub frames_in: Arc<Counter>,
    /// `store.lod.frames_out` — envelope frames written.
    pub frames_out: Arc<Counter>,
    /// `store.lod.evicted` — folded source segments deleted.
    pub evicted: Arc<Counter>,
    /// `store.lod.top_tier` — highest tier present.
    pub top_tier: Arc<Gauge>,
}

impl LodTelemetry {
    /// Resolves the compactor's metric handles from `registry`.
    pub fn new(registry: &Arc<Registry>) -> Self {
        LodTelemetry {
            folds: registry.counter("store.lod.folds"),
            frames_in: registry.counter("store.lod.frames_in"),
            frames_out: registry.counter("store.lod.frames_out"),
            evicted: registry.counter("store.lod.evicted"),
            top_tier: registry.gauge("store.lod.top_tier"),
        }
    }
}

/// One segment file of one tier, as found on disk.
#[derive(Clone, Debug)]
struct TierSeg {
    seq: u64,
    path: PathBuf,
    bytes: u64,
}

/// Process-wide size cache for sealed segment files. A segment's
/// length is immutable once sealed, so a `stat` per file per query is
/// pure waste — and at a year of history the directory holds hundreds
/// of fold outputs. Only files that can still grow (the newest tier-0
/// and tier-1 segments — the store's append head and its retention
/// log) are re-stated every time; see [`tier_map`].
fn seg_bytes_cache() -> &'static Mutex<HashMap<PathBuf, u64>> {
    static CACHE: OnceLock<Mutex<HashMap<PathBuf, u64>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Lists `dir`'s segments grouped by tier, ascending by sequence.
///
/// The directory itself is re-listed on every call — the file *set*
/// is never stale — but with `fresh_stat` false, sizes of sealed
/// files come from [`seg_bytes_cache`]. The compactor passes true:
/// its eviction budget and recovery-truncation checks must see real
/// lengths even after external damage.
fn tier_map(dir: &Path, fresh_stat: bool) -> std::io::Result<BTreeMap<u16, Vec<TierSeg>>> {
    let mut map: BTreeMap<u16, Vec<TierSeg>> = BTreeMap::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some((seq, tier)) = parse_segment_file_name(name) else {
            continue;
        };
        let path = entry.path();
        let bytes = if fresh_stat {
            entry.metadata().map(|m| m.len()).unwrap_or(0)
        } else {
            let cached = seg_bytes_cache().lock().unwrap().get(&path).copied();
            match cached {
                Some(b) => b,
                None => entry.metadata().map(|m| m.len()).unwrap_or(0),
            }
        };
        map.entry(tier)
            .or_default()
            .push(TierSeg { seq, path, bytes });
    }
    for (&tier, segs) in map.iter_mut() {
        segs.sort_by_key(|s| s.seq);
        // The newest tier-0 and tier-1 segments may have an open
        // writer appending to them; everything else is sealed. Stat
        // the growable pair fresh and remember the rest.
        let growable = (tier <= 1).then(|| segs.len().saturating_sub(1));
        let mut cache = seg_bytes_cache().lock().unwrap();
        if cache.len() >= INDEX_CACHE_CAP {
            cache.clear();
        }
        for (i, seg) in segs.iter_mut().enumerate() {
            if Some(i) == growable {
                seg.bytes = std::fs::metadata(&seg.path).map(|m| m.len()).unwrap_or(0);
            } else if fresh_stat {
                // A fresh stat is authoritative — it also repairs any
                // stale cached size (recovery truncates files in
                // place, without a rename).
                cache.insert(seg.path.clone(), seg.bytes);
            } else {
                cache.entry(seg.path.clone()).or_insert(seg.bytes);
            }
        }
    }
    Ok(map)
}

/// The tier's compaction watermark: the largest tier-`tier` sequence
/// number in `dir`. Every source segment of the tier below with a
/// sequence at or under it has been folded; anything above is pending.
#[must_use]
pub fn watermark(dir: &Path, tier: u16) -> Option<u64> {
    let entries = std::fs::read_dir(dir).ok()?;
    entries
        .flatten()
        .filter_map(|e| e.file_name().to_str().and_then(parse_segment_file_name))
        .filter(|&(_, t)| t == tier)
        .map(|(seq, _)| seq)
        .max()
}

/// Frames in a segment: from its sidecar when valid, else from a block
/// header scan (no payload decodes either way).
fn seg_frames(path: &Path) -> std::io::Result<u64> {
    if let IndexProbe::Valid(idx) = probe_index(path)? {
        return Ok(idx.frames());
    }
    let mut file = File::open(path)?;
    if read_seg_header(&mut file).is_err() {
        return Ok(0);
    }
    let scan = scan_headers(&mut file)?;
    Ok(scan.blocks.iter().map(|b| u64::from(b.frames)).sum())
}

/// The background pyramid builder for one store directory.
///
/// The compactor only ever touches *sealed* segments — a segment is
/// folded only when a newer one exists at its tier or its `.gidx`
/// sidecar matches the file exactly (sidecars are written at seal), so
/// it never races the store's active writers. Run it inline with
/// [`Compactor::pass`] / [`Compactor::drain`], or spawn the background
/// thread with [`Compactor::start`].
#[derive(Debug)]
pub struct Compactor {
    dir: PathBuf,
    cfg: CompactorConfig,
    tel: LodTelemetry,
}

impl Compactor {
    /// Creates a compactor over `dir`.
    ///
    /// # Errors
    ///
    /// [`ScopeError::OutOfRange`] when `group` is not a power of two
    /// >= 2 or `max_tier` is 0.
    pub fn new(dir: impl Into<PathBuf>, cfg: CompactorConfig) -> Result<Compactor> {
        if cfg.group < 2 || !cfg.group.is_power_of_two() {
            return Err(ScopeError::OutOfRange {
                what: "lod group (power of two >= 2)",
                value: cfg.group as f64,
            });
        }
        if cfg.max_tier == 0 {
            return Err(ScopeError::OutOfRange {
                what: "lod max_tier",
                value: 0.0,
            });
        }
        Ok(Compactor {
            dir: dir.into(),
            cfg,
            tel: LodTelemetry::new(&Registry::shared()),
        })
    }

    /// The directory being compacted.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Re-homes the compactor's metrics in `registry`.
    pub fn set_telemetry(&mut self, registry: &Arc<Registry>) {
        self.tel = LodTelemetry::new(registry);
    }

    /// Sweeps crash leftovers: deletes `lod-tmp-*` scratch files (a
    /// kill mid-fold leaves only these — the fold re-runs from its
    /// sources) and runs [`recover_segment`] over any tier >= 1
    /// segment whose sidecar does not match it (external damage:
    /// torn tails are truncated, sidecars rebuilt). The newest segment
    /// of each tier is skipped unless sealed — it may be an open
    /// writer. Returns the number of items cleaned.
    ///
    /// # Errors
    ///
    /// Propagates directory I/O errors; per-file damage is repaired,
    /// not fatal.
    pub fn recover(&self) -> std::io::Result<u64> {
        let mut cleaned = 0u64;
        for entry in std::fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if name.starts_with(TMP_PREFIX) {
                std::fs::remove_file(entry.path())?;
                cleaned += 1;
            }
        }
        let tiers = tier_map(&self.dir, true)?;
        for (&tier, segs) in &tiers {
            if tier == 0 {
                continue; // tier 0 belongs to Store::open's recovery
            }
            let newest = segs.last().map(|s| s.seq);
            for seg in segs {
                if matches!(probe_index(&seg.path)?, IndexProbe::Valid(_)) {
                    continue;
                }
                if tier == 1 && Some(seg.seq) == newest && watermark(&self.dir, 2) < Some(seg.seq) {
                    // Possibly an open writer: only tier 1 can have
                    // one (the store's bucketed retention log). Tiers
                    // above are compactor-owned and always sealed, so
                    // a mismatched sidecar there is always damage.
                    continue;
                }
                let rec = recover_segment(&seg.path)?;
                // recover_segment rebuilds the sidecar for the valid
                // prefix but leaves the torn bytes; chop them so the
                // file and sidecar agree (= sealed again).
                if rec.valid_len < seg.bytes {
                    std::fs::OpenOptions::new()
                        .write(true)
                        .open(&seg.path)?
                        .set_len(rec.valid_len)?;
                }
                if rec.truncated || rec.index_rebuilt {
                    cleaned += 1;
                }
            }
        }
        Ok(cleaned)
    }

    /// One full sweep: recover, then fold every tier with at least
    /// `min_fold_frames` pending sealed frames, then apply the
    /// `evict_folded` budget.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; individually unreadable source segments
    /// are skipped.
    pub fn pass(&mut self) -> std::io::Result<CompactReport> {
        self.pass_with_threshold(self.cfg.min_fold_frames)
    }

    /// Like [`Compactor::pass`] but folds any tier with at least one
    /// full `group` of pending frames — used at shutdown and in tests
    /// to flush the pyramid.
    ///
    /// # Errors
    ///
    /// Same as [`Compactor::pass`].
    pub fn drain(&mut self) -> std::io::Result<CompactReport> {
        self.pass_with_threshold(self.cfg.group)
    }

    fn pass_with_threshold(&mut self, threshold: u64) -> std::io::Result<CompactReport> {
        let mut report = CompactReport {
            recovered: self.recover()?,
            ..CompactReport::default()
        };
        for k in 0..self.cfg.max_tier {
            let folded = self.fold_tier(k, threshold.max(1))?;
            report.absorb(folded);
        }
        if let Some(budget) = self.cfg.evict_folded {
            report.segments_evicted = self.evict_folded(budget)?;
        }
        let tiers = tier_map(&self.dir, true)?;
        report.top_tier = tiers.keys().copied().max().unwrap_or(0);
        self.tel.top_tier.set_count(usize::from(report.top_tier));
        Ok(report)
    }

    /// Folds pending sealed tier-`k` segments into tier-`k+1`.
    fn fold_tier(&mut self, k: u16, threshold: u64) -> std::io::Result<CompactReport> {
        let mut report = CompactReport::default();
        let tiers = tier_map(&self.dir, true)?;
        let Some(segs) = tiers.get(&k) else {
            return Ok(report);
        };
        let wm = watermark(&self.dir, k + 1);
        let newest = segs.last().map(|s| s.seq);
        let mut pending: Vec<&TierSeg> = Vec::new();
        for seg in segs {
            if Some(seg.seq) <= wm {
                continue; // already folded
            }
            if Some(seg.seq) == newest {
                // The newest segment may still be appended to; only a
                // matching sidecar proves it sealed.
                let sealed = matches!(probe_index(&seg.path)?, IndexProbe::Valid(_));
                if !sealed {
                    continue;
                }
            }
            pending.push(seg);
        }
        if pending.is_empty() {
            return Ok(report);
        }
        let mut frames: Vec<u64> = Vec::with_capacity(pending.len());
        for seg in &pending {
            frames.push(seg_frames(&seg.path).unwrap_or(0));
        }
        if frames.iter().sum::<u64>() < threshold {
            return Ok(report);
        }
        // Batch pending sources so one output never folds more than
        // `batch_frames` at a time (bounds fold memory).
        let mut batch: Vec<&TierSeg> = Vec::new();
        let mut batch_frames = 0u64;
        for (seg, n) in pending.iter().zip(&frames) {
            batch.push(seg);
            batch_frames += n;
            if batch_frames >= self.cfg.batch_frames {
                report.absorb(self.fold_batch(k, &batch)?);
                batch.clear();
                batch_frames = 0;
            }
        }
        if !batch.is_empty() {
            report.absorb(self.fold_batch(k, &batch)?);
        }
        Ok(report)
    }

    /// Folds one run of tier-`k` segments into a single tier-`k+1`
    /// output named after the last source sequence (the watermark
    /// advance), built in a scratch file and renamed only once sealed.
    fn fold_batch(&mut self, k: u16, batch: &[&TierSeg]) -> std::io::Result<CompactReport> {
        let mut report = CompactReport::default();
        let out_seq = batch.last().expect("non-empty batch").seq;
        // Per-signal source frames, in time order (segments are read
        // in sequence = time order; frames inside are time-ordered).
        let mut per_signal: BTreeMap<Option<Arc<str>>, Vec<(u64, f64)>> = BTreeMap::new();
        for seg in batch {
            let Ok(mut file) = File::open(&seg.path) else {
                continue; // evicted underneath us: skip
            };
            if read_seg_header(&mut file).is_err() {
                continue;
            }
            let scan = scan_headers(&mut file)?;
            for meta in &scan.blocks {
                let Some(payload) = read_block_payload(&mut file, meta)? else {
                    continue; // CRC mismatch: skip, keep the rest
                };
                let (decoded, _) = decode_records(&payload, meta.first_us);
                report.frames_in += decoded.len() as u64;
                for f in decoded {
                    per_signal
                        .entry(f.name)
                        .or_default()
                        .push((f.time_us, f.value));
                }
            }
        }
        // Reduce each signal with the renderer's own decimation: a
        // band per `group` source frames, so the pairs on disk are
        // exactly `decimate_minmax(source, ceil(n/group))`.
        let group = self.cfg.group as usize;
        let mut events: Vec<(u64, f64, f64, Option<Arc<str>>)> = Vec::new();
        for (name, frames) in &per_signal {
            let n = frames.len();
            if n == 0 {
                continue;
            }
            let width = n.div_ceil(group);
            let samples: Vec<Option<f64>> = frames.iter().map(|&(_, v)| Some(v)).collect();
            let bands = decimate_minmax(Cols::from_slices(&samples, &[]), width);
            // Band b's timestamp: the first source frame that lands in
            // it (same `i * width / n` partition decimate_minmax uses).
            let mut band_time: Vec<Option<u64>> = vec![None; bands.len()];
            for (i, &(t, _)) in frames.iter().enumerate() {
                let b = i * bands.len() / n;
                if band_time[b].is_none() {
                    band_time[b] = Some(t);
                }
            }
            for (b, band) in bands.into_iter().enumerate() {
                let Some((lo, hi)) = band else { continue };
                let t = band_time[b].expect("non-empty band has a first frame");
                events.push((t, lo, hi, name.clone()));
            }
        }
        // Interleave signals by time; stable so equal timestamps keep
        // signal order deterministic.
        events.sort_by_key(|&(t, ..)| t);
        let tmp = self
            .dir
            .join(format!("{TMP_PREFIX}{out_seq:08}-t{}.gseg", k + 1));
        let created_us = events.first().map_or(0, |&(t, ..)| t);
        let mut w = SegmentWriter::create(tmp.clone(), k + 1, created_us, false)?;
        w.set_index_enabled(true);
        for (t, lo, hi, name) in &events {
            w.append(*t, *lo, name.as_deref());
            w.append(*t, *hi, name.as_deref());
            // Keep output blocks fine-grained: block headers are the
            // pruning unit, so a monolithic block would make a tail
            // stitch decode the whole tier.
            if u64::from(w.block_frames()) >= self.cfg.block_frames {
                w.flush_block()?;
            }
        }
        report.frames_out += events.len() as u64 * 2;
        w.seal()?;
        // Publish atomically: data first, then its sidecar. A crash
        // between the two renames leaves a segment whose index is
        // rebuilt on first use.
        let final_seg = self.dir.join(segment_file_name(out_seq, k + 1));
        std::fs::rename(&tmp, &final_seg)?;
        let _ = std::fs::rename(index_path(&tmp), index_path(&final_seg));
        report.folds += 1;
        self.tel.folds.inc();
        self.tel.frames_in.add(report.frames_in);
        self.tel.frames_out.add(report.frames_out);
        Ok(report)
    }

    /// Deletes folded (watermark-covered) segments, oldest first,
    /// until every tier fits the byte budget.
    fn evict_folded(&mut self, budget: u64) -> std::io::Result<u64> {
        let mut evicted = 0u64;
        let tiers = tier_map(&self.dir, true)?;
        for (&tier, segs) in &tiers {
            let Some(wm) = watermark(&self.dir, tier + 1) else {
                continue;
            };
            let mut total: u64 = segs.iter().map(|s| s.bytes).sum();
            for seg in segs {
                if total <= budget || seg.seq > wm {
                    break;
                }
                std::fs::remove_file(&seg.path)?;
                let _ = std::fs::remove_file(index_path(&seg.path));
                total = total.saturating_sub(seg.bytes);
                evicted += 1;
            }
        }
        if evicted > 0 {
            self.tel.evicted.add(evicted);
        }
        Ok(evicted)
    }

    /// Spawns the background compaction thread: a [`Compactor::pass`]
    /// every `cfg.interval` until [`CompactorHandle::stop`].
    #[must_use]
    pub fn start(self) -> CompactorHandle {
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let join = std::thread::Builder::new()
            .name("glod-compactor".into())
            .spawn(move || {
                let mut c = self;
                while !flag.load(Ordering::Acquire) {
                    let _ = c.pass();
                    // Sleep in small slices so stop() is prompt.
                    let mut left = c.cfg.interval;
                    while !flag.load(Ordering::Acquire) && !left.is_zero() {
                        let step = left.min(Duration::from_millis(20));
                        std::thread::sleep(step);
                        left = left.saturating_sub(step);
                    }
                }
                c
            })
            .expect("spawn glod-compactor");
        CompactorHandle { stop, join }
    }
}

/// A running background compactor; dropping it without
/// [`CompactorHandle::stop`] detaches the thread.
#[derive(Debug)]
pub struct CompactorHandle {
    stop: Arc<AtomicBool>,
    join: std::thread::JoinHandle<Compactor>,
}

impl CompactorHandle {
    /// Signals the thread and waits for the pass in flight to finish;
    /// returns the compactor for inline reuse (e.g. a final
    /// [`Compactor::drain`]).
    #[must_use]
    pub fn stop(self) -> Compactor {
        self.stop.store(true, Ordering::Release);
        self.join.join().expect("glod-compactor panicked")
    }
}

// ---------------------------------------------------------------------
// The query side.
// ---------------------------------------------------------------------

/// One contiguous time range scanned at one tier.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LodSlice {
    /// Tier scanned.
    pub tier: u16,
    /// Slice start, microseconds (inclusive).
    pub from_us: u64,
    /// Slice end, microseconds (inclusive).
    pub to_us: u64,
}

/// Work counters for one [`query`] — the negative-space proof that
/// zooming out does not touch the archive.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LodStats {
    /// Tiers present in the store.
    pub tiers_present: u16,
    /// Segments of the scanned tiers considered by the planner.
    pub segments_considered: u64,
    /// Segments dismissed from sidecars alone (file never opened).
    pub segments_pruned: u64,
    /// Segments actually opened and read.
    pub segments_scanned: u64,
    /// Blocks dismissed off posting time envelopes (never read).
    pub blocks_pruned: u64,
    /// Blocks whose payload was read and decoded.
    pub blocks_scanned: u64,
    /// Frames decoded out of scanned blocks.
    pub frames_scanned: u64,
    /// Frames that landed in the requested signal, range, and columns.
    pub frames_used: u64,
    /// Sidecars rebuilt because they were missing/stale/corrupt.
    pub indexes_rebuilt: u64,
    /// Time spent planning (directory walk, sidecars, pruning), µs.
    pub plan_us: u64,
    /// Time spent scanning and folding surviving blocks, µs.
    pub scan_us: u64,
}

/// The answer to one [`query`].
#[derive(Clone, Debug)]
pub struct LodResult {
    /// Primary (coarsest) tier the planner chose.
    pub tier: u16,
    /// Pixel width the columns were folded to.
    pub px_width: usize,
    /// One `(min, max)` envelope band per pixel column; `None` where
    /// no frame landed.
    pub columns: Vec<Option<(f64, f64)>>,
    /// The scanned `(tier, range)` slices, in time order.
    pub slices: Vec<LodSlice>,
    /// Work counters.
    pub stats: LodStats,
}

/// Which signal terms a plan aggregates over.
#[derive(Clone, Copy)]
enum Target<'a> {
    /// One signal (the empty string is the unnamed stream).
    One(&'a str),
    /// Every signal in the store.
    All,
}

/// One planned segment: its parsed sidecar plus the segment-wide
/// signal-frame time range, precomputed so the pruning walk can reject
/// whole segments without touching their posting lists.
struct PlanSeg {
    seg: TierSeg,
    idx: Arc<crate::index::SegIndex>,
    first_us: u64,
    last_us: u64,
    /// Total blocks in the segment (distinct signal posting offsets —
    /// every frame belongs to exactly one signal term). Precomputed so
    /// per-query prune accounting never walks non-target terms.
    blocks: u64,
}

/// Per-tier planning view: loaded sidecars for each segment.
struct TierPlanInfo {
    tier: u16,
    /// `(seq-ordered)` segments with their sidecars.
    segs: Vec<PlanSeg>,
    /// Estimated frames of the target inside the query range.
    est_frames: f64,
    /// Newest covered time of the target at this tier.
    cover_end: Option<u64>,
}

/// One cached sidecar: valid while the segment file's length is
/// unchanged (sealed segments are immutable; a recovery truncation or
/// rebuild changes the length and misses the cache).
struct CachedIndex {
    seg_bytes: u64,
    first_us: u64,
    last_us: u64,
    blocks: u64,
    idx: Arc<crate::index::SegIndex>,
}

/// Above this many entries the cache is dropped wholesale — segments
/// are bounded by retention and eviction, so this only guards against
/// a caller sweeping unboundedly many directories.
const INDEX_CACHE_CAP: usize = 4096;

fn index_cache() -> &'static Mutex<HashMap<PathBuf, CachedIndex>> {
    static CACHE: OnceLock<Mutex<HashMap<PathBuf, CachedIndex>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Parsed sidecar for one segment, answered from the process-wide
/// cache when the file is unchanged. Planning visits every live
/// segment per query; re-parsing posting lists each time would scale
/// with stored history instead of `px_width`, which is exactly what
/// the pyramid exists to avoid.
fn cached_index(
    seg: &TierSeg,
    stats: &mut LodStats,
) -> std::io::Result<(Arc<crate::index::SegIndex>, u64, u64, u64)> {
    if let Some(c) = index_cache().lock().unwrap().get(&seg.path) {
        if c.seg_bytes == seg.bytes {
            return Ok((Arc::clone(&c.idx), c.first_us, c.last_us, c.blocks));
        }
    }
    let (idx, rebuilt) = match probe_index(&seg.path)? {
        IndexProbe::Valid(idx) => (idx, false),
        _ => load_or_rebuild_index(&seg.path)?,
    };
    if rebuilt {
        stats.indexes_rebuilt += 1;
    }
    let idx = Arc::new(idx);
    let (mut first_us, mut last_us) = (u64::MAX, 0u64);
    let mut offsets: Vec<u64> = Vec::new();
    for term in idx.terms_of(TermClass::Signal) {
        if term.count == 0 {
            continue;
        }
        first_us = first_us.min(term.first_us);
        last_us = last_us.max(term.last_us);
        offsets.extend(term.postings.iter().map(|p| p.offset));
    }
    offsets.sort_unstable();
    offsets.dedup();
    let blocks = offsets.len() as u64;
    let mut cache = index_cache().lock().unwrap();
    if cache.len() >= INDEX_CACHE_CAP {
        cache.clear();
    }
    cache.insert(
        seg.path.clone(),
        CachedIndex {
            seg_bytes: seg.bytes,
            first_us,
            last_us,
            blocks,
            idx: Arc::clone(&idx),
        },
    );
    Ok((idx, first_us, last_us, blocks))
}

fn load_tier_plans(
    dir: &Path,
    target: Target<'_>,
    from_us: u64,
    to_us: u64,
    stats: &mut LodStats,
) -> std::io::Result<Vec<TierPlanInfo>> {
    let tiers = tier_map(dir, false)?;
    stats.tiers_present = tiers.keys().copied().max().map_or(0, |t| t + 1);
    let mut plans = Vec::new();
    for (&tier, segs) in &tiers {
        let mut info = TierPlanInfo {
            tier,
            segs: Vec::new(),
            est_frames: 0.0,
            cover_end: None,
        };
        for seg in segs {
            let (idx, first_us, last_us, blocks) = cached_index(seg, stats)?;
            for term in idx.terms_of(TermClass::Signal) {
                let hit = match target {
                    Target::One(name) => term.name == name,
                    Target::All => true,
                };
                if !hit || term.count == 0 {
                    continue;
                }
                info.cover_end = info.cover_end.max(Some(term.last_us));
                let lo = term.first_us.max(from_us);
                let hi = term.last_us.min(to_us);
                if lo <= hi {
                    let span = (term.last_us - term.first_us + 1) as f64;
                    let overlap = (hi - lo + 1) as f64;
                    info.est_frames += term.count as f64 * (overlap / span);
                }
            }
            info.segs.push(PlanSeg {
                seg: seg.clone(),
                idx,
                first_us,
                last_us,
                blocks,
            });
        }
        plans.push(info);
    }
    Ok(plans)
}

/// Envelope columns a tier yields in the range: tiers above 0 store
/// `(min, max)` pairs, so two frames make one column.
fn est_columns(tier: u16, est_frames: f64) -> f64 {
    if tier == 0 {
        est_frames
    } else {
        est_frames / 2.0
    }
}

/// Stitches a plan: the primary tier first, then finer tiers over the
/// tail it does not cover yet, down to tier 0.
fn stitch_slices(plans: &[TierPlanInfo], primary: u16, from_us: u64, to_us: u64) -> Vec<LodSlice> {
    let mut slices = Vec::new();
    let cover = |tier: u16| -> Option<u64> {
        plans
            .iter()
            .find(|p| p.tier == tier)
            .and_then(|p| p.cover_end)
    };
    let primary_end = cover(primary).unwrap_or(0).min(to_us);
    let mut cursor = from_us;
    if primary_end >= from_us {
        slices.push(LodSlice {
            tier: primary,
            from_us,
            to_us: primary_end,
        });
        cursor = primary_end.saturating_add(1);
    }
    for tier in (0..primary).rev() {
        if cursor > to_us {
            break;
        }
        let Some(end) = cover(tier) else { continue };
        if end >= cursor {
            slices.push(LodSlice {
                tier,
                from_us: cursor,
                to_us: end.min(to_us),
            });
            cursor = end.min(to_us).saturating_add(1);
        }
    }
    slices
}

/// One segment's surviving blocks for one slice.
struct ScanUnit {
    path: PathBuf,
    offsets: Vec<u64>,
    from_us: u64,
    to_us: u64,
}

/// Decodes one segment's surviving blocks, filtering to the target
/// signal and range. One file handle per unit — the "one reader per
/// segment" scan.
fn scan_unit(unit: &ScanUnit, target: Target<'_>) -> (Vec<(u64, f64)>, u64, u64) {
    let mut frames = Vec::new();
    let mut blocks = 0u64;
    let mut decoded = 0u64;
    let Ok(mut file) = File::open(&unit.path) else {
        return (frames, blocks, decoded);
    };
    for &offset in &unit.offsets {
        let Ok(Some(meta)) = read_block_header_at(&mut file, offset) else {
            continue;
        };
        let Ok(Some(payload)) = read_block_payload(&mut file, &meta) else {
            continue; // CRC mismatch: same skip a replay does
        };
        blocks += 1;
        let signal = match target {
            Target::One(name) => Some(name),
            Target::All => None,
        };
        let (n, _) = decode_filtered(
            &payload,
            meta.first_us,
            signal,
            unit.from_us,
            unit.to_us,
            &mut |t, v| frames.push((t, v)),
        );
        decoded += n;
    }
    (frames, blocks, decoded)
}

/// Level-of-detail query over a store directory: fold the target
/// signal's history in `[t0, t1]` into `px_width` min/max columns,
/// reading the coarsest tier that still yields one column per pixel.
///
/// `signal` of `None` targets the unnamed stream. See [`query_at`] to
/// force a tier.
///
/// # Errors
///
/// [`ScopeError::Io`] on directory or sidecar I/O failure; damaged
/// blocks are skipped, not fatal.
pub fn query(
    dir: &Path,
    signal: Option<&str>,
    t0: TimeStamp,
    t1: TimeStamp,
    px_width: usize,
) -> Result<LodResult> {
    query_at(dir, signal, t0, t1, px_width, None)
}

/// [`query`] with an optional forced tier (`gtool replay --tier`).
///
/// # Errors
///
/// Same as [`query`].
pub fn query_at(
    dir: &Path,
    signal: Option<&str>,
    t0: TimeStamp,
    t1: TimeStamp,
    px_width: usize,
    forced_tier: Option<u16>,
) -> Result<LodResult> {
    let px = px_width.max(1);
    let from_us = t0.as_micros();
    let to_us = t1.as_micros().max(from_us);
    let name = signal.unwrap_or("");
    let target = Target::One(name);
    let mut stats = LodStats::default();
    let plan_t0 = std::time::Instant::now();
    let plans = load_tier_plans(dir, target, from_us, to_us, &mut stats).map_err(ScopeError::Io)?;

    // Tier choice: the coarsest tier still giving >= 1 column per
    // pixel; when even tier 0 cannot fill the canvas, the finest tier
    // with any coverage wins (full detail).
    let tier = match forced_tier {
        Some(t) => t,
        None => {
            let mut chosen: Option<u16> = None;
            let mut best: Option<(f64, u16)> = None;
            for p in &plans {
                let cols = est_columns(p.tier, p.est_frames);
                if cols >= px as f64 {
                    chosen = Some(chosen.map_or(p.tier, |c| c.max(p.tier)));
                }
                if cols > 0.0 && best.is_none_or(|(b, _)| cols > b) {
                    best = Some((cols, p.tier));
                }
            }
            chosen.or(best.map(|(_, t)| t)).unwrap_or(0)
        }
    };

    let slices = if forced_tier.is_some() {
        vec![LodSlice {
            tier,
            from_us,
            to_us,
        }]
    } else {
        stitch_slices(&plans, tier, from_us, to_us)
    };

    // Prune: per slice, keep segments whose target term overlaps the
    // slice, and inside them only the postings that overlap.
    let mut units: Vec<ScanUnit> = Vec::new();
    for slice in &slices {
        let Some(plan) = plans.iter().find(|p| p.tier == slice.tier) else {
            continue;
        };
        for ps in &plan.segs {
            stats.segments_considered += 1;
            // Whole-segment reject on the precomputed time range:
            // planning must not walk posting lists of segments that
            // cannot intersect the slice, or query cost would grow
            // with live history instead of `px_width`.
            if ps.last_us < slice.from_us || ps.first_us > slice.to_us {
                stats.segments_pruned += 1;
                continue;
            }
            let mut offsets: Vec<u64> = Vec::new();
            if let Some(term) = ps.idx.find(TermClass::Signal, name) {
                for p in &term.postings {
                    if p.first_us <= slice.to_us && p.last_us >= slice.from_us {
                        offsets.push(p.offset);
                    }
                }
            }
            offsets.sort_unstable();
            offsets.dedup();
            if offsets.is_empty() {
                stats.segments_pruned += 1;
                stats.blocks_pruned += ps.blocks;
                continue;
            }
            stats.blocks_pruned += ps.blocks - offsets.len() as u64;
            units.push(ScanUnit {
                path: ps.seg.path.clone(),
                offsets,
                from_us: slice.from_us,
                to_us: slice.to_us,
            });
        }
    }
    stats.segments_scanned = units.len() as u64;
    stats.plan_us = plan_t0.elapsed().as_micros() as u64;
    let scan_t0 = std::time::Instant::now();

    // Scan the survivors in parallel — scoped threads, one reader per
    // segment, bounded concurrency — and merge by time. Units are
    // already in (slice, sequence) = time order, so the merge is a
    // concatenation.
    type UnitScan = (Vec<(u64, f64)>, u64, u64);
    let mut per_unit: Vec<UnitScan> = Vec::with_capacity(units.len());
    // Spawning beats sequential only with real cores to run on — a
    // thread per lane on a one-core box is pure overhead, and a
    // cascade plan has a dozen one-block units.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if units.len() <= 1 || cores <= 1 {
        for u in &units {
            per_unit.push(scan_unit(u, target));
        }
    } else {
        let lanes = units.len().min(16).min(cores);
        let chunk = units.len().div_ceil(lanes);
        std::thread::scope(|s| {
            let mut handles = Vec::with_capacity(lanes);
            for c in units.chunks(chunk) {
                handles.push(
                    s.spawn(move || c.iter().map(|u| scan_unit(u, target)).collect::<Vec<_>>()),
                );
            }
            for h in handles {
                per_unit.extend(h.join().expect("lod scan thread panicked"));
            }
        });
    }

    // Fold frames into px columns over [t0, t1]. Column mapping is a
    // divide per frame, so stay in u64 whenever `(span-1) * px` fits
    // — software u128 division would double the whole scan's cost.
    let span64 = (to_us - from_us).wrapping_add(1); // 0 means 2^64
    let narrow = span64 != 0 && span64.checked_mul(px as u64).is_some();
    let col_of = |t: u64| -> usize {
        if narrow {
            (((t - from_us) * px as u64) / span64) as usize
        } else {
            let span = (to_us - from_us) as u128 + 1;
            (((t - from_us) as u128 * px as u128) / span) as usize
        }
    };
    let mut columns: Vec<Option<(f64, f64)>> = vec![None; px];
    for (frames, blocks, decoded) in &per_unit {
        stats.blocks_scanned += blocks;
        stats.frames_scanned += decoded;
        for &(t, v) in frames {
            let c = &mut columns[col_of(t).min(px - 1)];
            *c = Some(match *c {
                None => (v, v),
                Some((lo, hi)) => (lo.min(v), hi.max(v)),
            });
            stats.frames_used += 1;
        }
    }

    stats.scan_us = scan_t0.elapsed().as_micros() as u64;
    let reg = Registry::shared();
    reg.counter("store.lod.queries").inc();
    reg.counter("store.lod.query_blocks_pruned")
        .add(stats.blocks_pruned);
    reg.counter("store.lod.query_blocks_scanned")
        .add(stats.blocks_scanned);

    Ok(LodResult {
        tier,
        px_width: px,
        columns,
        slices,
        stats,
    })
}

/// Picks the tier a whole-store scan (search, catch-up) should read:
/// aggregated over every signal, the coarsest tier still yielding
/// `px_width` columns in the range; tiers present are returned too so
/// callers can report the choice.
///
/// # Errors
///
/// [`ScopeError::Io`] on directory or sidecar I/O failure.
pub fn pick_tier(dir: &Path, from_us: u64, to_us: u64, px_width: usize) -> Result<(u16, Vec<u16>)> {
    let mut stats = LodStats::default();
    let plans = load_tier_plans(dir, Target::All, from_us, to_us.max(from_us), &mut stats)
        .map_err(ScopeError::Io)?;
    let tiers: Vec<u16> = plans.iter().map(|p| p.tier).collect();
    let mut chosen: Option<u16> = None;
    let mut best: Option<(f64, u16)> = None;
    for p in &plans {
        let cols = est_columns(p.tier, p.est_frames);
        if cols >= px_width.max(1) as f64 {
            chosen = Some(chosen.map_or(p.tier, |c| c.max(p.tier)));
        }
        if cols > 0.0 && best.is_none_or(|(b, _)| cols > b) {
            best = Some((cols, p.tier));
        }
    }
    Ok((chosen.or(best.map(|(_, t)| t)).unwrap_or(0), tiers))
}

/// Plans a bounded-cost replay of `[from_us, to_us]`: the finest tier
/// whose estimated frame count fits `budget_frames`, with finer tiers
/// stitched over the tail the pyramid has not folded yet. The slices
/// are in time order; replay each through
/// [`StoreReader::open_tier`](crate::StoreReader::open_tier) with
/// `seek`/`set_end`.
///
/// # Errors
///
/// [`ScopeError::Io`] on directory or sidecar I/O failure.
pub fn replay_plan(
    dir: &Path,
    from_us: u64,
    to_us: u64,
    budget_frames: u64,
) -> Result<Vec<LodSlice>> {
    let to_us = to_us.max(from_us);
    let mut stats = LodStats::default();
    let plans =
        load_tier_plans(dir, Target::All, from_us, to_us, &mut stats).map_err(ScopeError::Io)?;
    // Finest affordable tier: tiers ascend, so the first fitting the
    // budget wins; nothing fits -> the coarsest present.
    let mut primary = plans.last().map_or(0, |p| p.tier);
    for p in &plans {
        if p.est_frames <= budget_frames as f64 {
            primary = p.tier;
            break;
        }
    }
    if primary == 0 {
        return Ok(vec![LodSlice {
            tier: 0,
            from_us,
            to_us,
        }]);
    }
    Ok(stitch_slices(&plans, primary, from_us, to_us))
}

/// Pulls pre-decimated envelope columns off disk for every signal of
/// `scope` over `[t0, t1]` and installs them as the signals' display
/// envelopes (the renderer draws envelope columns directly — no
/// re-decimation). Returns each signal's query result for reporting.
///
/// # Errors
///
/// Same as [`query`].
pub fn apply_envelopes(
    dir: &Path,
    scope: &mut Scope,
    t0: TimeStamp,
    t1: TimeStamp,
) -> Result<Vec<(String, LodResult)>> {
    let px = scope.width();
    let mut out = Vec::new();
    for name in scope.signal_names() {
        let r = query(dir, Some(&name), t0, t1, px)?;
        scope.set_envelope(&name, Envelope::from_bands(&r.columns))?;
        out.push((name, r));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{Store, StoreConfig};
    use crate::StoreReader;
    use gscope::TupleSource;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("gstore-lod-tests").join(name);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn small_cfg() -> StoreConfig {
        StoreConfig {
            block_bytes: 256,
            block_frames: 16,
            segment_bytes: 2048,
            ..StoreConfig::default()
        }
    }

    fn fill(dir: &Path, n: u64) {
        let mut store = Store::open(dir, small_cfg()).unwrap();
        for i in 0..n {
            let v = (i as f64 * 0.05).sin() * 50.0 + 50.0;
            store
                .append(TimeStamp::from_micros(i * 1_000), v, Some("wave"))
                .unwrap();
        }
        store.close().unwrap();
    }

    fn lod_cfg() -> CompactorConfig {
        CompactorConfig {
            group: 4,
            max_tier: 4,
            min_fold_frames: 16,
            block_frames: 16,
            ..CompactorConfig::default()
        }
    }

    #[test]
    fn compactor_builds_a_pyramid() {
        let dir = tmp_dir("pyramid");
        fill(&dir, 4_000);
        let mut c = Compactor::new(&dir, lod_cfg()).unwrap();
        let report = c.pass().unwrap();
        assert!(report.folds > 0, "{report:?}");
        assert!(report.frames_in >= 4_000, "{report:?}");
        assert!(report.top_tier >= 2, "{report:?}");
        // Each tier shrinks by about group/2.
        let tiers = tier_map(&dir, true).unwrap();
        let frames_of = |t: u16| -> u64 {
            tiers
                .get(&t)
                .map(|segs| {
                    segs.iter()
                        .map(|s| seg_frames(&s.path).unwrap_or(0))
                        .sum::<u64>()
                })
                .unwrap_or(0)
        };
        let (f0, f1) = (frames_of(0), frames_of(1));
        assert!(f1 > 0 && f1 < f0, "t0={f0} t1={f1}");
        // A second pass is a no-op: the watermark already covers
        // every sealed source.
        let again = c.pass().unwrap();
        assert_eq!(again.folds, 0, "{again:?}");
    }

    #[test]
    fn envelope_pairs_cover_source_extremes() {
        let dir = tmp_dir("envelope");
        fill(&dir, 2_000);
        let mut c = Compactor::new(&dir, lod_cfg()).unwrap();
        c.pass().unwrap();
        // Tier-1 min/max must bound the tier-0 values over the store.
        let mut r0 = StoreReader::open_tier(&dir, 0).unwrap();
        let (mut lo0, mut hi0) = (f64::INFINITY, f64::NEG_INFINITY);
        while let Some(t) = r0.next_tuple().unwrap() {
            lo0 = lo0.min(t.value);
            hi0 = hi0.max(t.value);
        }
        let mut r1 = StoreReader::open_tier(&dir, 1).unwrap();
        let (mut lo1, mut hi1) = (f64::INFINITY, f64::NEG_INFINITY);
        let mut frames = 0u64;
        let mut last_t = 0u64;
        while let Some(t) = r1.next_tuple().unwrap() {
            lo1 = lo1.min(t.value);
            hi1 = hi1.max(t.value);
            assert!(t.time.as_micros() >= last_t, "tier-1 out of order");
            last_t = t.time.as_micros();
            frames += 1;
        }
        assert!(
            frames > 0 && frames.is_multiple_of(2),
            "{frames} tier-1 frames"
        );
        assert_eq!(lo0.to_bits(), lo1.to_bits(), "global min survives");
        assert_eq!(hi0.to_bits(), hi1.to_bits(), "global max survives");
    }

    #[test]
    fn query_picks_coarse_tier_and_prunes() {
        let dir = tmp_dir("query");
        fill(&dir, 8_000);
        let mut c = Compactor::new(&dir, lod_cfg()).unwrap();
        c.pass().unwrap();
        let r = query(
            &dir,
            Some("wave"),
            TimeStamp::ZERO,
            TimeStamp::from_micros(8_000_000),
            64,
        )
        .unwrap();
        assert!(r.tier >= 1, "zoomed-out query must use the pyramid: {r:?}");
        assert!(r.columns.iter().filter(|c| c.is_some()).count() >= 32);
        // Negative space: far fewer frames decoded than stored.
        assert!(
            r.stats.frames_scanned < 8_000 / 2,
            "scanned {} of 8000; tier {} slices {:?} stats {:?}",
            r.stats.frames_scanned,
            r.tier,
            r.slices,
            r.stats
        );
        // Narrow zoom: falls back to fine data, prunes elsewhere.
        let z = query(
            &dir,
            Some("wave"),
            TimeStamp::from_micros(1_000_000),
            TimeStamp::from_micros(1_050_000),
            64,
        )
        .unwrap();
        assert_eq!(z.tier, 0, "50 frames over 64 px needs full detail");
        assert!(
            z.stats.segments_pruned + z.stats.blocks_pruned > 0,
            "{:?}",
            z.stats
        );
        let bands: Vec<_> = z.columns.iter().flatten().collect();
        assert!(!bands.is_empty());
    }

    #[test]
    fn query_stitches_unfolded_tail_from_tier0() {
        let dir = tmp_dir("stitch");
        fill(&dir, 4_000);
        let mut c = Compactor::new(&dir, lod_cfg()).unwrap();
        c.pass().unwrap();
        // Append more after compaction: the pyramid now lags.
        let mut store = Store::open(&dir, small_cfg()).unwrap();
        for i in 4_000..5_000u64 {
            store
                .append(TimeStamp::from_micros(i * 1_000), 123.0, Some("wave"))
                .unwrap();
        }
        store.close().unwrap();
        let r = query(
            &dir,
            Some("wave"),
            TimeStamp::ZERO,
            TimeStamp::from_micros(5_000_000),
            64,
        )
        .unwrap();
        assert!(r.slices.len() >= 2, "tail must stitch: {:?}", r.slices);
        assert_eq!(r.slices.last().unwrap().tier, 0);
        // The fresh tail (value 123) must be visible in the columns.
        let hi = r
            .columns
            .iter()
            .flatten()
            .map(|&(_, hi)| hi)
            .fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(hi, 123.0);
    }

    #[test]
    fn evict_folded_keeps_tier_under_budget() {
        let dir = tmp_dir("evict");
        fill(&dir, 8_000);
        let mut cfg = lod_cfg();
        cfg.evict_folded = Some(4096);
        let mut c = Compactor::new(&dir, cfg).unwrap();
        let report = c.pass().unwrap();
        assert!(report.segments_evicted > 0, "{report:?}");
        let tiers = tier_map(&dir, true).unwrap();
        let t0: u64 = tiers[&0].iter().map(|s| s.bytes).sum();
        // Budget plus the one unfolded (active-at-close) segment.
        assert!(t0 <= 4096 + 2048 + 64, "tier0 {t0}B over budget");
        // History stays queryable through the pyramid.
        let r = query(
            &dir,
            Some("wave"),
            TimeStamp::ZERO,
            TimeStamp::from_micros(8_000_000),
            64,
        )
        .unwrap();
        assert!(r.columns.iter().filter(|c| c.is_some()).count() >= 32);
    }

    #[test]
    fn background_compactor_start_stop() {
        let dir = tmp_dir("background");
        fill(&dir, 2_000);
        let mut cfg = lod_cfg();
        cfg.interval = Duration::from_millis(5);
        let handle = Compactor::new(&dir, cfg).unwrap().start();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while watermark(&dir, 1).is_none() && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        let c = handle.stop();
        assert!(watermark(c.dir(), 1).is_some(), "background fold ran");
    }

    #[test]
    fn replay_plan_fits_budget() {
        let dir = tmp_dir("replan");
        fill(&dir, 8_000);
        let mut c = Compactor::new(&dir, lod_cfg()).unwrap();
        c.pass().unwrap();
        // Tiny budget: must pick a coarse tier for the bulk.
        let slices = replay_plan(&dir, 0, 8_000_000, 500).unwrap();
        assert!(slices[0].tier >= 1, "{slices:?}");
        // Huge budget: plain tier-0 replay.
        let slices = replay_plan(&dir, 0, 8_000_000, 1_000_000).unwrap();
        assert_eq!(
            slices,
            vec![LodSlice {
                tier: 0,
                from_us: 0,
                to_us: 8_000_000
            }]
        );
    }
}
