//! One segment file: append-only blocks of delta-encoded frames.
//!
//! # On-disk layout
//!
//! ```text
//! segment  := seg_header block*
//! seg_header (16 B) := magic "GSG1" | version u16 | tier u16 | created_us u64
//! block    := blk_header payload
//! blk_header (24 B) := payload_len u32 | crc32 u32 | first_us u64
//!                    | frame_count u32 | reserved u32
//! payload  := record*
//! record   := 0x01 dt_varint name_id_varint value_f64le      (sample)
//!           | 0x02 id_varint len_varint utf8_bytes           (name def)
//! ```
//!
//! All integers are little-endian; varints are unsigned LEB128. The
//! CRC32 covers bytes 8..24 of the block header plus the payload, so a
//! flipped length, timestamp, count, or payload byte is detected.
//!
//! Key invariants (normative, tested):
//!
//! * **Self-contained blocks** — name ids are *block-scoped*: every
//!   block re-defines the names it uses (ids assigned 1, 2, … in order
//!   of first use; id 0 means "unnamed"). A block can therefore be
//!   decoded in isolation, which is what makes the sparse index's
//!   O(log n) seek possible — seeking never decodes earlier blocks.
//! * **Delta times** — a sample's time is `first_us` plus the running
//!   sum of `dt` varints; `dt` of the first sample is 0. Times are
//!   non-decreasing within a block, across blocks, and across segments
//!   (§3.3).
//! * **Torn tails are bounded** — a crash mid-write leaves at most one
//!   partial block. Recovery decodes the complete-record prefix of the
//!   torn payload (salvage), so data loss is bounded to the one frame
//!   that was being written.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use gscope::{intern, Tuple};

use crate::codec::{crc32, get_uvarint, put_uvarint, put_uvarint_into};
use crate::index::{build_index, index_path, write_index, IndexBuilder, TermStat};

/// Segment file magic.
pub const SEG_MAGIC: [u8; 4] = *b"GSG1";
/// Format version written by this crate.
pub const SEG_VERSION: u16 = 1;
/// Segment header length in bytes.
pub const SEG_HEADER_LEN: u64 = 16;
/// Block header length in bytes.
pub const BLOCK_HEADER_LEN: u64 = 24;
/// Upper bound on a plausible payload length; anything larger is
/// treated as corruption during scans.
pub const MAX_PAYLOAD_LEN: u32 = 16 * 1024 * 1024;

/// Sample record tag.
const TAG_SAMPLE: u8 = 1;
/// Name-definition record tag.
const TAG_NAMEDEF: u8 = 2;

/// Builds a segment file name: `seg-{seq:08}-t{tier}.gseg`.
pub fn segment_file_name(seq: u64, tier: u16) -> String {
    format!("seg-{seq:08}-t{tier}.gseg")
}

/// Parses a segment file name back into `(seq, tier)`.
pub fn parse_segment_file_name(name: &str) -> Option<(u64, u16)> {
    let rest = name.strip_prefix("seg-")?.strip_suffix(".gseg")?;
    let (seq, tier) = rest.split_once("-t")?;
    Some((seq.parse().ok()?, tier.parse().ok()?))
}

/// Index entry for one block, read from its header alone.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockMeta {
    /// Byte offset of the block header within the segment file.
    pub offset: u64,
    /// Payload length in bytes.
    pub payload_len: u32,
    /// Absolute time (µs) of the block's first sample.
    pub first_us: u64,
    /// Number of sample records in the block.
    pub frames: u32,
}

/// Result of a header-only scan: the sparse in-segment time index.
#[derive(Debug, Default)]
pub struct HeaderScan {
    /// One entry per structurally-complete block, in file order.
    pub blocks: Vec<BlockMeta>,
    /// File offset one past the last complete block.
    pub scanned_to: u64,
    /// True when the scan consumed the file exactly (no torn tail).
    pub clean: bool,
}

/// One frame recovered from a torn tail block.
#[derive(Clone, Debug, PartialEq)]
pub struct SalvagedFrame {
    /// Absolute sample time in microseconds.
    pub time_us: u64,
    /// Sample value.
    pub value: f64,
    /// Signal name (`None` for unnamed streams).
    pub name: Option<Arc<str>>,
}

/// Outcome of opening a segment for append (recovery).
#[derive(Debug, Default)]
pub struct Recovery {
    /// File length covered by the header plus valid blocks; the file
    /// is truncated to this before appending resumes.
    pub valid_len: u64,
    /// Time of the last valid frame, if any.
    pub last_us: Option<u64>,
    /// Valid frames in the segment (excluding salvage).
    pub frames: u64,
    /// Frames decoded out of a torn tail block, to re-append.
    pub salvaged: Vec<SalvagedFrame>,
    /// Complete blocks dropped because their CRC did not match (a bit
    /// flip, not a torn write); everything after them is dropped too.
    pub dropped_blocks: u32,
    /// True when the file had to be cut back at all.
    pub truncated: bool,
    /// True when the `.gidx` sidecar disagreed with the recovered
    /// prefix and was rebuilt (or removed) to match.
    pub index_rebuilt: bool,
}

fn u32le(b: &[u8]) -> u32 {
    u32::from_le_bytes(b[..4].try_into().expect("4 bytes"))
}

fn u64le(b: &[u8]) -> u64 {
    u64::from_le_bytes(b[..8].try_into().expect("8 bytes"))
}

/// Writes the 16-byte segment header for a new file.
fn write_seg_header(file: &mut File, tier: u16, created_us: u64) -> std::io::Result<()> {
    let mut h = [0u8; SEG_HEADER_LEN as usize];
    h[..4].copy_from_slice(&SEG_MAGIC);
    h[4..6].copy_from_slice(&SEG_VERSION.to_le_bytes());
    h[6..8].copy_from_slice(&tier.to_le_bytes());
    h[8..16].copy_from_slice(&created_us.to_le_bytes());
    file.write_all(&h)
}

/// Reads and validates a segment header; returns `(tier, created_us)`.
///
/// # Errors
///
/// `InvalidData` on bad magic or version, I/O errors otherwise.
pub fn read_seg_header(file: &mut File) -> std::io::Result<(u16, u64)> {
    let mut h = [0u8; SEG_HEADER_LEN as usize];
    file.seek(SeekFrom::Start(0))?;
    file.read_exact(&mut h)?;
    if h[..4] != SEG_MAGIC {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "not a gstore segment (bad magic)",
        ));
    }
    let version = u16::from_le_bytes([h[4], h[5]]);
    if version != SEG_VERSION {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("unsupported segment version {version}"),
        ));
    }
    let tier = u16::from_le_bytes([h[6], h[7]]);
    Ok((tier, u64le(&h[8..16])))
}

/// Scans block headers without reading payloads — builds the sparse
/// time index in O(blocks) small reads. CRCs are *not* verified here;
/// they are checked when a block is actually decoded.
///
/// # Errors
///
/// Propagates I/O errors (a short or implausible header is not an
/// error — the scan just stops there).
pub fn scan_headers(file: &mut File) -> std::io::Result<HeaderScan> {
    let file_len = file.seek(SeekFrom::End(0))?;
    let mut scan = HeaderScan {
        scanned_to: SEG_HEADER_LEN.min(file_len),
        ..HeaderScan::default()
    };
    let mut off = SEG_HEADER_LEN;
    let mut header = [0u8; BLOCK_HEADER_LEN as usize];
    while off + BLOCK_HEADER_LEN <= file_len {
        file.seek(SeekFrom::Start(off))?;
        file.read_exact(&mut header)?;
        let payload_len = u32le(&header[0..4]);
        if payload_len == 0 || payload_len > MAX_PAYLOAD_LEN {
            return Ok(scan); // implausible: corrupt header, stop here
        }
        let end = off + BLOCK_HEADER_LEN + u64::from(payload_len);
        if end > file_len {
            return Ok(scan); // torn tail block
        }
        scan.blocks.push(BlockMeta {
            offset: off,
            payload_len,
            first_us: u64le(&header[8..16]),
            frames: u32le(&header[16..20]),
        });
        off = end;
        scan.scanned_to = off;
    }
    scan.clean = scan.scanned_to == file_len.max(SEG_HEADER_LEN);
    Ok(scan)
}

/// Reads one block's payload and verifies its CRC.
///
/// Returns `None` when the CRC does not match (corrupt block).
///
/// # Errors
///
/// Propagates I/O errors.
pub fn read_block_payload(file: &mut File, meta: &BlockMeta) -> std::io::Result<Option<Vec<u8>>> {
    let mut header = [0u8; BLOCK_HEADER_LEN as usize];
    file.seek(SeekFrom::Start(meta.offset))?;
    file.read_exact(&mut header)?;
    let mut payload = vec![0u8; meta.payload_len as usize];
    file.read_exact(&mut payload)?;
    let expect = u32le(&header[4..8]);
    let got = crc32(crc32(0, &header[8..BLOCK_HEADER_LEN as usize]), &payload);
    Ok((got == expect).then_some(payload))
}

/// Decodes the sample records of a payload into tuples.
///
/// Returns `(frames, complete)`: `complete` is false when the payload
/// ends mid-record or contains an invalid record — every record before
/// that point is still returned (the salvage path). `base_us` seeds the
/// delta-time accumulator (the block header's `first_us`).
pub fn decode_records(payload: &[u8], base_us: u64) -> (Vec<SalvagedFrame>, bool) {
    let mut out = Vec::new();
    let mut names: Vec<Arc<str>> = Vec::new();
    let mut time = base_us;
    let mut pos = 0usize;
    let mut first = true;
    while pos < payload.len() {
        let record_start = pos;
        let tag = payload[pos];
        pos += 1;
        match tag {
            TAG_SAMPLE => {
                let Some(dt) = get_uvarint(payload, &mut pos) else {
                    return (out, false);
                };
                let Some(id) = get_uvarint(payload, &mut pos) else {
                    return (out, false);
                };
                if pos + 8 > payload.len() {
                    return (out, false);
                }
                let value = f64::from_le_bits_at(payload, pos);
                pos += 8;
                if first {
                    if dt != 0 {
                        return (out, false); // first frame must sit at first_us
                    }
                    first = false;
                } else {
                    let Some(t) = time.checked_add(dt) else {
                        return (out, false);
                    };
                    time = t;
                }
                let name = match id {
                    0 => None,
                    id => match names.get(id as usize - 1) {
                        Some(n) => Some(Arc::clone(n)),
                        None => return (out, false), // undefined name id
                    },
                };
                out.push(SalvagedFrame {
                    time_us: time,
                    value,
                    name,
                });
            }
            TAG_NAMEDEF => {
                let Some(id) = get_uvarint(payload, &mut pos) else {
                    return (out, false);
                };
                // Ids are assigned densely in order of first use.
                if id as usize != names.len() + 1 {
                    return (out, false);
                }
                let Some(len) = get_uvarint(payload, &mut pos) else {
                    return (out, false);
                };
                let end = pos + len as usize;
                if len == 0 || end > payload.len() {
                    return (out, false);
                }
                let Ok(s) = std::str::from_utf8(&payload[pos..end]) else {
                    return (out, false);
                };
                names.push(intern(s));
                pos = end;
            }
            _ => {
                let _ = record_start;
                return (out, false); // unknown tag
            }
        }
    }
    (out, true)
}

/// Streaming variant of [`decode_records`] for hot scan paths: emits
/// `(time_us, value)` of samples matching `signal` within
/// `[from_us, to_us]` straight into `push`, with no per-frame
/// allocation or name refcounting — names are compared once per
/// definition record, samples filter on the integer id.
///
/// `signal` of `None` accepts every stream; `Some("")` is the unnamed
/// stream. Returns `(records_decoded, complete)` with the same
/// salvage semantics as [`decode_records`]: on a torn or invalid
/// record everything before it has already been emitted.
pub fn decode_filtered(
    payload: &[u8],
    base_us: u64,
    signal: Option<&str>,
    from_us: u64,
    to_us: u64,
    push: &mut dyn FnMut(u64, f64),
) -> (u64, bool) {
    // id 0 is the unnamed stream; defined ids start at 1.
    let mut id_hits: Vec<bool> = vec![signal.is_none_or(|s| s.is_empty())];
    let mut decoded = 0u64;
    let mut time = base_us;
    let mut pos = 0usize;
    let mut first = true;
    while pos < payload.len() {
        let tag = payload[pos];
        pos += 1;
        match tag {
            TAG_SAMPLE => {
                let Some(dt) = get_uvarint(payload, &mut pos) else {
                    return (decoded, false);
                };
                let Some(id) = get_uvarint(payload, &mut pos) else {
                    return (decoded, false);
                };
                if pos + 8 > payload.len() {
                    return (decoded, false);
                }
                let value = f64::from_le_bits_at(payload, pos);
                pos += 8;
                if first {
                    if dt != 0 {
                        return (decoded, false); // first frame must sit at first_us
                    }
                    first = false;
                } else {
                    let Some(t) = time.checked_add(dt) else {
                        return (decoded, false);
                    };
                    time = t;
                }
                let Some(&hit) = id_hits.get(id as usize) else {
                    return (decoded, false); // undefined name id
                };
                decoded += 1;
                if hit && time >= from_us && time <= to_us {
                    push(time, value);
                }
            }
            TAG_NAMEDEF => {
                let Some(id) = get_uvarint(payload, &mut pos) else {
                    return (decoded, false);
                };
                // Ids are assigned densely in order of first use.
                if id as usize != id_hits.len() {
                    return (decoded, false);
                }
                let Some(len) = get_uvarint(payload, &mut pos) else {
                    return (decoded, false);
                };
                let end = pos + len as usize;
                if len == 0 || end > payload.len() {
                    return (decoded, false);
                }
                let Ok(s) = std::str::from_utf8(&payload[pos..end]) else {
                    return (decoded, false);
                };
                id_hits.push(signal.is_none_or(|want| want == s));
                pos = end;
            }
            _ => return (decoded, false), // unknown tag
        }
    }
    (decoded, true)
}

/// `f64::from_le_bytes` over a slice at an offset, named for clarity
/// at the call site.
trait F64At {
    fn from_le_bits_at(buf: &[u8], pos: usize) -> f64;
}

impl F64At for f64 {
    #[inline]
    fn from_le_bits_at(buf: &[u8], pos: usize) -> f64 {
        f64::from_le_bytes(buf[pos..pos + 8].try_into().expect("8 bytes"))
    }
}

/// Converts a salvaged frame into an owning [`Tuple`].
pub fn frame_to_tuple(f: &SalvagedFrame) -> Tuple {
    Tuple {
        time: gel::TimeStamp::from_micros(f.time_us),
        value: f.value,
        name: f.name.clone(),
    }
}

/// Fully verifies a segment for append: walks every block, checks
/// CRCs, and decodes the last valid block (for the resume timestamp)
/// plus the torn tail (for salvage). Never refuses: any tail it cannot
/// trust is marked for truncation.
///
/// # Errors
///
/// Propagates I/O errors only.
pub fn recover_segment(path: &Path) -> std::io::Result<Recovery> {
    let mut file = File::open(path)?;
    let file_len = file.seek(SeekFrom::End(0))?;
    let mut rec = Recovery {
        valid_len: SEG_HEADER_LEN.min(file_len),
        ..Recovery::default()
    };
    if read_seg_header(&mut file).is_err() {
        // Even the 16-byte header is torn: rewind to nothing. A
        // sidecar describing the dead file must not outlive it.
        rec.valid_len = 0;
        rec.truncated = true;
        if index_path(path).exists() {
            let _ = std::fs::remove_file(index_path(path));
            rec.index_rebuilt = true;
        }
        return Ok(rec);
    }
    let scan = scan_headers(&mut file)?;
    // Verify CRCs front to back; stop at the first corrupt block (we
    // cannot trust anything that follows a flipped length field, and
    // the appender needs a clean prefix).
    let mut last_good_payload: Option<(Vec<u8>, u64)> = None;
    for meta in &scan.blocks {
        match read_block_payload(&mut file, meta)? {
            Some(payload) => {
                rec.frames += u64::from(meta.frames);
                rec.valid_len = meta.offset + BLOCK_HEADER_LEN + u64::from(meta.payload_len);
                last_good_payload = Some((payload, meta.first_us));
            }
            None => {
                rec.dropped_blocks += 1;
                rec.truncated = true;
                break;
            }
        }
    }
    if let Some((payload, first_us)) = last_good_payload {
        let (frames, complete) = decode_records(&payload, first_us);
        debug_assert!(complete, "CRC-valid block must decode");
        rec.last_us = frames.last().map(|f| f.time_us);
    }
    // Torn tail after the last valid block (only when no corrupt block
    // forced an earlier stop): salvage its complete-record prefix.
    if rec.dropped_blocks == 0 && rec.valid_len < file_len {
        rec.truncated = true;
        let torn_off = rec.valid_len;
        if torn_off + BLOCK_HEADER_LEN <= file_len {
            let mut header = [0u8; BLOCK_HEADER_LEN as usize];
            file.seek(SeekFrom::Start(torn_off))?;
            file.read_exact(&mut header)?;
            let claimed = u32le(&header[0..4]);
            let avail = (file_len - torn_off - BLOCK_HEADER_LEN) as usize;
            if claimed > 0 && claimed <= MAX_PAYLOAD_LEN && avail > 0 {
                let mut partial = vec![0u8; avail.min(claimed as usize)];
                file.read_exact(&mut partial)?;
                let (mut frames, _) = decode_records(&partial, u64le(&header[8..16]));
                // Keep salvage monotone with the valid prefix.
                if let Some(last) = rec.last_us {
                    frames.retain(|f| f.time_us >= last);
                }
                rec.salvaged = frames;
            }
        }
    }
    // Reconcile the sidecar with the recovered prefix: postings for
    // truncated bytes would send a query planner into data that no
    // longer exists, and wrong `seg_len` binding means every later
    // load would rebuild anyway. Rebuild it here, once, from the
    // trusted prefix.
    let ipath = index_path(path);
    let consistent = ipath.exists()
        && crate::index::read_index(&ipath)
            .map(|i| i.seg_len == rec.valid_len)
            .unwrap_or(false);
    if !consistent {
        let idx = build_index(path, Some(rec.valid_len))?;
        write_index(&ipath, &idx)?;
        rec.index_rebuilt = true;
    }
    Ok(rec)
}

/// Reads the 24-byte block header at `offset` and returns its
/// [`BlockMeta`], or `None` when the offset does not hold a complete,
/// plausible block — the resolver half of an index posting lookup.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn read_block_header_at(file: &mut File, offset: u64) -> std::io::Result<Option<BlockMeta>> {
    let file_len = file.seek(SeekFrom::End(0))?;
    if offset < SEG_HEADER_LEN || offset + BLOCK_HEADER_LEN > file_len {
        return Ok(None);
    }
    let mut header = [0u8; BLOCK_HEADER_LEN as usize];
    file.seek(SeekFrom::Start(offset))?;
    file.read_exact(&mut header)?;
    let payload_len = u32le(&header[0..4]);
    if payload_len == 0
        || payload_len > MAX_PAYLOAD_LEN
        || offset + BLOCK_HEADER_LEN + u64::from(payload_len) > file_len
    {
        return Ok(None);
    }
    Ok(Some(BlockMeta {
        offset,
        payload_len,
        first_us: u64le(&header[8..16]),
        frames: u32le(&header[16..20]),
    }))
}

/// Append-side segment writer: builds one block in memory and writes
/// it out (header + payload) when the store decides the block is full.
#[derive(Debug)]
pub struct SegmentWriter {
    file: File,
    path: PathBuf,
    /// Total file length so far (headers + flushed blocks).
    bytes: u64,
    /// The block under construction: a [`BLOCK_HEADER_LEN`] placeholder
    /// (filled in at flush time) followed by the payload, so a block
    /// ships to the kernel in a single `write`.
    block: Vec<u8>,
    block_first_us: u64,
    block_last_us: u64,
    block_frames: u32,
    /// Block-scoped name table: index = id - 1. Small (distinct names
    /// per block), so a linear scan beats hashing.
    names: Vec<Box<str>>,
    /// Packed `(len, first byte, last byte)` per table entry: the scan
    /// compares these u32s and falls back to a full string compare only
    /// on a key hit, keeping `bcmp` calls off the per-frame path.
    name_keys: Vec<u32>,
    /// Index of the last name-table hit. Probing it and its successor
    /// first makes both constant-name runs and round-robin signal
    /// interleavings resolve in one probe.
    last_name: usize,
    fsync: bool,
    /// Downsampling tier, echoed into the index sidecar at seal.
    tier: u16,
    /// Per-block term stats, indexed by name id (slot 0 = unnamed).
    /// Folded into `index` at flush, cleared with the name table.
    term_stats: Vec<TermStat>,
    /// Segment-wide index accumulator (term derivation happens here,
    /// once per distinct name per block — never per frame).
    index: IndexBuilder,
    /// A resumed writer's accumulator misses the blocks written before
    /// the resume; seal rebuilds the index from the file instead.
    resumed: bool,
    /// Maintain index stats and write the `.gidx` sidecar at seal
    /// (`StoreConfig::index_sidecars`). When off, queries rebuild the
    /// sidecar on demand instead.
    index_enabled: bool,
}

/// Packs a name's length and first/last bytes into one u32 for the
/// name-table fast path (empty names pack to 0, still collision-safe:
/// only another empty name shares it).
#[inline]
fn name_key(n: &str) -> u32 {
    let b = n.as_bytes();
    match b {
        [] => 0,
        [only] => (1u32 << 16) | u32::from(*only) << 8 | u32::from(*only),
        [first, .., last] => {
            ((b.len() as u32 & 0xFFFF) << 16) | u32::from(*first) << 8 | u32::from(*last)
        }
    }
}

/// A fresh block buffer: header placeholder bytes (zeroed — the
/// reserved word is never written again) plus payload headroom.
fn new_block_buf() -> Vec<u8> {
    let mut b = Vec::with_capacity(BLOCK_HEADER_LEN as usize + 4096 + 64);
    b.resize(BLOCK_HEADER_LEN as usize, 0);
    b
}

impl SegmentWriter {
    /// Creates a fresh segment file with its header.
    ///
    /// # Errors
    ///
    /// Propagates file-creation and write errors.
    pub fn create(path: PathBuf, tier: u16, created_us: u64, fsync: bool) -> std::io::Result<Self> {
        let mut file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&path)?;
        write_seg_header(&mut file, tier, created_us)?;
        Ok(SegmentWriter {
            file,
            path,
            bytes: SEG_HEADER_LEN,
            block: new_block_buf(),
            block_first_us: 0,
            block_last_us: 0,
            block_frames: 0,
            names: Vec::new(),
            name_keys: Vec::new(),
            last_name: 0,
            fsync,
            tier,
            term_stats: vec![TermStat::default()],
            index: IndexBuilder::default(),
            resumed: false,
            index_enabled: true,
        })
    }

    /// Re-opens an existing segment for append, truncating to
    /// `recovery.valid_len` first (the torn tail, if any, has already
    /// been decoded into `recovery.salvaged` by [`recover_segment`]).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn resume(path: PathBuf, valid_len: u64, fsync: bool) -> std::io::Result<Self> {
        let tier = read_seg_header(&mut File::open(&path)?)?.0;
        let file = OpenOptions::new().write(true).open(&path)?;
        file.set_len(valid_len)?;
        let mut w = SegmentWriter {
            file,
            path,
            bytes: valid_len,
            block: new_block_buf(),
            block_first_us: 0,
            block_last_us: 0,
            block_frames: 0,
            names: Vec::new(),
            name_keys: Vec::new(),
            last_name: 0,
            fsync,
            tier,
            term_stats: vec![TermStat::default()],
            index: IndexBuilder::default(),
            resumed: true,
            index_enabled: true,
        };
        w.file.seek(SeekFrom::Start(valid_len))?;
        Ok(w)
    }

    /// Turns `.gidx` maintenance on or off for this writer
    /// ([`crate::StoreConfig::index_sidecars`]).
    pub fn set_index_enabled(&mut self, on: bool) {
        self.index_enabled = on;
    }

    /// The segment file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Flushed bytes plus the block under construction (used for the
    /// roll decision and byte accounting).
    pub fn pending_bytes(&self) -> u64 {
        self.bytes
            + if self.block_frames > 0 {
                self.block.len() as u64
            } else {
                0
            }
    }

    /// Frames in the block under construction.
    pub fn block_frames(&self) -> u32 {
        self.block_frames
    }

    /// Payload bytes in the block under construction.
    pub fn block_payload_len(&self) -> usize {
        self.block.len() - BLOCK_HEADER_LEN as usize
    }

    /// Appends one frame to the block under construction. Times must be
    /// non-decreasing (the store enforces this before calling).
    ///
    /// Takes the name as a plain `&str` so the ingest hot path never
    /// has to intern or allocate: the block-scoped table is a linear
    /// string-equality scan (distinct names per block are few), and a
    /// name is copied exactly once per block, in its `NAMEDEF` record.
    #[inline]
    pub fn append(&mut self, time_us: u64, value: f64, name: Option<&str>) {
        let id = match name {
            None => 0u64,
            Some(n) => self.name_id(n),
        };
        let dt = if self.block_frames == 0 {
            self.block_first_us = time_us;
            self.block_last_us = time_us;
            0
        } else {
            let dt = time_us - self.block_last_us;
            self.block_last_us = time_us;
            dt
        };
        // Assemble the whole sample record in a stack buffer so the
        // block Vec pays a single capacity/bounds check per frame. The
        // copy is the full fixed-size buffer (compiles to a couple of
        // wide movs, no memcpy call); truncate then trims to the real
        // record length.
        let mut rec = [0u8; 1 + 10 + 10 + 8];
        rec[0] = TAG_SAMPLE;
        let mut pos = 1;
        pos += put_uvarint_into(&mut rec[pos..], dt);
        pos += put_uvarint_into(&mut rec[pos..], id);
        rec[pos..pos + 8].copy_from_slice(&value.to_le_bytes());
        let start = self.block.len();
        self.block.extend_from_slice(&rec);
        self.block.truncate(start + pos + 8);
        self.block_frames += 1;
        // Per-block index stats: one slot per name id, a few compares
        // and stores — term *derivation* waits for the block flush.
        if self.index_enabled {
            self.term_stats[id as usize].note(time_us, value);
        }
    }

    /// Looks `n` up in (or adds it to) the block-scoped name table,
    /// emitting a `NAMEDEF` record on first use in this block. Equal
    /// strings always produce equal keys, so a key mismatch rules an
    /// entry out without touching the string bytes.
    fn name_id(&mut self, n: &str) -> u64 {
        let key = name_key(n);
        let len = self.name_keys.len();
        if len > 0 {
            // Fast path: the last hit (constant-name runs) or its
            // successor (round-robin interleavings).
            let a = self.last_name;
            let b = (a + 1) % len;
            for i in [a, b] {
                if self.name_keys[i] == key && &*self.names[i] == n {
                    self.last_name = i;
                    return i as u64 + 1;
                }
            }
            for (i, &k) in self.name_keys.iter().enumerate() {
                if k == key && &*self.names[i] == n {
                    self.last_name = i;
                    return i as u64 + 1;
                }
            }
        }
        self.names.push(n.into());
        self.name_keys.push(key);
        self.term_stats.push(TermStat::default());
        let id = self.names.len() as u64;
        self.last_name = self.names.len() - 1;
        self.block.push(TAG_NAMEDEF);
        put_uvarint(&mut self.block, id);
        put_uvarint(&mut self.block, n.len() as u64);
        self.block.extend_from_slice(n.as_bytes());
        id
    }

    /// Writes the block under construction to the file (no-op when
    /// empty). Returns the bytes written.
    ///
    /// # Errors
    ///
    /// Propagates write/fsync errors.
    pub fn flush_block(&mut self) -> std::io::Result<u64> {
        if self.block_frames == 0 {
            return Ok(0);
        }
        let header_len = BLOCK_HEADER_LEN as usize;
        let payload_len = (self.block.len() - header_len) as u32;
        self.block[0..4].copy_from_slice(&payload_len.to_le_bytes());
        self.block[8..16].copy_from_slice(&self.block_first_us.to_le_bytes());
        self.block[16..20].copy_from_slice(&self.block_frames.to_le_bytes());
        // CRC covers header bytes 8..24 and the payload — contiguous
        // here, so one pass; the reserved word stays zero.
        let crc = crc32(0, &self.block[8..]);
        self.block[4..8].copy_from_slice(&crc.to_le_bytes());
        self.file.write_all(&self.block)?;
        if self.fsync {
            self.file.sync_data()?;
        }
        // Fold the block's per-name stats into the segment index; the
        // block lands at the pre-write offset.
        if self.index_enabled {
            let offset = self.bytes;
            for (i, s) in self.term_stats.iter().enumerate() {
                let name = if i == 0 {
                    None
                } else {
                    Some(&*self.names[i - 1])
                };
                self.index.add_block(offset, name, s);
            }
        }
        self.term_stats.clear();
        self.term_stats.push(TermStat::default());
        let written = self.block.len() as u64;
        self.bytes += written;
        self.block.truncate(header_len);
        self.block_frames = 0;
        self.names.clear();
        self.name_keys.clear();
        Ok(written)
    }

    /// Flushes the open block, finishing the segment. Returns its
    /// final length. Syncs to disk only in `fsync` mode: crash
    /// *consistency* comes from per-block CRCs plus recovery, and
    /// durability against power loss is the same opt-in as for block
    /// writes — an unconditional sync here would stall every segment
    /// roll on an ext4 barrier while adding nothing to the recovery
    /// story.
    ///
    /// # Errors
    ///
    /// Propagates write/fsync errors.
    pub fn seal(mut self) -> std::io::Result<u64> {
        self.flush_block()?;
        if self.fsync {
            self.file.sync_data()?;
        }
        // Write the index sidecar. A resumed writer's accumulator only
        // covers post-resume blocks, so it rebuilds from the file; the
        // common (fresh) path costs no extra segment I/O at all.
        if self.index_enabled {
            let idx = if self.resumed {
                build_index(&self.path, None)?
            } else {
                std::mem::take(&mut self.index).finish(self.tier, self.bytes)
            };
            write_index(&index_path(&self.path), &idx)?;
        }
        Ok(self.bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("gstore-segment-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn write_sample_segment(
        path: &Path,
        blocks: usize,
        frames_per_block: usize,
    ) -> Vec<SalvagedFrame> {
        let mut w = SegmentWriter::create(path.to_path_buf(), 0, 0, false).unwrap();
        let mut expect = Vec::new();
        let mut t = 0u64;
        for b in 0..blocks {
            for i in 0..frames_per_block {
                let name = intern(if i % 2 == 0 { "even" } else { "odd" });
                let v = (b * frames_per_block + i) as f64 * 0.5;
                w.append(t, v, Some(&name[..]));
                expect.push(SalvagedFrame {
                    time_us: t,
                    value: v,
                    name: Some(name),
                });
                t += 1_000;
            }
            w.flush_block().unwrap();
        }
        w.seal().unwrap();
        expect
    }

    fn read_all_frames(path: &PathBuf) -> Vec<SalvagedFrame> {
        let mut f = File::open(path).unwrap();
        read_seg_header(&mut f).unwrap();
        let scan = scan_headers(&mut f).unwrap();
        let mut out = Vec::new();
        for meta in &scan.blocks {
            let payload = read_block_payload(&mut f, meta).unwrap().expect("crc ok");
            let (frames, complete) = decode_records(&payload, meta.first_us);
            assert!(complete);
            out.extend(frames);
        }
        out
    }

    #[test]
    fn file_names_round_trip() {
        assert_eq!(segment_file_name(7, 0), "seg-00000007-t0.gseg");
        assert_eq!(
            parse_segment_file_name("seg-00000007-t0.gseg"),
            Some((7, 0))
        );
        assert_eq!(
            parse_segment_file_name("seg-12345678-t2.gseg"),
            Some((12_345_678, 2))
        );
        assert_eq!(parse_segment_file_name("other.gseg"), None);
        assert_eq!(parse_segment_file_name("seg-1-t0.txt"), None);
    }

    #[test]
    fn segment_round_trips_frames() {
        let path = tmp("roundtrip.gseg");
        let expect = write_sample_segment(&path, 3, 40);
        assert_eq!(read_all_frames(&path), expect);
    }

    /// The streaming filtered decoder must agree with the reference
    /// decoder for every filter shape — whole payloads, one signal,
    /// time windows — and count the same records on torn input.
    #[test]
    fn filtered_decode_matches_reference() {
        let path = tmp("filtered.gseg");
        write_sample_segment(&path, 2, 32);
        let mut f = File::open(&path).unwrap();
        read_seg_header(&mut f).unwrap();
        let scan = scan_headers(&mut f).unwrap();
        for meta in &scan.blocks {
            let payload = read_block_payload(&mut f, meta).unwrap().expect("crc ok");
            let (reference, complete) = decode_records(&payload, meta.first_us);
            assert!(complete);
            for (signal, from_us, to_us) in [
                (None, 0, u64::MAX),
                (Some("even"), 0, u64::MAX),
                (Some("odd"), meta.first_us + 4_000, meta.first_us + 20_000),
                (Some("missing"), 0, u64::MAX),
                (Some(""), 0, u64::MAX),
            ] {
                let want: Vec<(u64, f64)> = reference
                    .iter()
                    .filter(|r| {
                        signal.is_none_or(|s| r.name.as_deref().unwrap_or("") == s)
                            && r.time_us >= from_us
                            && r.time_us <= to_us
                    })
                    .map(|r| (r.time_us, r.value))
                    .collect();
                let mut got = Vec::new();
                let (decoded, complete) = decode_filtered(
                    &payload,
                    meta.first_us,
                    signal,
                    from_us,
                    to_us,
                    &mut |t, v| got.push((t, v)),
                );
                assert!(complete);
                assert_eq!(decoded, reference.len() as u64);
                assert_eq!(got, want, "signal {signal:?} in [{from_us}, {to_us}]");
            }
        }
        // Torn payload: both decoders salvage the same prefix.
        let payload = read_block_payload(&mut f, &scan.blocks[0])
            .unwrap()
            .unwrap();
        let torn = &payload[..payload.len() - 3];
        let (reference, complete) = decode_records(torn, scan.blocks[0].first_us);
        assert!(!complete);
        let mut got = Vec::new();
        let (decoded, complete) = decode_filtered(
            torn,
            scan.blocks[0].first_us,
            None,
            0,
            u64::MAX,
            &mut |t, v| got.push((t, v)),
        );
        assert!(!complete);
        assert_eq!(decoded, reference.len() as u64);
        assert_eq!(got.len(), reference.len());
    }

    #[test]
    fn header_scan_is_sparse_and_complete() {
        let path = tmp("scan.gseg");
        write_sample_segment(&path, 5, 16);
        let mut f = File::open(&path).unwrap();
        let scan = scan_headers(&mut f).unwrap();
        assert_eq!(scan.blocks.len(), 5);
        assert!(scan.clean);
        assert_eq!(scan.blocks[0].frames, 16);
        // first_us advances by 16 ms per block.
        assert_eq!(scan.blocks[1].first_us - scan.blocks[0].first_us, 16_000);
    }

    #[test]
    fn truncated_tail_salvages_complete_frames() {
        let path = tmp("torn.gseg");
        let expect = write_sample_segment(&path, 2, 32);
        let full_len = std::fs::metadata(&path).unwrap().len();
        // Cut 5 bytes off the final block: its last frame is torn, all
        // earlier frames of that block salvage.
        let cut = full_len - 5;
        let torn = tmp("torn-cut.gseg");
        std::fs::copy(&path, &torn).unwrap();
        OpenOptions::new()
            .write(true)
            .open(&torn)
            .unwrap()
            .set_len(cut)
            .unwrap();
        let rec = recover_segment(&torn).unwrap();
        assert!(rec.truncated);
        assert_eq!(rec.dropped_blocks, 0);
        assert_eq!(rec.frames, 32, "first block intact");
        // Loss bounded to the torn tail frame: 31 of 32 salvage.
        assert_eq!(rec.salvaged.len(), 31);
        assert_eq!(rec.salvaged[..], expect[32..63]);
    }

    #[test]
    fn bit_flip_drops_only_from_corrupt_block() {
        let path = tmp("flip.gseg");
        write_sample_segment(&path, 3, 16);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip one payload byte in the second block.
        let mut f = File::open(&path).unwrap();
        read_seg_header(&mut f).unwrap();
        let scan = scan_headers(&mut f).unwrap();
        let target = scan.blocks[1].offset as usize + BLOCK_HEADER_LEN as usize + 3;
        bytes[target] ^= 0x40;
        let flipped = tmp("flip-bad.gseg");
        std::fs::write(&flipped, &bytes).unwrap();
        let rec = recover_segment(&flipped).unwrap();
        assert!(rec.truncated);
        assert_eq!(rec.dropped_blocks, 1);
        assert_eq!(rec.frames, 16, "only block 0 is trusted for append");
        assert_eq!(rec.valid_len, scan.blocks[1].offset);
        assert!(rec.salvaged.is_empty());
    }

    #[test]
    fn recovery_of_clean_segment_is_lossless() {
        let path = tmp("clean.gseg");
        write_sample_segment(&path, 2, 10);
        let rec = recover_segment(&path).unwrap();
        assert!(!rec.truncated);
        assert_eq!(rec.frames, 20);
        assert_eq!(rec.last_us, Some(19_000));
        assert_eq!(rec.valid_len, std::fs::metadata(&path).unwrap().len());
    }

    #[test]
    fn resume_appends_after_valid_prefix() {
        let path = tmp("resume.gseg");
        write_sample_segment(&path, 1, 8);
        let rec = recover_segment(&path).unwrap();
        let mut w = SegmentWriter::resume(path.clone(), rec.valid_len, false).unwrap();
        w.append(100_000, 42.0, Some("even"));
        w.flush_block().unwrap();
        w.seal().unwrap();
        let frames = read_all_frames(&path);
        assert_eq!(frames.len(), 9);
        assert_eq!(frames[8].time_us, 100_000);
        assert_eq!(frames[8].value, 42.0);
    }

    #[test]
    fn unnamed_frames_round_trip() {
        let path = tmp("unnamed.gseg");
        let mut w = SegmentWriter::create(path.to_path_buf(), 0, 0, false).unwrap();
        w.append(5, 1.25, None);
        w.append(10, -2.5, None);
        w.flush_block().unwrap();
        w.seal().unwrap();
        let frames = read_all_frames(&path);
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[0].name, None);
        assert_eq!(frames[1].time_us, 10);
    }
}
