//! Low-level encoding primitives for the store's block payloads:
//! LEB128 varints and CRC32C (Castagnoli).
//!
//! The checksum is CRC32C rather than the zlib/IEEE polynomial because
//! x86_64 has carried a dedicated CRC32C instruction since SSE4.2 —
//! the checksum runs over every block payload, so it sits on the
//! append hot path. A slicing-by-8 table fallback covers every other
//! target with the same on-disk result.

/// CRC32C (polynomial 0x82F63B78, reflected) lookup tables for
/// slicing-by-8, built at compile time. Table 0 is the classic
/// byte-at-a-time table; table `j` advances a byte `j` positions
/// further through the register, letting the software loop fold 8
/// input bytes per iteration (~6x faster than byte-at-a-time).
const CRC_TABLES: [[u32; 256]; 8] = {
    let mut t = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0x82F6_3B78 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        t[0][i] = c;
        i += 1;
    }
    let mut j = 1;
    while j < 8 {
        let mut i = 0;
        while i < 256 {
            t[j][i] = (t[j - 1][i] >> 8) ^ t[0][(t[j - 1][i] & 0xFF) as usize];
            i += 1;
        }
        j += 1;
    }
    t
};

fn crc32_sw(seed: u32, bytes: &[u8]) -> u32 {
    let mut c = !seed;
    let mut chunks = bytes.chunks_exact(8);
    for ch in &mut chunks {
        let lo = u32::from_le_bytes([ch[0], ch[1], ch[2], ch[3]]) ^ c;
        let hi = u32::from_le_bytes([ch[4], ch[5], ch[6], ch[7]]);
        c = CRC_TABLES[7][(lo & 0xFF) as usize]
            ^ CRC_TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ CRC_TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ CRC_TABLES[4][(lo >> 24) as usize]
            ^ CRC_TABLES[3][(hi & 0xFF) as usize]
            ^ CRC_TABLES[2][((hi >> 8) & 0xFF) as usize]
            ^ CRC_TABLES[1][((hi >> 16) & 0xFF) as usize]
            ^ CRC_TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        c = CRC_TABLES[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// Hardware CRC32C via the SSE4.2 `crc32` instruction, 8 bytes per
/// step. Bit-identical to [`crc32_sw`]; callers must have verified
/// SSE4.2 support.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse4.2")]
unsafe fn crc32_hw(seed: u32, bytes: &[u8]) -> u32 {
    use std::arch::x86_64::{_mm_crc32_u64, _mm_crc32_u8};
    let mut c = !seed as u64;
    let mut chunks = bytes.chunks_exact(8);
    for ch in &mut chunks {
        let word = u64::from_le_bytes(ch.try_into().unwrap());
        c = _mm_crc32_u64(c, word);
    }
    let mut c = c as u32;
    for &b in chunks.remainder() {
        c = _mm_crc32_u8(c, b);
    }
    !c
}

/// CRC32C over `bytes`, continuing from `seed` (pass 0 to start).
///
/// The running form lets the block writer checksum the header fields
/// and the payload without concatenating them. Dispatches to the
/// SSE4.2 instruction where available (feature detection is cached by
/// the standard library, so the check costs one predictable branch).
pub fn crc32(seed: u32, bytes: &[u8]) -> u32 {
    #[cfg(target_arch = "x86_64")]
    if is_x86_feature_detected!("sse4.2") {
        // SAFETY: feature presence checked above.
        return unsafe { crc32_hw(seed, bytes) };
    }
    crc32_sw(seed, bytes)
}

/// Appends `v` as an unsigned LEB128 varint (1–10 bytes).
#[inline]
pub fn put_uvarint(buf: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        buf.push((v as u8) | 0x80);
        v >>= 7;
    }
    buf.push(v as u8);
}

/// Writes `v` as an unsigned LEB128 varint into `buf`, returning the
/// encoded length (1–10 bytes; `buf` must be at least 10 bytes).
///
/// The slice form lets the append hot path assemble a whole frame in a
/// stack buffer and pay for one `Vec` bounds/capacity check instead of
/// one per field.
#[inline]
pub fn put_uvarint_into(buf: &mut [u8], mut v: u64) -> usize {
    let mut i = 0;
    while v >= 0x80 {
        buf[i] = (v as u8) | 0x80;
        v >>= 7;
        i += 1;
    }
    buf[i] = v as u8;
    i + 1
}

/// Reads an unsigned LEB128 varint at `*pos`, advancing it.
///
/// Returns `None` on truncated input or a varint longer than 10 bytes.
#[inline]
pub fn get_uvarint(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let b = *buf.get(*pos)?;
        *pos += 1;
        if shift == 63 && b > 1 {
            return None; // overflow past 64 bits
        }
        v |= u64::from(b & 0x7F) << shift;
        if b & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
        if shift > 63 {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trips() {
        let cases = [
            0u64,
            1,
            127,
            128,
            300,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX,
        ];
        for &v in &cases {
            let mut buf = Vec::new();
            put_uvarint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(get_uvarint(&buf, &mut pos), Some(v));
            assert_eq!(pos, buf.len());
            // The slice form produces identical bytes.
            let mut arr = [0u8; 10];
            let n = put_uvarint_into(&mut arr, v);
            assert_eq!(&arr[..n], &buf[..]);
        }
    }

    #[test]
    fn varint_rejects_truncation_and_overflow() {
        let mut buf = Vec::new();
        put_uvarint(&mut buf, u64::MAX);
        for cut in 0..buf.len() {
            let mut pos = 0;
            assert_eq!(get_uvarint(&buf[..cut], &mut pos), None, "cut at {cut}");
        }
        // 11 continuation bytes can never be a valid u64.
        let bad = [0x80u8; 11];
        let mut pos = 0;
        assert_eq!(get_uvarint(&bad, &mut pos), None);
    }

    #[test]
    fn crc_matches_known_vector() {
        // The canonical CRC32C check value (RFC 3720 appendix B.4).
        assert_eq!(crc32(0, b"123456789"), 0xE306_9283);
        // Running form equals one-shot form.
        let oneshot = crc32(0, b"hello world");
        let running = crc32(crc32(0, b"hello "), b"world");
        assert_eq!(oneshot, running);
    }

    #[test]
    fn crc_hw_and_sw_agree() {
        // Exercise every remainder length and a multi-chunk body so a
        // polynomial or reflection mismatch between the two paths
        // cannot hide.
        let data: Vec<u8> = (0..1021u32)
            .map(|i| (i.wrapping_mul(31) ^ (i >> 3)) as u8)
            .collect();
        for cut in [0, 1, 7, 8, 9, 63, 64, 65, 1021] {
            let sw = crc32_sw(0x1234_5678, &data[..cut]);
            assert_eq!(crc32(0x1234_5678, &data[..cut]), sw, "len {cut}");
            #[cfg(target_arch = "x86_64")]
            if is_x86_feature_detected!("sse4.2") {
                assert_eq!(
                    unsafe { crc32_hw(0x1234_5678, &data[..cut]) },
                    sw,
                    "hw len {cut}"
                );
            }
        }
    }

    #[test]
    fn crc_detects_single_bit_flips() {
        let data = b"gstore block payload".to_vec();
        let good = crc32(0, &data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(0, &flipped), good, "flip {byte}:{bit}");
            }
        }
    }
}
