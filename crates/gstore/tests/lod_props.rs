//! glod pyramid properties: tier-K+1 envelope segments are exactly
//! `decimate_minmax` of their tier-K sources (including NaN values and
//! equal-timestamp frames), and a compactor killed mid-fold recovers
//! to a pyramid with no torn or double-counted tier segments.

use gel::TimeStamp;
use gscope::{decimate_minmax, Cols};
use gstore::lod::{watermark, Compactor, CompactorConfig};
use gstore::segment::{read_block_payload, read_seg_header, scan_headers};
use gstore::{catalog_segments, probe_index, IndexProbe, SegmentInfo, Store, StoreConfig};
use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::collections::BTreeMap;
use std::fs::File;
use std::path::{Path, PathBuf};

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("gstore-lod-props").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn small_cfg() -> StoreConfig {
    StoreConfig {
        block_bytes: 256,
        block_frames: 16,
        segment_bytes: 2048,
        ..StoreConfig::default()
    }
}

fn lod_cfg(group: u64) -> CompactorConfig {
    CompactorConfig {
        group,
        max_tier: 3,
        min_fold_frames: 1,
        block_frames: 16,
        ..CompactorConfig::default()
    }
}

/// Decodes every complete frame of one segment file, in order.
fn read_frames(path: &Path) -> Vec<(u64, f64, Option<String>)> {
    let mut file = File::open(path).unwrap();
    read_seg_header(&mut file).unwrap();
    let scan = scan_headers(&mut file).unwrap();
    let mut out = Vec::new();
    for meta in &scan.blocks {
        let Some(payload) = read_block_payload(&mut file, meta).unwrap() else {
            continue;
        };
        let (frames, _) = gstore::segment::decode_records(&payload, meta.first_us);
        for f in frames {
            out.push((f.time_us, f.value, f.name.as_deref().map(str::to_owned)));
        }
    }
    out
}

/// Groups frames per signal, preserving time order.
fn per_signal(frames: &[(u64, f64, Option<String>)]) -> BTreeMap<Option<String>, Vec<(u64, f64)>> {
    let mut map: BTreeMap<Option<String>, Vec<(u64, f64)>> = BTreeMap::new();
    for (t, v, name) in frames {
        map.entry(name.clone()).or_default().push((*t, *v));
    }
    map
}

/// The reference fold: `decimate_minmax` of `src` at `group`, as
/// `(band_time, lo, hi)` rows — band time is the first source frame
/// landing in the band (the same `i * width / n` partition the
/// decimation uses).
fn reference_bands(src: &[(u64, f64)], group: u64) -> Vec<(u64, f64, f64)> {
    let n = src.len();
    if n == 0 {
        return Vec::new();
    }
    let width = n.div_ceil(group as usize);
    let samples: Vec<Option<f64>> = src.iter().map(|&(_, v)| Some(v)).collect();
    let bands = decimate_minmax(Cols::from_slices(&samples, &[]), width);
    let mut first_t: Vec<Option<u64>> = vec![None; bands.len()];
    for (i, &(t, _)) in src.iter().enumerate() {
        let b = i * bands.len() / n;
        if first_t[b].is_none() {
            first_t[b] = Some(t);
        }
    }
    bands
        .into_iter()
        .enumerate()
        .map(|(b, band)| {
            let (lo, hi) = band.expect("every band holds >= 1 sample");
            (first_t[b].unwrap(), lo, hi)
        })
        .collect()
}

/// Tier-`k` segments in seq order.
fn tier_of(catalog: &[SegmentInfo], k: u16) -> Vec<&SegmentInfo> {
    let mut v: Vec<_> = catalog.iter().filter(|s| s.tier == k).collect();
    v.sort_by_key(|s| s.seq);
    v
}

/// Checks every tier-`k+1` output against the reference fold of its
/// tier-`k` source window (derived from the watermark names: output
/// seq S covers sources in `(previous output seq, S]`). The output
/// whose seq is `allow_prefix_for` may be a *prefix* of the reference
/// — what a recovered torn tail legitimately looks like — but never
/// disagree on any pair it does hold, and never exceed the reference
/// (the double-count signature).
fn check_fold_equivalence(dir: &Path, k: u16, group: u64, allow_prefix_for: Option<u64>) {
    let catalog = catalog_segments(dir).unwrap();
    let sources = tier_of(&catalog, k);
    let outputs = tier_of(&catalog, k + 1);
    let mut prev: Option<u64> = None;
    for out in outputs {
        let allow_prefix = allow_prefix_for == Some(out.seq);
        let window: Vec<_> = sources
            .iter()
            .filter(|s| prev.is_none_or(|p| s.seq > p) && s.seq <= out.seq)
            .collect();
        prev = Some(out.seq);
        let mut src_frames = Vec::new();
        for seg in window {
            src_frames.extend(read_frames(&seg.path));
        }
        let got = per_signal(&read_frames(&out.path));
        let want = per_signal(&src_frames);
        for (name, pairs) in &got {
            let reference = reference_bands(&want[name], group);
            assert_eq!(
                pairs.len() % 2,
                0,
                "tier {} seg {} signal {:?}: odd envelope frame count",
                k + 1,
                out.seq,
                name
            );
            if allow_prefix {
                assert!(
                    pairs.len() / 2 <= reference.len(),
                    "tier {} seg {} signal {:?}: more bands than the source folds to (double count)",
                    k + 1,
                    out.seq,
                    name
                );
            } else {
                assert_eq!(
                    pairs.len() / 2,
                    reference.len(),
                    "tier {} seg {} signal {:?}: band count mismatch",
                    k + 1,
                    out.seq,
                    name
                );
            }
            for (b, &(t, lo, hi)) in reference.iter().enumerate().take(pairs.len() / 2) {
                let (t_lo, v_lo) = pairs[2 * b];
                let (t_hi, v_hi) = pairs[2 * b + 1];
                assert_eq!(t_lo, t, "band {b} lo time");
                assert_eq!(t_hi, t, "band {b} hi time");
                assert_eq!(v_lo.to_bits(), lo.to_bits(), "band {b} min");
                assert_eq!(v_hi.to_bits(), hi.to_bits(), "band {b} max");
            }
        }
        // Every source signal that has frames must appear in the
        // output: silently dropping one would also be "not torn" yet
        // wrong.
        if !allow_prefix {
            for name in want.keys() {
                assert!(got.contains_key(name), "signal {name:?} lost in fold");
            }
        }
    }
}

/// Writes `n` frames with equal-timestamp runs, NaN values, and a mix
/// of named/unnamed signals, sealing through close.
fn fill_random(dir: &Path, seed: u64, n: usize, start_us: u64) -> u64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let names = ["alpha", "beta"];
    let mut store = Store::open(dir, small_cfg()).unwrap();
    let mut t = start_us;
    for _ in 0..n {
        // 30% zero deltas: equal timestamps are legal (§3.3) and must
        // not break band attribution.
        if !rng.gen_bool(0.3) {
            t += rng.gen_range(1u64..2_000);
        }
        // 10% NaN: f64::min/max ignore NaN unless the whole band is
        // NaN, and the fold must reproduce that exactly.
        let v = if rng.gen_bool(0.1) {
            f64::NAN
        } else {
            (rng.gen_range(-1_000_000i64..1_000_000) as f64) / 64.0
        };
        let name = if rng.gen_bool(0.2) {
            None
        } else {
            Some(names[rng.gen_range(0usize..names.len())])
        };
        store.append(TimeStamp::from_micros(t), v, name).unwrap();
    }
    store.close().unwrap();
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every pyramid tier is *exactly* `decimate_minmax` of the tier
    /// below: same band partition, same min/max bits (NaN included),
    /// band timestamps anchored to the first source frame — for every
    /// power-of-two group and for every tier the compactor built.
    #[test]
    fn pyramid_tiers_equal_decimate_minmax_of_sources(
        seed in 0u64..1_000_000,
        n in 64usize..600,
        group_pow in 1u32..4,
    ) {
        let group = 1u64 << group_pow;
        let dir = tmp_dir(&format!("equiv-{seed}-{n}-{group}"));
        fill_random(&dir, seed, n, 0);
        let mut c = Compactor::new(&dir, lod_cfg(group)).unwrap();
        let report = c.pass().unwrap();
        prop_assert!(report.folds > 0, "{report:?}");
        for k in 0..report.top_tier {
            check_fold_equivalence(&dir, k, group, None);
        }
        // Envelope frames must stay §3.3-ordered per segment.
        let catalog = catalog_segments(&dir).unwrap();
        for seg in catalog.iter().filter(|s| s.tier >= 1) {
            let frames = read_frames(&seg.path);
            for w in frames.windows(2) {
                prop_assert!(w[0].0 <= w[1].0, "tier {} out of order", seg.tier);
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Kills the compactor "mid-fold" — a partial scratch file on disk and
/// a published pyramid output torn mid-block with a stale sidecar —
/// and proves recovery converges: scratch swept, torn segment
/// truncated to a clean verified prefix, no band double-counted,
/// refold resumes from the watermark, and a second pass is a no-op.
///
/// The tear hits the *top* tier: its sources are intact, so the
/// recovered prefix can be re-verified band-for-band against a fresh
/// reference fold. (Tearing a mid-pyramid tier would orphan its
/// already-folded descendants — they hold pre-tear data and a refold
/// of the truncated source partitions its bands differently, so
/// band-exact re-verification is only meaningful where the source
/// still exists in full.)
#[test]
fn compactor_crash_recovery_leaves_no_torn_or_double_counted_tiers() {
    let group = 4u64;
    let dir = tmp_dir("crash");
    let end = fill_random(&dir, 0xc4a5, 1_500, 0);
    let mut c = Compactor::new(&dir, lod_cfg(group)).unwrap();
    let first = c.pass().unwrap();
    assert!(first.top_tier >= 2, "need a multi-level pyramid: {first:?}");

    // More sealed history arrives after the first fold round.
    fill_random(&dir, 0xc4a6, 1_500, end + 1);

    // Crash artifact 1: a fold died before publishing — its scratch
    // output is partial garbage.
    std::fs::write(dir.join("lod-tmp-99999999-t1.gseg"), b"GSG1 torn mid write").unwrap();

    // Crash artifact 2: a published top-tier segment lost its tail
    // (torn mid-block); its sidecar is now stale.
    let catalog = catalog_segments(&dir).unwrap();
    let victim = catalog
        .iter()
        .filter(|s| s.tier == first.top_tier)
        .min_by_key(|s| s.seq)
        .expect("first pass built the top tier")
        .clone();
    let len = std::fs::metadata(&victim.path).unwrap().len();
    let file = std::fs::OpenOptions::new()
        .write(true)
        .open(&victim.path)
        .unwrap();
    file.set_len(len - 7).unwrap();
    drop(file);

    let report = c.pass().unwrap();
    assert!(
        report.recovered >= 2,
        "swept scratch + repaired tear: {report:?}"
    );
    assert!(
        report.folds > 0,
        "pending sealed history refolds: {report:?}"
    );

    // No scratch survives recovery.
    let leftovers: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .flatten()
        .filter(|e| {
            e.file_name()
                .to_str()
                .is_some_and(|n| n.starts_with("lod-tmp-"))
        })
        .collect();
    assert!(leftovers.is_empty(), "{leftovers:?}");

    // Every pyramid segment verifies clean: sidecar matches the file
    // exactly (recover_segment rebuilt the torn one's).
    let catalog = catalog_segments(&dir).unwrap();
    for seg in catalog.iter().filter(|s| s.tier >= 1) {
        assert!(
            matches!(probe_index(&seg.path).unwrap(), IndexProbe::Valid(_)),
            "{} not sealed/clean after recovery",
            seg.path.display()
        );
    }

    // The torn segment kept a verified prefix and nothing else; every
    // other output still folds bit-for-bit — no double count anywhere.
    for k in 0..report.top_tier.max(1) {
        let torn = (k + 1 == victim.tier).then_some(victim.seq);
        check_fold_equivalence(&dir, k, group, torn);
    }

    // Watermark covers every sealed tier-0 segment (the unsealed
    // active segment was closed, so all of them)...
    let wm = watermark(&dir, 1).unwrap();
    let max_t0 = catalog
        .iter()
        .filter(|s| s.tier == 0)
        .map(|s| s.seq)
        .max()
        .unwrap();
    assert_eq!(wm, max_t0, "pyramid caught up to the append head");

    // ...and having converged, another pass folds nothing (refolding
    // covered sources would be the double-count bug).
    let again = c.pass().unwrap();
    assert_eq!(again.folds, 0, "{again:?}");
    std::fs::remove_dir_all(&dir).ok();
}
