//! Property and fuzz-style tests for the store: binary↔text codec
//! agreement, §3.3 monotonicity at both writer layers, and crash
//! recovery under random damage.

use gel::TimeStamp;
use gscope::{ScopeError, TupleReader, TupleSource, TupleWriter};
use gstore::{recover_segment, Store, StoreConfig, StoreReader};
use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::path::PathBuf;

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("gstore-props").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn small_cfg() -> StoreConfig {
    StoreConfig {
        block_bytes: 256,
        block_frames: 16,
        segment_bytes: 2048,
        ..StoreConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The binary store and the §3.3 text codec agree exactly: the
    /// same stream written through both and read back yields identical
    /// tuples (times to the microsecond, values to the bit, names).
    #[test]
    fn store_round_trip_matches_text_codec(
        seed in 0u64..1_000_000,
        n in 1usize..300,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let names = ["alpha", "beta.1", "g_2"];
        let mut time_us = 0u64;
        let mut stream = Vec::with_capacity(n);
        for _ in 0..n {
            // Mix of zero and positive deltas: equal times are legal.
            time_us += rng.gen_range(0u64..5_000);
            // Values that survive text round-trips exactly.
            let value = (rng.gen_range(-1_000_000i64..1_000_000) as f64) / 64.0;
            let name = if rng.gen_bool(0.2) {
                None
            } else {
                Some(names[rng.gen_range(0usize..names.len())])
            };
            stream.push((TimeStamp::from_micros(time_us), value, name));
        }

        let dir = tmp_dir(&format!("codec-{seed}-{n}"));
        let mut store = Store::open(&dir, small_cfg()).unwrap();
        let mut text = TupleWriter::new(Vec::new());
        for (t, v, name) in &stream {
            store.append(*t, *v, *name).unwrap();
            text.write_parts(*t, *v, *name).unwrap();
        }
        store.close().unwrap();
        let text_bytes = text.into_inner();

        let mut reader = StoreReader::open(&dir).unwrap();
        let from_store = reader.collect_tuples().unwrap();
        let from_text = TupleReader::new(&text_bytes[..]).collect_tuples().unwrap();
        prop_assert_eq!(from_store.len(), stream.len());
        prop_assert_eq!(from_store.len(), from_text.len());
        for (s, t) in from_store.iter().zip(&from_text) {
            prop_assert_eq!(s.time, t.time);
            prop_assert_eq!(s.value.to_bits(), t.value.to_bits());
            prop_assert_eq!(s.name.as_deref(), t.name.as_deref());
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// §3.3 monotonicity, enforced identically at the text-writer and
    /// store-append layers: non-decreasing (equal allowed) accepted,
    /// any regression rejected with `TupleOrder`, and a rejected
    /// append does not corrupt the accepted prefix.
    #[test]
    fn both_writer_layers_enforce_nondecreasing_time(
        seed in 0u64..1_000_000,
        n in 2usize..100,
    ) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
        let mut time_us = 1_000u64;
        let mut times = Vec::with_capacity(n);
        for _ in 0..n {
            time_us += rng.gen_range(0u64..2_000); // zero deltas included
            times.push(time_us);
        }
        let violate_at = rng.gen_range(1usize..n);
        let bad_time = times[violate_at - 1] - 1;

        let dir = tmp_dir(&format!("mono-{seed}-{n}"));
        let mut store = Store::open(&dir, small_cfg()).unwrap();
        let mut text = TupleWriter::new(Vec::new());
        for (i, &t) in times.iter().enumerate() {
            if i == violate_at {
                let ts = TimeStamp::from_micros(bad_time);
                let store_err = store.append(ts, 0.0, Some("s")).unwrap_err();
                let text_err = text.write_parts(ts, 0.0, Some("s")).unwrap_err();
                prop_assert!(matches!(store_err, ScopeError::TupleOrder { .. }));
                prop_assert!(matches!(text_err, ScopeError::TupleOrder { .. }));
            }
            let ts = TimeStamp::from_micros(t);
            store.append(ts, i as f64, Some("s")).unwrap();
            text.write_parts(ts, i as f64, Some("s")).unwrap();
        }
        store.close().unwrap();
        let mut reader = StoreReader::open(&dir).unwrap();
        let tuples = reader.collect_tuples().unwrap();
        prop_assert_eq!(tuples.len(), n);
        for (t, &expect) in tuples.iter().zip(&times) {
            prop_assert_eq!(t.time.as_micros(), expect);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Truncating a segment anywhere yields a recoverable prefix:
    /// recovery never errors, salvages only frames that were fully on
    /// disk, and every complete block below the cut survives intact.
    #[test]
    fn random_truncation_recovers_a_prefix(
        seed in 0u64..1_000_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x70_72);
        let dir = tmp_dir(&format!("trunc-{seed}"));
        let mut store = Store::open(
            &dir,
            StoreConfig {
                block_bytes: 200,
                block_frames: 8,
                segment_bytes: 1 << 20, // keep one segment
                ..StoreConfig::default()
            },
        )
        .unwrap();
        let n = 120u64;
        for i in 0..n {
            store
                .append(TimeStamp::from_micros(i * 1_000), i as f64, Some("sig"))
                .unwrap();
        }
        store.close().unwrap();
        let seg = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .find(|p| p.extension().is_some_and(|e| e == "gseg"))
            .unwrap();
        let full = std::fs::metadata(&seg).unwrap().len();
        let cut = rng.gen_range(0u64..full + 1);
        std::fs::OpenOptions::new()
            .write(true)
            .open(&seg)
            .unwrap()
            .set_len(cut)
            .unwrap();

        let rec = recover_segment(&seg).unwrap(); // never refuses
        prop_assert!(rec.valid_len <= cut.max(16));
        let survived = rec.frames + rec.salvaged.len() as u64;
        prop_assert!(survived <= n);

        // A reopened store accepts the damage and keeps appending.
        let mut store = Store::open(&dir, small_cfg()).unwrap();
        let resume = store.last_time().map_or(0, |t| t.as_micros());
        store
            .append(TimeStamp::from_micros(resume.max((n - 1) * 1_000)), -1.0, Some("sig"))
            .unwrap();
        store.close().unwrap();

        // And the readable stream is a strict prefix + the new frame:
        // times 0, 1000, 2000, ... with values 0, 1, 2, ...
        let mut reader = StoreReader::open(&dir).unwrap();
        let tuples = reader.collect_tuples().unwrap();
        prop_assert!(!tuples.is_empty());
        for (i, t) in tuples[..tuples.len() - 1].iter().enumerate() {
            prop_assert_eq!(t.time.as_micros(), i as u64 * 1_000);
            prop_assert_eq!(t.value, i as f64);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// The `.gidx` sidecar survives arbitrary damage to either file:
    /// truncate the segment (sidecar goes stale), truncate or bit-flip
    /// the sidecar, or delete it outright — recovery always leaves a
    /// sidecar that equals a fresh rebuild of the recovered prefix,
    /// and the next probe sees it as valid.
    #[test]
    fn damaged_sidecar_rebuilds_to_match_recovered_prefix(
        seed in 0u64..1_000_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x67_69);
        let dir = tmp_dir(&format!("gidx-{seed}"));
        let mut store = Store::open(
            &dir,
            StoreConfig {
                block_bytes: 200,
                block_frames: 8,
                segment_bytes: 1 << 20, // keep one segment
                ..StoreConfig::default()
            },
        )
        .unwrap();
        for i in 0..120u64 {
            let name = if i % 3 == 0 { "scope.tick#t1" } else { "sig" };
            store
                .append(TimeStamp::from_micros(i * 1_000), i as f64, Some(name))
                .unwrap();
        }
        store.close().unwrap();
        let seg = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .find(|p| p.extension().is_some_and(|e| e == "gseg"))
            .unwrap();
        let sidecar = gstore::index_path(&seg);
        prop_assert!(sidecar.is_file());

        match rng.gen_range(0u32..4) {
            0 => {
                // Truncate the segment: the sidecar is now stale.
                let len = std::fs::metadata(&seg).unwrap().len();
                let cut = rng.gen_range(0u64..len + 1);
                std::fs::OpenOptions::new()
                    .write(true)
                    .open(&seg)
                    .unwrap()
                    .set_len(cut)
                    .unwrap();
            }
            1 => {
                // Truncate the sidecar.
                let len = std::fs::metadata(&sidecar).unwrap().len();
                let cut = rng.gen_range(0u64..len);
                std::fs::OpenOptions::new()
                    .write(true)
                    .open(&sidecar)
                    .unwrap()
                    .set_len(cut)
                    .unwrap();
            }
            2 => {
                // Flip one sidecar bit.
                let mut bytes = std::fs::read(&sidecar).unwrap();
                let at = rng.gen_range(0usize..bytes.len());
                bytes[at] ^= 1 << rng.gen_range(0u32..8);
                std::fs::write(&sidecar, &bytes).unwrap();
            }
            _ => std::fs::remove_file(&sidecar).unwrap(),
        }

        let damaged_sidecar = std::fs::read(&sidecar).ok();
        let rec = recover_segment(&seg).unwrap();
        // Recovery either kept a sidecar that already matched or
        // rebuilt one; it must never leave the damaged bytes behind.
        if rec.index_rebuilt {
            prop_assert!(std::fs::read(&sidecar).ok() != damaged_sidecar || rec.valid_len == 16);
        }
        if rec.valid_len > 16 {
            let expect = gstore::build_index(&seg, Some(rec.valid_len)).unwrap();
            let on_disk = gstore::read_index(&sidecar).unwrap();
            prop_assert_eq!(&on_disk, &expect);
            // Recovery's caller truncates the file to the trusted
            // prefix; after that the sidecar probes as valid.
            std::fs::OpenOptions::new()
                .write(true)
                .open(&seg)
                .unwrap()
                .set_len(rec.valid_len)
                .unwrap();
            prop_assert!(matches!(
                gstore::probe_index(&seg).unwrap(),
                gstore::IndexProbe::Valid(_)
            ));
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// The CI recovery smoke (ISSUE satellite 5): 100 random truncations
/// of a multi-segment store, every one of which must open cleanly,
/// stream monotone data, and never panic. Damage accumulates across
/// iterations — later opens see earlier scars.
#[test]
fn recovery_smoke_100_random_truncations() {
    let dir = tmp_dir("smoke-100");
    let mut store = Store::open(&dir, small_cfg()).unwrap();
    for i in 0..4_000u64 {
        store
            .append(
                TimeStamp::from_micros(i * 1_000),
                (i as f64 * 0.03).sin(),
                Some(if i % 2 == 0 { "even" } else { "odd" }),
            )
            .unwrap();
    }
    store.close().unwrap();

    let mut rng = StdRng::seed_from_u64(0x5340_4b45);
    for round in 0..100 {
        // Pick any segment and cut a random amount off its tail; every
        // few rounds flip a random byte instead (bit rot).
        let segs: Vec<PathBuf> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .filter(|p| p.extension().is_some_and(|e| e == "gseg"))
            .collect();
        assert!(!segs.is_empty(), "round {round}: store emptied out");
        let seg = &segs[rng.gen_range(0usize..segs.len())];
        let len = std::fs::metadata(seg).unwrap().len();
        if round % 5 == 4 && len > 0 {
            let mut bytes = std::fs::read(seg).unwrap();
            let at = rng.gen_range(0u64..len) as usize;
            bytes[at] ^= 1 << rng.gen_range(0u32..8);
            std::fs::write(seg, &bytes).unwrap();
        } else {
            let cut = rng.gen_range(0u64..len + 1);
            std::fs::OpenOptions::new()
                .write(true)
                .open(seg)
                .unwrap()
                .set_len(cut)
                .unwrap();
        }

        // Open must always succeed; the stream must stay monotone.
        let store = Store::open(&dir, small_cfg()).unwrap();
        drop(store);
        let mut reader = StoreReader::open(&dir).unwrap();
        let mut last = TimeStamp::ZERO;
        let mut count = 0u64;
        while let Some(t) = reader.next_tuple().unwrap() {
            assert!(t.time >= last, "round {round}: time went backwards");
            last = t.time;
            count += 1;
        }
        let _ = count;
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Seeking after damage still lands correctly: recovery plus seek
/// compose (the replay path `gtool replay --store --from T` exercises).
#[test]
fn seek_after_torn_tail_recovery() {
    let dir = tmp_dir("seek-torn");
    let mut store = Store::open(&dir, small_cfg()).unwrap();
    for i in 0..1_000u64 {
        store
            .append(TimeStamp::from_micros(i * 2_000), i as f64, Some("s"))
            .unwrap();
    }
    store.flush().unwrap();
    std::mem::forget(store); // crash: no clean close

    // Tear the newest segment mid-frame.
    let newest = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "gseg"))
        .max()
        .unwrap();
    let len = std::fs::metadata(&newest).unwrap().len();
    std::fs::OpenOptions::new()
        .write(true)
        .open(&newest)
        .unwrap()
        .set_len(len - 4)
        .unwrap();

    let store = Store::open(&dir, small_cfg()).unwrap();
    assert!(store.stats().recovery_truncations >= 1);
    store.close().unwrap();

    let mut reader = StoreReader::open(&dir).unwrap();
    reader.seek(TimeStamp::from_micros(1_000_001)).unwrap();
    let t = reader.next_tuple().unwrap().unwrap();
    assert_eq!(t.time.as_micros(), 1_002_000);
    std::fs::remove_dir_all(&dir).ok();
}
