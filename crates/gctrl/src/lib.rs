//! `gctrl` — control algorithms and signal generators.
//!
//! §1 of the paper: gscope was used to visualize and debug "various
//! control algorithms such as a software implementation of a phase-lock
//! loop", citing Franklin, Powell & Workman's *Digital Control of
//! Dynamic Systems*. This crate provides those application-side
//! substrates for the workspace's examples and experiments:
//!
//! * [`Pll`] — a second-order digital phase-locked loop whose phase
//!   error, frequency estimate, and lock metric make ideal scope
//!   signals,
//! * [`Pid`] — a discrete PID controller with clamping and anti-windup,
//! * [`Oscillator`] / [`Chirp`] / [`Noise`] — deterministic test-signal
//!   generators that plug directly into gscope `FUNC` sources.

mod gen;
mod pid;
mod pll;

pub use gen::{Chirp, Noise, Oscillator, Waveform};
pub use pid::{Pid, PidConfig};
pub use pll::{Pll, PllConfig, PllOutput};
