//! A software phase-locked loop.
//!
//! §1 lists "a software implementation of a phase-lock loop" among the
//! control algorithms the authors visualized with gscope. This is a
//! classic second-order digital PLL: a multiplying phase detector, a
//! low-pass arm, a PI loop filter, and a numerically controlled
//! oscillator. Its phase error, frequency estimate, and lock flag are
//! exactly the kind of time-sensitive internal state a scope window
//! makes visible.

/// PLL design parameters.
#[derive(Clone, Copy, Debug)]
pub struct PllConfig {
    /// NCO center (free-running) frequency in Hz.
    pub center_freq: f64,
    /// Loop noise bandwidth in Hz (sets the natural frequency).
    pub bandwidth: f64,
    /// Damping factor (0.707 critical-ish).
    pub damping: f64,
    /// |smoothed phase error| below which the loop reports lock.
    pub lock_threshold: f64,
}

impl Default for PllConfig {
    fn default() -> Self {
        PllConfig {
            center_freq: 50.0,
            bandwidth: 4.0,
            damping: 0.707,
            lock_threshold: 0.1,
        }
    }
}

/// One step's observable PLL state.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PllOutput {
    /// Instantaneous (filtered) phase error in radians.
    pub phase_error: f64,
    /// Current NCO frequency estimate in Hz.
    pub frequency: f64,
    /// The NCO output sample.
    pub nco: f64,
    /// True while the smoothed error is inside the lock threshold.
    pub locked: bool,
}

/// A second-order digital PLL.
#[derive(Clone, Debug)]
pub struct Pll {
    config: PllConfig,
    /// NCO phase in radians.
    phase: f64,
    /// Integrator of the PI loop filter (Hz of correction).
    freq_integrator: f64,
    /// Two-stage low-passed in-phase arm (∝ sin Δθ).
    i_lp: [f64; 2],
    /// Two-stage low-passed quadrature arm (∝ cos Δθ).
    q_lp: [f64; 2],
    /// Long-window smoothed |error| for lock detection.
    lock_metric: f64,
    kp: f64,
    ki: f64,
}

impl Pll {
    /// Creates a PLL.
    ///
    /// # Panics
    ///
    /// Panics if the center frequency or bandwidth is not positive.
    pub fn new(config: PllConfig) -> Self {
        assert!(
            config.center_freq > 0.0 && config.bandwidth > 0.0,
            "PLL frequencies must be positive"
        );
        let wn = 2.0 * std::f64::consts::PI * config.bandwidth;
        // Standard 2nd-order loop gains; the atan2 discriminator has
        // unit gain, so no detector compensation is needed.
        let kp = 2.0 * config.damping * wn;
        let ki = wn * wn;
        Pll {
            config,
            phase: 0.0,
            freq_integrator: 0.0,
            i_lp: [0.0; 2],
            q_lp: [0.0; 2],
            lock_metric: 1.0,
            kp,
            ki,
        }
    }

    /// Returns the configuration.
    pub fn config(&self) -> PllConfig {
        self.config
    }

    /// Current frequency estimate in Hz.
    pub fn frequency(&self) -> f64 {
        self.config.center_freq + self.freq_integrator
    }

    /// Smoothed lock metric (|phase error|, radians).
    pub fn lock_metric(&self) -> f64 {
        self.lock_metric
    }

    /// True while locked.
    pub fn is_locked(&self) -> bool {
        self.lock_metric < self.config.lock_threshold
    }

    /// Advances the loop by `dt` seconds with one input sample,
    /// returning the observable state.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not positive.
    pub fn step(&mut self, input: f64, dt: f64) -> PllOutput {
        assert!(dt > 0.0, "dt must be positive");
        // Quadrature mixer: for input sin(θi),
        //   I = x·cos(θo) → ½ sin(Δθ) + 2f ripple,
        //   Q = x·sin(θo) → ½ cos(Δθ) + 2f ripple.
        let i_raw = input * self.phase.cos();
        let q_raw = input * self.phase.sin();
        // Two cascaded one-pole low-passes strip the 2f ripple; the
        // cutoff sits well above the loop bandwidth so it adds little
        // phase lag inside the loop.
        let fc = (4.0 * self.config.bandwidth).min(self.config.center_freq / 4.0);
        let a = (-2.0 * std::f64::consts::PI * fc * dt).exp();
        self.i_lp[0] = a * self.i_lp[0] + (1.0 - a) * i_raw;
        self.i_lp[1] = a * self.i_lp[1] + (1.0 - a) * self.i_lp[0];
        self.q_lp[0] = a * self.q_lp[0] + (1.0 - a) * q_raw;
        self.q_lp[1] = a * self.q_lp[1] + (1.0 - a) * self.q_lp[0];
        // atan2 discriminator: amplitude-independent Δθ estimate.
        let err = if self.i_lp[1].abs() < 1e-12 && self.q_lp[1].abs() < 1e-12 {
            0.0
        } else {
            self.i_lp[1].atan2(self.q_lp[1])
        };
        // PI loop filter drives the NCO frequency offset (in Hz).
        self.freq_integrator += self.ki * err * dt / (2.0 * std::f64::consts::PI);
        let freq = self.config.center_freq
            + self.freq_integrator
            + self.kp * err / (2.0 * std::f64::consts::PI);
        // NCO advance.
        self.phase += 2.0 * std::f64::consts::PI * freq * dt;
        if self.phase > 1e6 {
            self.phase = self.phase.rem_euclid(2.0 * std::f64::consts::PI);
        }
        // Lock metric: slow EWMA of |error|.
        self.lock_metric = 0.999 * self.lock_metric + 0.001 * err.abs();
        PllOutput {
            phase_error: err,
            frequency: freq,
            nco: self.phase.sin(),
            locked: self.is_locked(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{Oscillator, Waveform};

    fn drive(pll: &mut Pll, freq: f64, seconds: f64, dt: f64) -> PllOutput {
        let osc = Oscillator::new(Waveform::Sine, freq, 1.0);
        let steps = (seconds / dt) as usize;
        let mut out = pll.step(osc.sample(0.0), dt);
        for i in 1..steps {
            out = pll.step(osc.sample(i as f64 * dt), dt);
        }
        out
    }

    #[test]
    fn locks_to_center_frequency() {
        let mut pll = Pll::new(PllConfig::default());
        let out = drive(&mut pll, 50.0, 3.0, 0.0005);
        assert!(
            (out.frequency - 50.0).abs() < 0.5,
            "frequency {}",
            out.frequency
        );
        assert!(pll.is_locked(), "lock metric {}", pll.lock_metric());
    }

    #[test]
    fn pulls_in_an_offset_frequency() {
        let mut pll = Pll::new(PllConfig::default());
        let out = drive(&mut pll, 53.0, 4.0, 0.0005);
        assert!(
            (out.frequency - 53.0).abs() < 0.5,
            "should pull to 53 Hz, got {}",
            out.frequency
        );
        assert!(pll.is_locked());
    }

    #[test]
    fn tracks_a_frequency_step() {
        let mut pll = Pll::new(PllConfig::default());
        drive(&mut pll, 50.0, 2.0, 0.0005);
        let f_before = pll.frequency();
        drive(&mut pll, 48.0, 4.0, 0.0005);
        let f_after = pll.frequency();
        assert!((f_before - 50.0).abs() < 0.5);
        assert!((f_after - 48.0).abs() < 0.5, "after step: {f_after}");
    }

    #[test]
    fn unlocked_when_far_out_of_band() {
        let mut pll = Pll::new(PllConfig {
            bandwidth: 1.0,
            ..Default::default()
        });
        drive(&mut pll, 90.0, 2.0, 0.0005);
        assert!(
            !pll.is_locked(),
            "a 90 Hz tone is outside a 1 Hz loop around 50 Hz"
        );
    }

    #[test]
    fn survives_noise() {
        let mut pll = Pll::new(PllConfig::default());
        let osc = Oscillator::new(Waveform::Sine, 51.0, 1.0);
        let mut noise = crate::gen::Noise::new(3, 0.2, 0.0);
        let dt = 0.0005;
        let mut out = pll.step(0.0, dt);
        for i in 0..(6.0 / dt) as usize {
            let x = osc.sample(i as f64 * dt) + noise.next();
            out = pll.step(x, dt);
        }
        assert!(
            (out.frequency - 51.0).abs() < 1.0,
            "noisy lock at {}",
            out.frequency
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn bad_config_rejected() {
        let _ = Pll::new(PllConfig {
            bandwidth: 0.0,
            ..Default::default()
        });
    }
}
