//! Deterministic test-signal generators.
//!
//! The scope needs things to look at: sines, squares, saws, chirps, and
//! noise, each sampled on demand at arbitrary times so they slot
//! straight into a gscope `FUNC` signal.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Waveform shape.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Waveform {
    /// `amp·sin(2πft) + offset`.
    Sine,
    /// ±amp square wave.
    Square,
    /// Rising sawtooth from −amp to +amp.
    Sawtooth,
    /// Symmetric triangle.
    Triangle,
}

/// A periodic waveform generator.
#[derive(Clone, Debug)]
pub struct Oscillator {
    waveform: Waveform,
    /// Frequency in Hz.
    pub frequency: f64,
    /// Peak amplitude.
    pub amplitude: f64,
    /// DC offset.
    pub offset: f64,
    /// Phase offset in radians.
    pub phase: f64,
}

impl Oscillator {
    /// Creates an oscillator.
    ///
    /// # Panics
    ///
    /// Panics if `frequency` is not positive and finite.
    pub fn new(waveform: Waveform, frequency: f64, amplitude: f64) -> Self {
        assert!(
            frequency.is_finite() && frequency > 0.0,
            "frequency must be positive"
        );
        Oscillator {
            waveform,
            frequency,
            amplitude,
            offset: 0.0,
            phase: 0.0,
        }
    }

    /// Sets the DC offset.
    pub fn with_offset(mut self, offset: f64) -> Self {
        self.offset = offset;
        self
    }

    /// Sets the initial phase in radians.
    pub fn with_phase(mut self, phase: f64) -> Self {
        self.phase = phase;
        self
    }

    /// Samples the waveform at time `t` seconds.
    pub fn sample(&self, t: f64) -> f64 {
        let tau = 2.0 * std::f64::consts::PI;
        let theta = tau * self.frequency * t + self.phase;
        let frac = (theta / tau).rem_euclid(1.0);
        let v = match self.waveform {
            Waveform::Sine => theta.sin(),
            Waveform::Square => {
                if frac < 0.5 {
                    1.0
                } else {
                    -1.0
                }
            }
            Waveform::Sawtooth => 2.0 * frac - 1.0,
            Waveform::Triangle => {
                if frac < 0.5 {
                    4.0 * frac - 1.0
                } else {
                    3.0 - 4.0 * frac
                }
            }
        };
        self.amplitude * v + self.offset
    }
}

/// A linear chirp: frequency sweeps from `f0` to `f1` over `duration`
/// seconds, then holds `f1`.
#[derive(Clone, Debug)]
pub struct Chirp {
    /// Start frequency (Hz).
    pub f0: f64,
    /// End frequency (Hz).
    pub f1: f64,
    /// Sweep duration (seconds).
    pub duration: f64,
    /// Peak amplitude.
    pub amplitude: f64,
}

impl Chirp {
    /// Creates a chirp.
    ///
    /// # Panics
    ///
    /// Panics if frequencies or duration are not positive.
    pub fn new(f0: f64, f1: f64, duration: f64, amplitude: f64) -> Self {
        assert!(
            f0 > 0.0 && f1 > 0.0 && duration > 0.0,
            "chirp parameters must be positive"
        );
        Chirp {
            f0,
            f1,
            duration,
            amplitude,
        }
    }

    /// Instantaneous frequency at time `t`.
    pub fn frequency_at(&self, t: f64) -> f64 {
        let x = (t / self.duration).clamp(0.0, 1.0);
        self.f0 + (self.f1 - self.f0) * x
    }

    /// Samples the chirp at time `t` seconds.
    pub fn sample(&self, t: f64) -> f64 {
        let tau = 2.0 * std::f64::consts::PI;
        let tc = t.min(self.duration);
        // Integrated phase of the linear sweep.
        let k = (self.f1 - self.f0) / self.duration;
        let mut phase = tau * (self.f0 * tc + 0.5 * k * tc * tc);
        if t > self.duration {
            phase += tau * self.f1 * (t - self.duration);
        }
        self.amplitude * phase.sin()
    }
}

/// Band-limited-ish noise: independent Gaussian samples through a
/// single-pole smoother.
#[derive(Debug)]
pub struct Noise {
    rng: StdRng,
    /// RMS amplitude of the raw samples.
    pub sigma: f64,
    /// Smoothing coefficient in [0, 1); 0 = white.
    pub smoothing: f64,
    state: f64,
}

impl Noise {
    /// Creates a noise source with a deterministic seed.
    pub fn new(seed: u64, sigma: f64, smoothing: f64) -> Self {
        Noise {
            rng: StdRng::seed_from_u64(seed),
            sigma,
            smoothing: smoothing.clamp(0.0, 0.999),
            state: 0.0,
        }
    }

    /// Draws the next noise sample (Box–Muller Gaussian).
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> f64 {
        let u1: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = self.rng.gen_range(0.0..1.0);
        let g = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let x = g * self.sigma;
        self.state = self.smoothing * self.state + (1.0 - self.smoothing) * x;
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sine_hits_known_points() {
        let o = Oscillator::new(Waveform::Sine, 1.0, 2.0);
        assert!(o.sample(0.0).abs() < 1e-12);
        assert!((o.sample(0.25) - 2.0).abs() < 1e-12);
        assert!((o.sample(0.75) + 2.0).abs() < 1e-12);
    }

    #[test]
    fn square_alternates() {
        let o = Oscillator::new(Waveform::Square, 2.0, 1.0); // 0.5 s period
        assert_eq!(o.sample(0.05), 1.0);
        assert_eq!(o.sample(0.30), -1.0);
        assert_eq!(o.sample(0.55), 1.0);
    }

    #[test]
    fn sawtooth_and_triangle_ranges() {
        let saw = Oscillator::new(Waveform::Sawtooth, 1.0, 1.0);
        let tri = Oscillator::new(Waveform::Triangle, 1.0, 1.0);
        for i in 0..100 {
            let t = i as f64 * 0.013;
            assert!(saw.sample(t).abs() <= 1.0 + 1e-9);
            assert!(tri.sample(t).abs() <= 1.0 + 1e-9);
        }
        // Triangle peaks mid-cycle.
        assert!((tri.sample(0.5) + 1.0).abs() < 0.05 || (tri.sample(0.5) - 1.0).abs() < 0.05);
    }

    #[test]
    fn offset_and_phase_apply() {
        let o = Oscillator::new(Waveform::Sine, 1.0, 1.0)
            .with_offset(10.0)
            .with_phase(std::f64::consts::FRAC_PI_2);
        assert!((o.sample(0.0) - 11.0).abs() < 1e-12, "cos at t=0");
    }

    #[test]
    fn chirp_frequency_sweeps() {
        let c = Chirp::new(1.0, 10.0, 2.0, 1.0);
        assert_eq!(c.frequency_at(0.0), 1.0);
        assert_eq!(c.frequency_at(1.0), 5.5);
        assert_eq!(c.frequency_at(2.0), 10.0);
        assert_eq!(c.frequency_at(99.0), 10.0, "holds after sweep");
        for i in 0..200 {
            assert!(c.sample(i as f64 * 0.01).abs() <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn noise_is_deterministic_and_zero_mean() {
        let collect = |seed| {
            let mut n = Noise::new(seed, 1.0, 0.0);
            (0..5000).map(|_| n.next()).collect::<Vec<f64>>()
        };
        let a = collect(5);
        assert_eq!(a, collect(5));
        let mean: f64 = a.iter().sum::<f64>() / a.len() as f64;
        assert!(mean.abs() < 0.1, "mean {mean}");
        let var: f64 = a.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / a.len() as f64;
        assert!((var - 1.0).abs() < 0.2, "variance {var}");
    }

    #[test]
    fn smoothing_reduces_variance() {
        let var = |sm: f64| {
            let mut n = Noise::new(9, 1.0, sm);
            let xs: Vec<f64> = (0..5000).map(|_| n.next()).collect();
            let m = xs.iter().sum::<f64>() / xs.len() as f64;
            xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
        };
        assert!(var(0.9) < var(0.0) / 2.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn bad_frequency_rejected() {
        let _ = Oscillator::new(Waveform::Sine, 0.0, 1.0);
    }
}
