//! A textbook discrete PID controller with anti-windup.
//!
//! The paper cites Franklin, Powell & Workman, *Digital Control of
//! Dynamic Systems* [9] as the source for the control algorithms gscope
//! was used to visualize; this is the workhorse from that book.

/// PID gains and limits.
#[derive(Clone, Copy, Debug)]
pub struct PidConfig {
    /// Proportional gain.
    pub kp: f64,
    /// Integral gain (per second).
    pub ki: f64,
    /// Derivative gain (seconds).
    pub kd: f64,
    /// Output clamp (symmetric, also bounds the integrator).
    pub output_limit: f64,
}

impl Default for PidConfig {
    fn default() -> Self {
        PidConfig {
            kp: 1.0,
            ki: 0.0,
            kd: 0.0,
            output_limit: f64::INFINITY,
        }
    }
}

/// Discrete PID controller state.
#[derive(Clone, Debug)]
pub struct Pid {
    config: PidConfig,
    integral: f64,
    prev_error: Option<f64>,
    last_output: f64,
}

impl Pid {
    /// Creates a controller.
    pub fn new(config: PidConfig) -> Self {
        Pid {
            config,
            integral: 0.0,
            prev_error: None,
            last_output: 0.0,
        }
    }

    /// Returns the configuration.
    pub fn config(&self) -> PidConfig {
        self.config
    }

    /// Returns the integrator state.
    pub fn integral(&self) -> f64 {
        self.integral
    }

    /// The most recent output.
    pub fn last_output(&self) -> f64 {
        self.last_output
    }

    /// Resets dynamic state.
    pub fn reset(&mut self) {
        self.integral = 0.0;
        self.prev_error = None;
        self.last_output = 0.0;
    }

    /// Advances the controller by `dt` seconds with the given error
    /// (`setpoint − measurement`), returning the new output.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not positive.
    pub fn update(&mut self, error: f64, dt: f64) -> f64 {
        assert!(dt > 0.0, "dt must be positive");
        let lim = self.config.output_limit;
        let p = self.config.kp * error;
        let d = match self.prev_error {
            Some(prev) => self.config.kd * (error - prev) / dt,
            None => 0.0,
        };
        self.prev_error = Some(error);
        // Conditional integration: freeze the integrator when the
        // output is saturated in the error's direction (anti-windup).
        let tentative = p + self.integral + d;
        let saturated_high = tentative >= lim && error > 0.0;
        let saturated_low = tentative <= -lim && error < 0.0;
        if !(saturated_high || saturated_low) {
            self.integral += self.config.ki * error * dt;
            self.integral = self.integral.clamp(-lim, lim);
        }
        self.last_output = (p + self.integral + d).clamp(-lim, lim);
        self.last_output
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A first-order plant: y' = (u - y) / tau.
    fn run_loop(pid: &mut Pid, setpoint: f64, tau: f64, steps: usize, dt: f64) -> f64 {
        let mut y = 0.0;
        for _ in 0..steps {
            let u = pid.update(setpoint - y, dt);
            y += (u - y) / tau * dt;
        }
        y
    }

    #[test]
    fn proportional_only_leaves_steady_state_error() {
        let mut pid = Pid::new(PidConfig {
            kp: 2.0,
            ..Default::default()
        });
        let y = run_loop(&mut pid, 1.0, 0.5, 4000, 0.001);
        // P-only closed loop settles at kp/(1+kp) = 2/3.
        assert!((y - 2.0 / 3.0).abs() < 0.01, "y = {y}");
    }

    #[test]
    fn integral_removes_steady_state_error() {
        let mut pid = Pid::new(PidConfig {
            kp: 2.0,
            ki: 4.0,
            ..Default::default()
        });
        let y = run_loop(&mut pid, 1.0, 0.5, 20000, 0.001);
        assert!((y - 1.0).abs() < 0.01, "y = {y}");
    }

    #[test]
    fn derivative_term_reacts_to_slope() {
        let mut pid = Pid::new(PidConfig {
            kp: 0.0,
            kd: 1.0,
            ..Default::default()
        });
        pid.update(0.0, 0.1);
        let out = pid.update(1.0, 0.1);
        assert!((out - 10.0).abs() < 1e-9, "d = Δe/dt = 10, got {out}");
    }

    #[test]
    fn output_clamps_and_integrator_does_not_wind_up() {
        let mut pid = Pid::new(PidConfig {
            kp: 0.0,
            ki: 100.0,
            kd: 0.0,
            output_limit: 1.0,
        });
        for _ in 0..1000 {
            let u = pid.update(10.0, 0.01);
            assert!(u <= 1.0);
        }
        // After the error flips, a wound-up integrator would stay
        // pinned for ages; anti-windup lets it unwind quickly.
        let mut steps = 0;
        loop {
            let u = pid.update(-10.0, 0.01);
            steps += 1;
            if u <= 0.0 {
                break;
            }
            assert!(steps < 50, "integrator wound up");
        }
    }

    #[test]
    fn reset_clears_state() {
        let mut pid = Pid::new(PidConfig {
            kp: 1.0,
            ki: 1.0,
            kd: 1.0,
            output_limit: 10.0,
        });
        pid.update(5.0, 0.1);
        pid.reset();
        assert_eq!(pid.integral(), 0.0);
        assert_eq!(pid.last_output(), 0.0);
        // First post-reset update has no derivative kick.
        let u = pid.update(1.0, 0.1);
        assert!((u - 1.1).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "dt must be positive")]
    fn zero_dt_rejected() {
        Pid::new(PidConfig::default()).update(1.0, 0.0);
    }
}
