//! Minimal in-workspace stand-in for the `criterion` benchmarking API
//! surface used by this workspace's benches: `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `Throughput`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Unlike real criterion there is no statistical outlier analysis or
//! HTML report: each benchmark is warmed up, timed over a fixed number
//! of samples, and the median ns/op is printed (plus derived
//! throughput when configured). A machine-readable summary is appended
//! to `target/shim-criterion/<group>.json` so CI jobs can archive the
//! numbers. The container image has no network access to crates.io, so
//! the real crate cannot be vendored.

use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::PathBuf;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 30 }
    }
}

impl Criterion {
    /// Sets the default number of timing samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be >= 2");
        self.sample_size = n;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        let sample_size = self.sample_size;
        eprintln!("group: {name}");
        BenchmarkGroup {
            _parent: self,
            name,
            sample_size,
            throughput: None,
            results: Vec::new(),
        }
    }

    /// Benchmarks a function outside any group.
    pub fn bench_function(&mut self, id: impl fmt::Display, f: impl FnMut(&mut Bencher)) {
        let mut group = self.benchmark_group("default");
        group.bench_function(id.to_string(), f);
        group.finish();
    }
}

/// Unit in which a group's throughput is reported.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for a parameterised benchmark.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// A group of related benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'c> {
    _parent: &'c mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    results: Vec<(String, f64)>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used to derive rates.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Overrides the number of timing samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be >= 2");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function(&mut self, id: impl fmt::Display, mut f: impl FnMut(&mut Bencher)) {
        let id = id.to_string();
        let ns = run_benchmark(self.sample_size, &mut f);
        self.report(&id, ns);
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        let id = id.to_string();
        let ns = run_benchmark(self.sample_size, &mut |b| f(b, input));
        self.report(&id, ns);
    }

    fn report(&mut self, id: &str, ns_per_iter: f64) {
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) => {
                format!("  {:.1} Melem/s", n as f64 / ns_per_iter * 1e3)
            }
            Some(Throughput::Bytes(n)) => {
                format!(
                    "  {:.1} MiB/s",
                    n as f64 / ns_per_iter * 1e9 / (1024.0 * 1024.0)
                )
            }
            None => String::new(),
        };
        eprintln!("  {}/{}: {ns_per_iter:.1} ns/iter{rate}", self.name, id);
        self.results.push((id.to_string(), ns_per_iter));
    }

    /// Finishes the group, writing the JSON summary.
    pub fn finish(self) {
        let dir = PathBuf::from("target/shim-criterion");
        if fs::create_dir_all(&dir).is_err() {
            return;
        }
        let path = dir.join(format!("{}.json", self.name.replace(['/', ' '], "_")));
        let mut out = String::from("{\n");
        for (i, (id, ns)) in self.results.iter().enumerate() {
            let comma = if i + 1 < self.results.len() { "," } else { "" };
            out.push_str(&format!(
                "  \"{}\": {{\"ns_per_iter\": {ns:.2}}}{comma}\n",
                id
            ));
        }
        out.push_str("}\n");
        if let Ok(mut f) = fs::File::create(&path) {
            let _ = f.write_all(out.as_bytes());
        }
    }
}

/// Passed to benchmark closures; `iter` does the timing.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over this sample's iteration count.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` only, running `setup` fresh before each
    /// iteration outside the measured region.
    pub fn iter_with_setup<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
    ) {
        let mut elapsed = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            elapsed += start.elapsed();
        }
        self.elapsed = elapsed;
    }

    /// `iter_batched` with per-iteration batches of one — same timing
    /// strategy as [`Bencher::iter_with_setup`].
    pub fn iter_batched<I, O>(
        &mut self,
        setup: impl FnMut() -> I,
        routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        self.iter_with_setup(setup, routine);
    }
}

/// Batch sizing hint (ignored by the shim's per-iteration batching).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration state.
    #[default]
    SmallInput,
    /// Large per-iteration state.
    LargeInput,
    /// One batch per sample.
    PerIteration,
}

/// Warms up, picks an iteration count targeting ~2ms per sample, then
/// returns the median ns/iter across `samples` timed samples.
fn run_benchmark(samples: usize, f: &mut impl FnMut(&mut Bencher)) -> f64 {
    // Calibration: find an iteration count that takes ~2ms.
    let mut iters: u64 = 1;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(2) || iters >= 1 << 24 {
            break;
        }
        iters = iters.saturating_mul(4).max(iters + 1);
    }
    let mut per_iter: Vec<f64> = (0..samples.max(2))
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            b.elapsed.as_secs_f64() * 1e9 / iters as f64
        })
        .collect();
    per_iter.sort_by(|a, b| a.total_cmp(b));
    per_iter[per_iter.len() / 2]
}

/// Declares a benchmark group runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main`, running each declared group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            // `cargo test` runs bench targets with --test; skip timing there.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn times_a_trivial_op() {
        let ns = run_benchmark(5, &mut |b| b.iter(|| black_box(1u64 + 1)));
        assert!(ns > 0.0 && ns < 1e6, "implausible timing {ns}");
    }

    #[test]
    fn group_writes_summary() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim_selftest");
        g.sample_size(3);
        g.throughput(Throughput::Elements(1));
        g.bench_function("add", |b| b.iter(|| black_box(2u64 * 2)));
        g.bench_with_input(BenchmarkId::new("mul", 7), &7u64, |b, &x| {
            b.iter(|| black_box(x * x))
        });
        g.finish();
    }
}
