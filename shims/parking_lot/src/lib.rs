//! Minimal in-workspace stand-in for the `parking_lot` API surface used
//! by this workspace: [`Mutex`], [`RwLock`], and [`Condvar`].
//!
//! Built on `std::sync` primitives with parking_lot's ergonomics:
//! `lock()` returns a guard directly (no `Result`) and locks never
//! poison — a panic while holding the lock leaves the data accessible
//! to later lockers, matching parking_lot semantics closely enough for
//! this codebase. The container image has no network access to
//! crates.io, so the real crate cannot be vendored; this shim keeps the
//! public call sites source-compatible.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

/// A mutual-exclusion lock with parking_lot's panic-free `lock()`.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    // Option so Condvar::wait_* can temporarily take the std guard out.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the data (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard holds the lock")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard holds the lock")
    }
}

/// Result of a timed [`Condvar`] wait.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True if the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable operating on [`MutexGuard`]s in place.
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Blocks until notified, releasing the guard's lock while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard holds the lock");
        let std_guard = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(std_guard);
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let std_guard = guard.inner.take().expect("guard holds the lock");
        let (std_guard, res) = self
            .inner
            .wait_timeout(std_guard, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(std_guard);
        WaitTimeoutResult(res.timed_out())
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

/// A reader-writer lock with parking_lot's panic-free accessors.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared-read guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-write guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn mutex_does_not_poison() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0, "lock usable after a panicking holder");
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(false);
        let c = Condvar::new();
        let mut g = m.lock();
        let res = c.wait_for(&mut g, Duration::from_millis(10));
        assert!(res.timed_out());
        assert!(!*g);
    }

    #[test]
    fn condvar_notify_wakes() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, c) = &*pair2;
            let mut started = m.lock();
            *started = true;
            c.notify_all();
        });
        let (m, c) = &*pair;
        let mut started = m.lock();
        while !*started {
            let _ = c.wait_for(&mut started, Duration::from_millis(100));
        }
        assert!(*started);
        t.join().unwrap();
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 10);
        }
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }
}
