//! Minimal in-workspace stand-in for the `crossbeam` API surface used
//! by this workspace: `crossbeam::channel::{unbounded, Sender,
//! Receiver}`.
//!
//! Wraps `std::sync::mpsc`. The container image has no network access
//! to crates.io, so the real crate cannot be vendored; this shim keeps
//! the public call sites source-compatible.

pub mod channel {
    use std::fmt;
    use std::sync::mpsc;
    use std::time::Duration;

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// All senders are gone and the channel is empty.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The timeout elapsed with nothing received.
        Timeout,
        /// All senders are gone and the channel is empty.
        Disconnected,
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        /// Sends a message, failing only if the receiver is dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.inner
                .send(msg)
                .map_err(|mpsc::SendError(m)| SendError(m))
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Receives without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Blocks until a message arrives or all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|_| RecvError)
        }

        /// Blocks until a message arrives, the timeout elapses, or all
        /// senders are gone.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.inner.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        /// Drains currently queued messages without blocking.
        pub fn try_iter(&self) -> impl Iterator<Item = T> + '_ {
            self.inner.try_iter()
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    /// Creates an unbounded MPSC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: rx })
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_and_try_recv() {
            let (tx, rx) = unbounded();
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            tx.send(7).unwrap();
            tx.clone().send(8).unwrap();
            assert_eq!(rx.try_recv(), Ok(7));
            assert_eq!(rx.try_recv(), Ok(8));
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn cross_thread() {
            let (tx, rx) = unbounded();
            let t = std::thread::spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            t.join().unwrap();
            let got: Vec<i32> = rx.try_iter().collect();
            assert_eq!(got.len(), 100);
        }
    }
}
