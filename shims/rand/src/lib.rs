//! Minimal in-workspace stand-in for the `rand` API surface used by
//! this workspace: `StdRng::seed_from_u64`, `Rng::gen`,
//! `Rng::gen_range`, and `Rng::gen_bool`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — fast,
//! well-distributed, and fully deterministic for a given seed, which is
//! all the simulators here need (they are explicitly seeded for
//! reproducibility). The container image has no network access to
//! crates.io, so the real crate cannot be vendored.

use std::ops::{Range, RangeInclusive};

/// A seedable random number generator (the `rand::SeedableRng` subset
/// this workspace uses).
pub trait SeedableRng: Sized {
    /// Creates a generator from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over their whole domain via
/// [`Rng::gen`] (`rand`'s `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// Ranges samplable via [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// The raw entropy source.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// High-level sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value over the type's full domain.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from a range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_range(self)
    }

    /// Returns true with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Uniform integer in `[0, n)` by widening multiply (Lemire's method,
/// without the rejection step — bias is < 2⁻⁶⁴·n, irrelevant here).
fn below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    ((u128::from(rng.next_u64()) * u128::from(n)) >> 64) as u64
}

macro_rules! int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        let u = f64::sample_standard(rng);
        lo + u * (hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(0u64..=5);
            assert!(w <= 5);
            let f = r.gen_range(-2.0..3.0f64);
            assert!((-2.0..3.0).contains(&f));
            let n = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&n));
        }
    }

    #[test]
    fn mean_is_roughly_centred() {
        let mut r = StdRng::seed_from_u64(99);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_bool_probability() {
        let mut r = StdRng::seed_from_u64(5);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.25).abs() < 0.02, "frac {frac}");
    }
}
