//! Minimal in-workspace stand-in for the `proptest` API surface used by
//! this workspace's property tests.
//!
//! Supported: the `proptest!` macro (with `#![proptest_config(...)]`),
//! range strategies over integers and floats, `Just`, `any::<bool>()`,
//! tuple strategies, `prop_oneof!`, `proptest::collection::vec`,
//! simple character-class regex string strategies
//! (`"[a-zA-Z][a-zA-Z0-9_.]{0,12}"`), and
//! `prop_assert!`/`prop_assert_eq!`.
//!
//! Unlike real proptest there is no shrinking: a failing case panics
//! with the generated inputs' `Debug` rendering, which is enough to
//! reproduce because generation is deterministic per test name. The
//! container image has no network access to crates.io, so the real
//! crate cannot be vendored.

use std::ops::{Range, RangeInclusive};

pub mod prelude {
    //! The glob-import surface (`use proptest::prelude::*`).
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestRng,
    };
}

/// Per-test configuration (`cases` only).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic per-test random source (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds deterministically from a test name.
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }
}

/// A value generator. Object-safe so strategies can be boxed and mixed
/// by `prop_oneof!`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Boxes the strategy for heterogeneous composition.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A boxed strategy over `T`.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}

int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        lo + rng.unit_f64() * (hi - lo)
    }
}

macro_rules! tuple_strategies {
    ($(($($s:ident / $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategies!(
    (A / 0, B / 1),
    (A / 0, B / 1, C / 2),
    (A / 0, B / 1, C / 2, D / 3),
    (A / 0, B / 1, C / 2, D / 3, E / 4),
    (A / 0, B / 1, C / 2, D / 3, E / 4, F / 5)
);

/// Picks uniformly among boxed strategies (`prop_oneof!` backend).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; `options` must be non-empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// The strategy type returned by [`any`].
    type Strategy: Strategy<Value = Self>;

    /// The canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Whole-domain boolean.
#[derive(Clone, Copy, Debug, Default)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;

    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            type Strategy = RangeInclusive<$t>;

            fn arbitrary() -> Self::Strategy {
                <$t>::MIN..=<$t>::MAX
            }
        }
    )*};
}

arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Returns the canonical strategy for `T` (`any::<bool>()` et al.).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

pub mod collection {
    //! `proptest::collection` — vector strategies.

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Element-count specification for [`vec`]: an exact `usize` or a
    /// half-open `Range<usize>`.
    pub trait SizeRange {
        /// Draws a length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    /// Strategy producing `Vec<S::Value>` with a length drawn from a
    /// [`SizeRange`].
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates vectors of `element` with length in `len`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }
}

pub mod option {
    //! `proptest::option` — optional-value strategies.

    use super::{Strategy, TestRng};

    /// Strategy producing `Option<S::Value>`, `None` about a quarter of
    /// the time (matching real proptest's default `of` weighting of
    /// roughly 1-in-4 `None`).
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }

    /// Generates `Some` values from `inner`, mixed with `None`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

// ----- character-class regex string strategies -----

/// One parsed piece of a string pattern: a set of candidate chars plus
/// a repetition count range.
struct PatternPart {
    chars: Vec<char>,
    min: usize,
    max: usize,
}

/// Strategy for string literals interpreted as a simple regex subset:
/// concatenations of literal characters and `[...]` classes, each
/// optionally followed by `{m}`, `{m,n}`, `?`, `+`, or `*`.
pub struct StringPattern {
    parts: Vec<PatternPart>,
}

impl StringPattern {
    /// Parses the supported regex subset.
    ///
    /// # Panics
    ///
    /// Panics on syntax outside the subset, naming the offending
    /// pattern — a shim limitation surfaced loudly rather than
    /// silently misgenerating.
    pub fn parse(pattern: &str) -> Self {
        let mut parts = Vec::new();
        let mut it = pattern.chars().peekable();
        while let Some(c) = it.next() {
            let chars = match c {
                '[' => {
                    let mut set = Vec::new();
                    let mut prev: Option<char> = None;
                    loop {
                        let Some(k) = it.next() else {
                            panic!("unterminated [class] in pattern {pattern:?}");
                        };
                        match k {
                            ']' => break,
                            '-' if prev.is_some() && it.peek().is_some_and(|&n| n != ']') => {
                                let lo = prev.take().expect("checked") as u32 + 1;
                                let hi = it.next().expect("peeked") as u32;
                                assert!(lo <= hi + 1, "bad class range in {pattern:?}");
                                for cp in lo..=hi {
                                    if let Some(ch) = char::from_u32(cp) {
                                        set.push(ch);
                                    }
                                }
                            }
                            other => {
                                if let Some(p) = prev.replace(other) {
                                    set.push(p);
                                }
                            }
                        }
                    }
                    if let Some(p) = prev {
                        set.push(p);
                    }
                    assert!(!set.is_empty(), "empty [class] in pattern {pattern:?}");
                    set
                }
                '\\' => vec![it.next().unwrap_or('\\')],
                '.' => (' '..='~').collect(),
                '(' | ')' | '|' => {
                    panic!("pattern {pattern:?} uses unsupported regex syntax {c:?} (shim)")
                }
                lit => vec![lit],
            };
            // Optional quantifier.
            let (min, max) = match it.peek() {
                Some('{') => {
                    it.next();
                    let mut digits = String::new();
                    let mut min = None;
                    loop {
                        match it.next() {
                            Some('}') => break,
                            Some(',') => min = Some(digits.split_off(0)),
                            Some(d) if d.is_ascii_digit() => digits.push(d),
                            other => panic!("bad {{m,n}} in {pattern:?}: {other:?}"),
                        }
                    }
                    match min {
                        Some(m) => {
                            let lo: usize = m.parse().expect("digits");
                            let hi: usize = digits.parse().expect("digits");
                            (lo, hi)
                        }
                        None => {
                            let n: usize = digits.parse().expect("digits");
                            (n, n)
                        }
                    }
                }
                Some('?') => {
                    it.next();
                    (0, 1)
                }
                Some('+') => {
                    it.next();
                    (1, 8)
                }
                Some('*') => {
                    it.next();
                    (0, 8)
                }
                _ => (1, 1),
            };
            parts.push(PatternPart { chars, min, max });
        }
        StringPattern { parts }
    }
}

impl Strategy for StringPattern {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for p in &self.parts {
            let n = p.min + rng.below((p.max - p.min + 1) as u64) as usize;
            for _ in 0..n {
                out.push(p.chars[rng.below(p.chars.len() as u64) as usize]);
            }
        }
        out
    }
}

impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        StringPattern::parse(self).generate(rng)
    }
}

// ----- macros -----

/// Mirror of proptest's `prop_assert!`: plain assertion (no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Mirror of proptest's `prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Mirror of proptest's `prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Mirror of proptest's `prop_assume!`: skips the rest of the current
/// case when the assumption fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return;
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $($crate::Strategy::boxed($strategy)),+
        ])
    };
}

/// The property-test macro: turns `fn name(arg in strategy, ...) {...}`
/// items into `#[test]` functions running `cases` deterministic random
/// cases each.
#[macro_export]
macro_rules! proptest {
    // Entry with explicit config.
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@funcs ($cfg) $($rest)*);
    };
    // Internal muncher: one function, then recurse.
    (@funcs ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for _case in 0..cfg.cases {
                // One closure per case so generated bindings drop between
                // cases and `prop_assume!` can early-return. `mut` is
                // needed only when $body captures outer state mutably.
                #[allow(unused_mut)]
                let mut case = |rng: &mut $crate::TestRng| {
                    $(let $arg = $crate::Strategy::generate(&$strategy, rng);)+
                    $body
                };
                case(&mut rng);
            }
        }
        $crate::proptest!(@funcs ($cfg) $($rest)*);
    };
    (@funcs ($cfg:expr)) => {};
    // Entry without config.
    ($($rest:tt)*) => {
        $crate::proptest!(@funcs ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn string_pattern_subset() {
        let mut rng = TestRng::deterministic("string_pattern_subset");
        let strat = "[a-zA-Z][a-zA-Z0-9_.]{0,12}";
        for _ in 0..500 {
            let s = Strategy::generate(&strat, &mut rng);
            assert!(!s.is_empty() && s.len() <= 13, "{s:?}");
            let mut cs = s.chars();
            assert!(cs.next().expect("non-empty").is_ascii_alphabetic());
            assert!(cs.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.'));
        }
    }

    #[test]
    fn union_and_just() {
        let mut rng = TestRng::deterministic("union_and_just");
        let strat = prop_oneof![Just(0.0f64), -1.0..1.0f64, Just(42.0)];
        let mut saw_42 = false;
        for _ in 0..200 {
            let v = Strategy::generate(&strat, &mut rng);
            assert!(v == 42.0 || (-1.0..1.0).contains(&v) || v == 0.0);
            saw_42 |= v == 42.0;
        }
        assert!(saw_42, "all arms should be reachable");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn vec_lengths_respect_bounds(
            xs in crate::collection::vec(0u64..100, 3..7),
            exact in crate::collection::vec(-1.0..1.0f64, 5),
            nested in crate::collection::vec(crate::collection::vec(0usize..4, 0..3), 1..4),
        ) {
            prop_assert!((3..7).contains(&xs.len()));
            prop_assert_eq!(exact.len(), 5);
            prop_assert!((1..4).contains(&nested.len()));
        }

        #[test]
        fn tuples_and_bools(
            t in (1u64..10, -5.0..5.0f64, 0usize..3),
            b in any::<bool>(),
        ) {
            prop_assert!((1..10).contains(&t.0));
            prop_assert!((-5.0..5.0).contains(&t.1));
            prop_assert!(t.2 < 3);
            prop_assert_eq!(b as u8 | (!b) as u8, 1);
        }
    }
}
