#!/usr/bin/env bash
# Regenerates every artifact of the gscope reproduction: the test
# suite, all figures, and the paper's tables. See EXPERIMENTS.md for
# what each step corresponds to.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build & test =="
cargo build --workspace --release
cargo test --workspace

echo "== figures (examples) =="
for ex in quickstart render_windows tcp_ecn scheduler pll distributed \
          record_replay audio_spectrum triggers live_tuning sack_debugging \
          media_player; do
  echo "--- example: $ex"
  cargo run --release --example "$ex"
done

echo "== paper tables (experiment harnesses) =="
cargo run --release -p gscope-bench --bin overhead
cargo run --release -p gscope-bench --bin granularity
cargo run --release -p gscope-bench --bin fig45_tcp_ecn
cargo run --release -p gscope-bench --bin recovery_ablation

echo "== microbenchmarks (smoke) =="
cargo bench --workspace -- --test

echo
echo "all artifacts regenerated; figures in target/figures/"
